"""Reproduction of "Bounded Budget Connection (BBC) Games" (PODC 2008).

The package is organised in layers:

* :mod:`repro.graphs` — directed-graph substrate (shortest paths, SCC, flow);
* :mod:`repro.sat` — CNF / DPLL substrate for the NP-hardness experiments;
* :mod:`repro.core` — the BBC game engine (games, best responses, equilibria,
  fractional games, social-cost metrics);
* :mod:`repro.engine` — the flat-array distance/cost engine the hot paths
  route through (int-indexed CSR snapshots, version-stamped caches);
* :mod:`repro.constructions` — the paper's explicit graph families;
* :mod:`repro.gadgets` — the non-existence and NP-hardness gadgets;
* :mod:`repro.dynamics` — best-response walks and loop detection;
* :mod:`repro.analysis` — fairness / diameter / price-of-anarchy studies;
* :mod:`repro.experiments` — seeded workloads and empirical studies.

The most common entry points are re-exported at the top level::

    from repro import UniformBBCGame, StrategyProfile, best_response, is_pure_nash
"""

from . import analysis, constructions, core, dynamics, engine, experiments, gadgets, graphs, sat
from .core import (
    BBCGame,
    FractionalBBCGame,
    Objective,
    StrategyProfile,
    UniformBBCGame,
    best_response,
    equilibrium_report,
    is_pure_nash,
)

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "sat",
    "core",
    "engine",
    "constructions",
    "gadgets",
    "dynamics",
    "analysis",
    "experiments",
    "BBCGame",
    "UniformBBCGame",
    "FractionalBBCGame",
    "Objective",
    "StrategyProfile",
    "best_response",
    "equilibrium_report",
    "is_pure_nash",
    "__version__",
]
