"""Best-response dynamics: walks, convergence to connectivity, and loops."""

from .loop_search import (
    FIGURE4_DEVIATION_SEQUENCE,
    FIGURE4_INITIAL_COSTS,
    FIGURE4_KNOWN_STRATEGIES,
    FIGURE4_ROUND_ORDER,
    Figure4Reconstruction,
    find_cycle_from_random_starts,
    reconstruct_figure4,
    verify_figure4_loop,
)
from .walk import WalkResult, WalkStep, probes_to_strong_connectivity, run_best_response_walk

__all__ = [
    "WalkResult",
    "WalkStep",
    "run_best_response_walk",
    "probes_to_strong_connectivity",
    "Figure4Reconstruction",
    "reconstruct_figure4",
    "verify_figure4_loop",
    "find_cycle_from_random_starts",
    "FIGURE4_DEVIATION_SEQUENCE",
    "FIGURE4_KNOWN_STRATEGIES",
    "FIGURE4_INITIAL_COSTS",
    "FIGURE4_ROUND_ORDER",
]
