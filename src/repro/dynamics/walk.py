"""Best-response walks (Section 4.3).

A *best-response walk* repeatedly picks a node, tests whether it is stable,
and if not replaces its links with an exact best response.  The paper studies
round-robin walks (every node probes once per round) and remarks on
max-cost-first walks; both schedules are implemented here, together with the
instrumentation the paper's results need: when strong connectivity is first
reached (Theorem 6), whether a pure equilibrium is reached, and whether the
walk enters a loop (Figure 4 / the non-potential-game result).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs import is_strongly_connected
from ..core import BBCGame, StrategyProfile, best_response
from ..rng import SeedLike, as_rng

Node = Hashable


@dataclass(frozen=True)
class WalkStep:
    """One best-response probe of the walk."""

    index: int
    node: Node
    improved: bool
    old_strategy: Tuple[Node, ...]
    new_strategy: Tuple[Node, ...]
    old_cost: float
    new_cost: float


@dataclass
class WalkResult:
    """Full trace and summary statistics of one best-response walk."""

    final_profile: StrategyProfile
    probes: int
    deviations: int
    rounds: int
    reached_equilibrium: bool
    strong_connectivity_probe: Optional[int]
    cycle_detected: bool
    cycle_start_round: Optional[int]
    cycle_length_rounds: Optional[int]
    steps: List[WalkStep] = field(default_factory=list)

    @property
    def reached_strong_connectivity(self) -> bool:
        """Return whether the walk produced a strongly connected graph."""
        return self.strong_connectivity_probe is not None


def _round_order(
    game: BBCGame,
    scheduler: str,
    profile: StrategyProfile,
    rng: random.Random,
    fixed_order: Optional[Sequence[Node]],
    engine,
) -> List[Node]:
    """Return the node order for one round under the chosen scheduler."""
    nodes = list(game.nodes)
    if fixed_order is not None:
        return list(fixed_order)
    if scheduler == "round_robin":
        return nodes
    if scheduler == "random":
        order = nodes[:]
        rng.shuffle(order)
        return order
    if scheduler == "max_cost_first":
        costs = game.all_costs(profile, engine=engine)
        return sorted(nodes, key=lambda node: (-costs[node], repr(node)))
    raise ValueError(f"unknown scheduler {scheduler!r}")


def run_best_response_walk(
    game: BBCGame,
    initial: StrategyProfile,
    *,
    scheduler: str = "round_robin",
    round_order: Optional[Sequence[Node]] = None,
    max_rounds: int = 100,
    stop_at_equilibrium: bool = True,
    stop_at_strong_connectivity: bool = False,
    detect_cycles: bool = True,
    record_steps: bool = False,
    seed: SeedLike = None,
    engine=None,
) -> WalkResult:
    """Run a best-response walk and return its trace.

    Parameters
    ----------
    scheduler:
        ``"round_robin"`` (the paper's main schedule), ``"max_cost_first"``
        (the schedule of the experimental remarks in Section 4.3), or
        ``"random"``.
    round_order:
        Explicit node order for every round (overrides the scheduler's
        ordering; used by the Figure 4 and ring+path experiments).
    stop_at_equilibrium:
        Whether a full no-deviation round ends the walk early (the default).
        ``reached_equilibrium`` in the result is truthful either way: with
        ``stop_at_equilibrium=False`` the walk keeps probing the (now fixed)
        profile until ``max_rounds`` but still reports that an equilibrium
        was reached.
    stop_at_strong_connectivity:
        Stop as soon as the formed graph is strongly connected (the
        Theorem 6 experiments measure exactly this probe count).
    detect_cycles:
        Detect loops by hashing the configuration at round boundaries; a loop
        certifies that this walk never converges (the non-potential-game
        phenomenon of Figure 4).
    engine:
        Same tri-state convention as every routed entry point: ``None`` (the
        default) uses the shared flat-array cost engine, so successive probes
        reuse every distance row a deviation did not invalidate; ``False``
        forces the reference dict-based oracle (the baseline of
        ``scripts/bench_speed.py``); an explicit
        :class:`~repro.engine.CostEngine` controls cache sharing.
    """
    game.validate_profile(initial)
    rng = as_rng(seed)
    profile = initial
    probes = 0
    deviations = 0
    steps: List[WalkStep] = []
    strong_probe: Optional[int] = None
    seen_rounds: Dict[object, int] = {}
    cycle_detected = False
    cycle_start: Optional[int] = None
    cycle_length: Optional[int] = None
    reached_equilibrium = False

    if is_strongly_connected(profile.graph()):
        strong_probe = 0
        if stop_at_strong_connectivity:
            return WalkResult(
                final_profile=profile,
                probes=0,
                deviations=0,
                rounds=0,
                reached_equilibrium=False,
                strong_connectivity_probe=0,
                cycle_detected=False,
                cycle_start_round=None,
                cycle_length_rounds=None,
                steps=steps,
            )

    rounds_done = 0
    stop_now = False
    for round_index in range(max_rounds):
        # Once a full round passed with no deviation the profile is a pure
        # equilibrium and can never move again, so a repeated fingerprint is
        # the fixed point, not a loop — skip the cycle bookkeeping for it.
        if detect_cycles and not reached_equilibrium:
            key = profile.fingerprint()
            if key in seen_rounds:
                cycle_detected = True
                cycle_start = seen_rounds[key]
                cycle_length = round_index - seen_rounds[key]
                break
            seen_rounds[key] = round_index

        order = _round_order(game, scheduler, profile, rng, round_order, engine)
        any_deviation = False
        stop_now = False
        for node in order:
            result = best_response(game, profile, node, engine=engine)
            probes += 1
            if result.improved:
                deviations += 1
                any_deviation = True
                if record_steps:
                    steps.append(
                        WalkStep(
                            index=probes,
                            node=node,
                            improved=True,
                            old_strategy=tuple(sorted(result.current_strategy, key=repr)),
                            new_strategy=tuple(sorted(result.best_strategy, key=repr)),
                            old_cost=result.current_cost,
                            new_cost=result.best_cost,
                        )
                    )
                profile = result.apply(profile)
                if strong_probe is None and is_strongly_connected(profile.graph()):
                    strong_probe = probes
                    if stop_at_strong_connectivity:
                        stop_now = True
                        break
        rounds_done = round_index + 1
        if stop_now:
            break
        if not any_deviation:
            # The flag records the fact; the *stopping* decision is separate,
            # so stop_at_equilibrium=False keeps probing until max_rounds.
            reached_equilibrium = True
            if stop_at_equilibrium:
                break

    if (
        detect_cycles
        and not cycle_detected
        and not reached_equilibrium
        and not stop_now
    ):
        # The loop checks fingerprints at round *starts*, so a configuration
        # that first repeats exactly when the round budget runs out would
        # otherwise go unreported; close the window with one last check.
        key = profile.fingerprint()
        if key in seen_rounds:
            cycle_detected = True
            cycle_start = seen_rounds[key]
            cycle_length = rounds_done - seen_rounds[key]

    return WalkResult(
        final_profile=profile,
        probes=probes,
        deviations=deviations,
        rounds=rounds_done,
        reached_equilibrium=reached_equilibrium,
        strong_connectivity_probe=strong_probe,
        cycle_detected=cycle_detected,
        cycle_start_round=cycle_start,
        cycle_length_rounds=cycle_length,
        steps=steps,
    )


def probes_to_strong_connectivity(
    game: BBCGame,
    initial: StrategyProfile,
    *,
    round_order: Optional[Sequence[Node]] = None,
    max_rounds: Optional[int] = None,
    engine=None,
) -> Optional[int]:
    """Return the number of best-response probes until strong connectivity.

    Theorem 6 guarantees this is at most ``n²`` for round-robin walks; the
    helper returns ``None`` if connectivity was not reached within
    ``max_rounds`` rounds (default ``n + 2``, enough for the theorem bound).
    """
    n = game.num_nodes
    result = run_best_response_walk(
        game,
        initial,
        round_order=round_order,
        max_rounds=max_rounds if max_rounds is not None else n + 2,
        stop_at_equilibrium=False,
        stop_at_strong_connectivity=True,
        detect_cycles=False,
        engine=engine,
    )
    return result.strong_connectivity_probe
