"""Loops in best-response walks: Figure 4 and the non-potential-game result.

Figure 4 of the paper shows a (7, 2)-uniform game configuration from which a
round-robin best-response walk (starting at node 6, then 0, 1, 2, ...) loops:
after six deviations — nodes 6, 3, 2, 6, 3, 2 rewiring to ``[0 2]``,
``[5 6]``, ``[0 3]``, ``[2 5]``, ``[0 6]``, ``[3 5]`` respectively — the walk
returns to the initial configuration.  Because the loop closes, the initial
links of the three rewiring nodes must equal their *final* rewirings
(``6 -> {2, 5}``, ``3 -> {0, 6}``, ``2 -> {3, 5}``); the links of the four
never-moving nodes (0, 1, 4, 5) are not printed in the paper, so
:func:`reconstruct_figure4` recovers them by exhaustive search over all
``C(6,2)^4`` completions and checking which ones reproduce the published
deviation sequence exactly.

The existence of any such loop shows uniform BBC games are not (ordinal)
potential games; :func:`find_cycle_from_random_starts` demonstrates the same
phenomenon without relying on the published example.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core import StrategyProfile, UniformBBCGame, best_response
from ..rng import SeedLike, as_rng
from .walk import WalkResult, run_best_response_walk

#: The published rewiring loop: (node, new strategy) in walk order.
FIGURE4_DEVIATION_SEQUENCE: Tuple[Tuple[int, FrozenSet[int]], ...] = (
    (6, frozenset({0, 2})),
    (3, frozenset({5, 6})),
    (2, frozenset({0, 3})),
    (6, frozenset({2, 5})),
    (3, frozenset({0, 6})),
    (2, frozenset({3, 5})),
)

#: Initial strategies of the rewiring nodes, implied by the loop closing.
FIGURE4_KNOWN_STRATEGIES: Dict[int, FrozenSet[int]] = {
    6: frozenset({2, 5}),
    3: frozenset({0, 6}),
    2: frozenset({3, 5}),
}

#: Node costs printed next to the initial (top-left) configuration.
FIGURE4_INITIAL_COSTS: Dict[int, float] = {0: 11, 1: 12, 2: 10, 3: 11, 4: 11, 5: 11, 6: 10}

#: Round-robin order used in the figure: node 6 first, then 0, 1, 2, ...
FIGURE4_ROUND_ORDER: Tuple[int, ...] = (6, 0, 1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Figure4Reconstruction:
    """One completion of Figure 4's initial configuration that loops as published."""

    profile: StrategyProfile
    deviation_sequence: Tuple[Tuple[int, FrozenSet[int]], ...]
    costs_match_figure: bool
    initial_costs: Dict[int, float]


def _walk_deviation_sequence(
    game: UniformBBCGame,
    profile: StrategyProfile,
    *,
    max_deviations: int,
    expected: Optional[Sequence[Tuple[int, FrozenSet[int]]]] = None,
    engine=None,
) -> Tuple[List[Tuple[int, FrozenSet[int]]], StrategyProfile]:
    """Simulate the Figure 4 walk and collect its deviations.

    When ``expected`` is given the simulation aborts as soon as the observed
    sequence diverges from it (used for fast pruning during the search).
    """
    observed: List[Tuple[int, FrozenSet[int]]] = []
    order = list(FIGURE4_ROUND_ORDER)
    position = 0
    while len(observed) < max_deviations:
        node = order[position % len(order)]
        position += 1
        result = best_response(game, profile, node, engine=engine)
        if result.improved:
            observed.append((node, frozenset(result.best_strategy)))
            profile = result.apply(profile)
            if expected is not None:
                index = len(observed) - 1
                if index >= len(expected) or observed[index] != tuple(expected[index]):
                    return observed, profile
        if position > len(order) * (max_deviations + 3):
            break
    return observed, profile


def reconstruct_figure4(
    *, max_results: int = 1, require_cost_match: bool = False, engine=None
) -> List[Figure4Reconstruction]:
    """Search for completions of Figure 4's initial configuration.

    Returns up to ``max_results`` completions whose round-robin walk (node 6
    first) reproduces the published six-deviation loop and returns to the
    initial configuration.  When ``require_cost_match`` is set, the initial
    node costs must additionally equal the values printed in the figure.

    The ``C(6,2)^4`` completions are visited in Gray order
    (:func:`repro.engine.gray_code_profiles` over the free nodes, the fixed
    nodes as singleton sets), so successive candidates differ in one node and
    the engine's version-stamped rows stay hot, and each candidate is first
    screened by node 6's exact best response: the published walk probes node
    6 first, so unless that single probe already yields the published
    rewiring ``6 -> {0, 2}``, the completion cannot reproduce the sequence
    (whichever node deviated first would mismatch, and a fully stable
    completion produces no deviations at all).  ``engine`` is the usual
    tri-state: ``False`` scores every probe with the dict-based reference
    oracle; the results are identical either way.
    """
    game = UniformBBCGame(7, 2)
    free_nodes = (0, 1, 4, 5)
    sets: Dict[int, List[FrozenSet[int]]] = {
        node: [strategy] for node, strategy in FIGURE4_KNOWN_STRATEGIES.items()
    }
    sets.update(
        {
            node: [
                frozenset(combo)
                for combo in itertools.combinations([v for v in range(7) if v != node], 2)
            ]
            for node in free_nodes
        }
    )
    results: List[Figure4Reconstruction] = []
    expected = list(FIGURE4_DEVIATION_SEQUENCE)
    first_node, first_strategy = expected[0]

    from ..engine.sweep import gray_code_profiles

    for profile in gray_code_profiles(game, sets):
        initial_costs: Optional[Dict[int, float]] = None
        if require_cost_match:
            initial_costs = game.all_costs(profile, engine=engine)
            if any(
                abs(initial_costs[node] - FIGURE4_INITIAL_COSTS[node]) > 1e-9
                for node in range(7)
            ):
                continue

        probe = best_response(game, profile, first_node, engine=engine)
        if not probe.improved or probe.best_strategy != first_strategy:
            continue

        observed, final_profile = _walk_deviation_sequence(
            game, profile, max_deviations=len(expected), expected=expected, engine=engine
        )
        if len(observed) != len(expected):
            continue
        if any(observed[i] != expected[i] for i in range(len(expected))):
            continue
        if final_profile != profile:
            continue
        if initial_costs is None:
            initial_costs = game.all_costs(profile, engine=engine)
        results.append(
            Figure4Reconstruction(
                profile=profile,
                deviation_sequence=tuple(observed),
                costs_match_figure=all(
                    abs(initial_costs[node] - FIGURE4_INITIAL_COSTS[node]) < 1e-9
                    for node in range(7)
                ),
                initial_costs=initial_costs,
            )
        )
        if len(results) >= max_results:
            break
    return results


def verify_figure4_loop(reconstruction: Figure4Reconstruction, *, engine=None) -> bool:
    """Re-run the walk on a reconstruction and confirm it closes the loop."""
    game = UniformBBCGame(7, 2)
    observed, final_profile = _walk_deviation_sequence(
        game,
        reconstruction.profile,
        max_deviations=len(FIGURE4_DEVIATION_SEQUENCE),
        engine=engine,
    )
    return (
        tuple(observed) == FIGURE4_DEVIATION_SEQUENCE
        and final_profile == reconstruction.profile
    )


def find_cycle_from_random_starts(
    n: int,
    k: int,
    *,
    attempts: int = 50,
    max_rounds: int = 60,
    seed: SeedLike = None,
) -> Optional[WalkResult]:
    """Look for a best-response loop in the (n, k)-uniform game.

    Runs round-robin walks from random budget-maximal configurations and
    returns the first walk that provably cycles (configuration repeated at a
    round boundary without reaching an equilibrium), or ``None``.
    """
    rng = as_rng(seed)
    game = UniformBBCGame(n, k)
    nodes = list(range(n))
    for _ in range(attempts):
        strategies = {
            node: frozenset(rng.sample([v for v in nodes if v != node], k)) for node in nodes
        }
        profile = StrategyProfile(strategies)
        result = run_best_response_walk(
            game,
            profile,
            scheduler="round_robin",
            max_rounds=max_rounds,
            detect_cycles=True,
        )
        if result.cycle_detected and not result.reached_equilibrium:
            return result
    return None
