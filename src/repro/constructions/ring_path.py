"""The Ω(n²) convergence lower-bound instance of Section 4.3.

Theorem 6 shows that round-robin best-response walks reach strong
connectivity within ``n²`` steps.  The matching lower bound is a ``(n, 1)``
configuration made of a directed ring over ``r >= n/2`` nodes and a directed
path of ``p = n - r`` nodes whose last hop enters the ring: in each round only
one extra ring node can usefully re-point its link at the path's tail, so
Ω(n) rounds of Ω(n) steps each are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core import StrategyProfile, UniformBBCGame
from ..core.errors import InvalidGameDefinition


@dataclass(frozen=True)
class RingWithPathInstance:
    """The lower-bound starting configuration and its recommended schedule."""

    ring_size: int
    path_size: int
    game: UniformBBCGame
    profile: StrategyProfile
    round_order: Tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        """Return ``n = ring_size + path_size``."""
        return self.ring_size + self.path_size

    @property
    def path_tail(self) -> int:
        """Return the node label of the tail (start) of the directed path."""
        return self.ring_size

    @property
    def theoretical_step_lower_bound(self) -> int:
        """Return the Ω(n²) scale ``(ring_size - path_size) * path_size``.

        Each "rotation" of the construction needs about one full round of
        ``n`` best-response probes and advances the merged ring by one node.
        """
        return max(0, (self.ring_size - self.path_size)) * self.num_nodes


def build_ring_with_path(ring_size: int, path_size: int) -> RingWithPathInstance:
    """Construct the ring+path configuration for the ``(n, 1)``-uniform game.

    Ring nodes are ``0 .. ring_size-1`` with ``i -> (i+1) mod ring_size``;
    path nodes are ``ring_size .. ring_size+path_size-1`` oriented towards the
    ring, entering it at node 0.  The round order starts at the path's tail,
    proceeds along the path, and then around the ring in the ring direction —
    the adversarial schedule from the paper's lower-bound argument.
    """
    if ring_size < 2:
        raise InvalidGameDefinition("the ring needs at least two nodes")
    if path_size < 1:
        raise InvalidGameDefinition("the path needs at least one node")
    if ring_size < path_size:
        raise InvalidGameDefinition(
            "the lower-bound construction requires ring_size >= path_size (r >= n/2)"
        )
    n = ring_size + path_size
    game = UniformBBCGame(n, 1)

    strategies = {}
    for node in range(ring_size):
        strategies[node] = {(node + 1) % ring_size}
    # Path nodes: ring_size is the tail; each points to the next path node,
    # and the last path node points into the ring at node 0.
    for offset in range(path_size):
        node = ring_size + offset
        if offset == path_size - 1:
            strategies[node] = {0}
        else:
            strategies[node] = {node + 1}
    profile = StrategyProfile(strategies)

    # Round order: path tail, rest of the path, then the ring starting at the
    # ring node the path enters (node 0) and following the ring direction.
    round_order: List[int] = list(range(ring_size, n)) + list(range(ring_size))
    return RingWithPathInstance(
        ring_size=ring_size,
        path_size=path_size,
        game=game,
        profile=profile,
        round_order=tuple(round_order),
    )
