"""The high-cost BBC-max equilibrium of Theorem 8 / Figure 6.

For the uniform BBC-max game (each node minimises its *maximum* hop distance)
the paper exhibits a stable graph whose total cost is Ω(n²/k): ``2k − 1``
directed tails of equal length plus one extra "root" node that reaches the
first ``k`` tails.  Every node's maximum distance is Θ(l) = Θ(n/k), whereas
the social optimum (a Forest of Willows with no tails) is O(n log_k n), which
yields the Ω(n / (k log_k n)) price-of-anarchy lower bound of Theorem 8.

The construction below follows the proof's description:

* ``2k - 1`` tails ``t_1 .. t_{2k-1}``, each a directed path of ``l`` nodes;
* a root node ``r`` with edges to the heads of ``t_1 .. t_k``;
* segments ``S_1 = {r} ∪ t_1 ∪ .. ∪ t_k`` and ``S_i = t_{k+i-1}`` for
  ``i = 2..k`` with heads ``r`` and the tail heads respectively;
* the last node of every tail points to the head of every segment;
* every other tail node points to its successor in the tail, to the last node
  of some tail, and to the root; remaining budget (the paper's "rest of the
  edges don't matter") is spent on further segment heads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core import Objective, StrategyProfile, UniformBBCGame
from ..core.errors import InvalidGameDefinition

NodeName = str


@dataclass(frozen=True)
class MaxDistanceEquilibrium:
    """A constructed Figure-6 instance together with its BBC-max game."""

    k: int
    tail_length: int
    game: UniformBBCGame
    profile: StrategyProfile
    root: int
    tails: Tuple[Tuple[int, ...], ...]
    segment_heads: Tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        """Return the total number of nodes ``n = 1 + (2k-1)·l``."""
        return self.game.num_nodes

    def social_cost(self) -> float:
        """Return the sum over nodes of their maximum distances."""
        return self.game.social_cost(self.profile)


def build_max_distance_equilibrium(k: int, tail_length: int) -> MaxDistanceEquilibrium:
    """Construct the Figure-6 high-cost BBC-max equilibrium.

    Parameters
    ----------
    k:
        Per-node budget; the construction needs ``k >= 3`` (the paper handles
        ``k = 2`` with a small ad-hoc adjustment that changes the structure,
        so we keep the clean ``k >= 3`` family here).
    tail_length:
        Number of nodes ``l`` in each of the ``2k - 1`` tails; must be at
        least 2 so tails have distinct head and last nodes.
    """
    if k < 3:
        raise InvalidGameDefinition("the Figure 6 construction needs k >= 3")
    if tail_length < 2:
        raise InvalidGameDefinition("tails need at least 2 nodes")

    num_tails = 2 * k - 1
    n = 1 + num_tails * tail_length
    game = UniformBBCGame(n, k, objective=Objective.MAX)

    # Node numbering: 0 is the root; tail ``t`` occupies the contiguous block
    # 1 + t*l .. 1 + (t+1)*l - 1 ordered head -> last.
    root = 0

    def tail_node(tail: int, position: int) -> int:
        return 1 + tail * tail_length + position

    tails: List[Tuple[int, ...]] = [
        tuple(tail_node(t, p) for p in range(tail_length)) for t in range(num_tails)
    ]
    tail_heads = [tails[t][0] for t in range(num_tails)]
    tail_lasts = [tails[t][-1] for t in range(num_tails)]

    # Segment heads: S_1's head is the root; S_2..S_k are the last k-1 tails.
    segment_heads: List[int] = [root] + [tail_heads[t] for t in range(k, num_tails)]

    strategies: Dict[int, Set[int]] = {node: set() for node in range(n)}

    # Root: edges to the heads of the first k tails.
    strategies[root] = {tail_heads[t] for t in range(k)}

    for t in range(num_tails):
        for position in range(tail_length):
            node = tail_node(t, position)
            links: Set[int] = set()
            if position == tail_length - 1:
                # Last node of the tail: one edge to the head of each segment.
                links.update(segment_heads)
            else:
                # Interior (or head) node: down the tail, to the root, and to
                # the last node of a tail; spare budget goes to more segment
                # heads ("the rest of the edges don't matter").
                links.add(tail_node(t, position + 1))
                links.add(root)
                links.add(tail_lasts[(t + 1) % num_tails])
                for extra in segment_heads:
                    if len(links) >= k:
                        break
                    if extra != node:
                        links.add(extra)
            links.discard(node)
            strategies[node] = set(list(links)[:k]) if len(links) > k else links

    profile = StrategyProfile(strategies)
    return MaxDistanceEquilibrium(
        k=k,
        tail_length=tail_length,
        game=game,
        profile=profile,
        root=root,
        tails=tuple(tails),
        segment_heads=tuple(segment_heads),
    )


def max_distance_cost_row(k: int, tail_length: int) -> Dict[str, float]:
    """Return the Theorem 8 comparison row for one instance.

    The row contains the construction's social cost (sum of max distances),
    the analytic optimum scale ``n log_k n``, and the resulting empirical
    price-of-anarchy estimate.
    """
    import math

    instance = build_max_distance_equilibrium(k, tail_length)
    n = instance.num_nodes
    social = instance.social_cost()
    optimum_scale = instance.game.minimum_possible_social_cost()
    return {
        "k": float(k),
        "tail_length": float(tail_length),
        "n": float(n),
        "social_cost": social,
        "optimum_lower_bound": optimum_scale,
        "poa_estimate": social / optimum_scale,
        "theorem8_bound": n / (k * math.log(n, k)),
    }
