"""Abelian Cayley graphs, regular offset graphs, and hypercubes (Section 4.2).

The paper asks whether a stable graph can be *regular* in the strong sense
used by structured overlays: every node buys the "same" links, i.e. node
``x`` links to ``x + a_i (mod n)`` for a fixed set of offsets ``a_i``.  Such
offset graphs are Cayley graphs of ``Z_n``; the paper analyses the wider
class of Abelian Cayley graphs and shows (Theorem 5) that none of them is
stable once ``n >= c·2^k``, while Lemma 8 notes they *are* stable when the
degree exceeds ``(n-2)/2``.

This module constructs these graph families as strategy profiles of the
uniform game and implements the specific improving deviation used in the
proof of Theorem 5 (replace the generator edge ``r -> r·a_i`` with
``r -> r·a_i·a_i``) so the mechanism behind the theorem can be measured, not
just the final verdict.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Objective, StrategyProfile, UniformBBCGame, best_response
from ..core.errors import InvalidGameDefinition

GroupElement = Tuple[int, ...]


@dataclass(frozen=True)
class AbelianCayleyGraph:
    """A Cayley graph of a product of cyclic groups, as a uniform-game profile."""

    orders: Tuple[int, ...]
    generators: Tuple[GroupElement, ...]
    game: UniformBBCGame
    profile: StrategyProfile
    index_of: Dict[GroupElement, int]
    element_of: Tuple[GroupElement, ...]

    @property
    def num_nodes(self) -> int:
        """Return the group order (= number of nodes)."""
        return len(self.element_of)

    @property
    def degree(self) -> int:
        """Return the number of generators (= the uniform budget k)."""
        return len(self.generators)

    def add(self, element: GroupElement, generator: GroupElement) -> GroupElement:
        """Return ``element + generator`` in the underlying Abelian group."""
        return tuple(
            (component + step) % order
            for component, step, order in zip(element, generator, self.orders)
        )


def _validate_generators(
    orders: Sequence[int], generators: Sequence[GroupElement]
) -> Tuple[Tuple[int, ...], Tuple[GroupElement, ...]]:
    orders = tuple(int(order) for order in orders)
    if not orders or any(order < 1 for order in orders):
        raise InvalidGameDefinition("group orders must be positive integers")
    normalised: List[GroupElement] = []
    identity = tuple(0 for _ in orders)
    for generator in generators:
        generator = tuple(int(component) % order for component, order in zip(generator, orders))
        if len(generator) != len(orders):
            raise InvalidGameDefinition(
                "each generator must have one component per cyclic factor"
            )
        if generator == identity:
            raise InvalidGameDefinition("the identity cannot be a generator (self loop)")
        normalised.append(generator)
    if len(set(normalised)) != len(normalised):
        raise InvalidGameDefinition("generators must be distinct")
    return orders, tuple(normalised)


def abelian_cayley_graph(
    orders: Sequence[int],
    generators: Sequence[GroupElement],
    *,
    objective: Objective = Objective.SUM,
) -> AbelianCayleyGraph:
    """Construct the Cayley graph of ``Z_{orders[0]} x ... x Z_{orders[-1]}``.

    Every group element is a node; node ``x`` buys one link to ``x + a`` for
    each generator ``a``.  The resulting profile belongs to the
    ``(n, k)``-uniform game with ``n`` the group order and ``k`` the number
    of generators.
    """
    orders, generators = _validate_generators(orders, generators)
    elements: List[GroupElement] = [
        tuple(reversed(combo))
        for combo in itertools.product(*(range(order) for order in reversed(orders)))
    ]
    elements.sort()
    index_of = {element: index for index, element in enumerate(elements)}
    n = len(elements)
    k = len(generators)
    if k >= n:
        raise InvalidGameDefinition("the number of generators must be smaller than n")

    game = UniformBBCGame(n, k, objective=objective)
    strategies: Dict[int, set] = {index: set() for index in range(n)}
    for element in elements:
        source = index_of[element]
        for generator in generators:
            target_element = tuple(
                (component + step) % order
                for component, step, order in zip(element, generator, orders)
            )
            strategies[source].add(index_of[target_element])
    profile = StrategyProfile(strategies)
    return AbelianCayleyGraph(
        orders=orders,
        generators=generators,
        game=game,
        profile=profile,
        index_of=index_of,
        element_of=tuple(elements),
    )


def offset_graph(
    n: int, offsets: Sequence[int], *, objective: Objective = Objective.SUM
) -> AbelianCayleyGraph:
    """Construct the "regular graph" of the paper: ``x -> x + a_i (mod n)``.

    This is the Cayley graph of the cyclic group ``Z_n`` with generator set
    ``offsets``; for suitable offsets (e.g. powers of ``floor(n^(1/k))``) the
    diameter is ``O(n^(1/k))``.
    """
    return abelian_cayley_graph((n,), [(offset,) for offset in offsets], objective=objective)


def chord_like_offsets(n: int, k: int) -> Tuple[int, ...]:
    """Return ``k`` geometric offsets ``base^0, base^1, ...`` with small diameter.

    ``base`` is chosen as ``ceil(n^(1/k))`` so the offsets reach every residue
    within ``O(k · n^(1/k))`` hops, mimicking Chord-style structured overlays.
    """
    if k < 1 or n < 2:
        raise InvalidGameDefinition("need n >= 2 and k >= 1")
    base = max(2, math.ceil(n ** (1.0 / k)))
    offsets = []
    value = 1
    for _ in range(k):
        offsets.append(value % n if value % n != 0 else 1)
        value *= base
    # Ensure distinctness (possible collisions for tiny n).
    seen = []
    for offset in offsets:
        candidate = offset
        while candidate in seen or candidate % n == 0:
            candidate = (candidate + 1) % n
        seen.append(candidate)
    return tuple(seen)


def hypercube_cayley(dimension: int, *, objective: Objective = Objective.SUM) -> AbelianCayleyGraph:
    """Construct the ``2^d``-node hypercube as a Cayley graph of ``Z_2^d``.

    Corollary 1 of the paper: for ``d > 4`` this graph is *not* stable for the
    ``(2^d, d)``-uniform game.
    """
    if dimension < 1:
        raise InvalidGameDefinition("dimension must be at least 1")
    orders = tuple(2 for _ in range(dimension))
    generators = []
    for bit in range(dimension):
        generator = [0] * dimension
        generator[bit] = 1
        generators.append(tuple(generator))
    return abelian_cayley_graph(orders, generators, objective=objective)


@dataclass(frozen=True)
class Theorem5Deviation:
    """Outcome of applying the proof-of-Theorem-5 deviation at one node."""

    generator_index: int
    old_target: int
    new_target: int
    cost_before: float
    cost_after: float

    @property
    def improvement(self) -> float:
        """Return the cost decrease achieved by the deviation (> 0 improves)."""
        return self.cost_before - self.cost_after


def theorem5_deviation(
    cayley: AbelianCayleyGraph, *, root_element: Optional[GroupElement] = None
) -> List[Theorem5Deviation]:
    """Evaluate the proof's deviation ``r -> r·a_i`` replaced by ``r -> r·a_i·a_i``.

    Returns one record per generator.  Theorem 5 shows that for
    ``n >= c·2^k`` at least one of these is strictly improving, which is what
    makes the Cayley graph unstable; the benchmark reports the achieved
    improvements so the "regularity versus stability" trade-off can be seen
    quantitatively.
    """
    if root_element is None:
        root_element = tuple(0 for _ in cayley.orders)
    root = cayley.index_of[root_element]
    game = cayley.game
    profile = cayley.profile
    cost_before = game.node_cost(profile, root)

    records: List[Theorem5Deviation] = []
    for generator_index, generator in enumerate(cayley.generators):
        one_step = cayley.add(root_element, generator)
        two_step = cayley.add(one_step, generator)
        old_target = cayley.index_of[one_step]
        new_target = cayley.index_of[two_step]
        strategy = set(profile.strategy(root))
        if old_target not in strategy or new_target == root:
            continue
        strategy.discard(old_target)
        strategy.add(new_target)
        deviated = profile.with_strategy(root, strategy)
        cost_after = game.node_cost(deviated, root)
        records.append(
            Theorem5Deviation(
                generator_index=generator_index,
                old_target=old_target,
                new_target=new_target,
                cost_before=cost_before,
                cost_after=cost_after,
            )
        )
    return records


def is_cayley_stable(cayley: AbelianCayleyGraph) -> bool:
    """Exactly check whether the Cayley profile is a Nash equilibrium.

    Because every node of a vertex-transitive graph sees the same picture, it
    suffices to check a single node (the identity): the graph is stable if
    and only if the identity has no profitable deviation.
    """
    root = cayley.index_of[tuple(0 for _ in cayley.orders)]
    result = best_response(cayley.game, cayley.profile, root)
    return not result.improved


def lemma8_threshold(n: int) -> int:
    """Return the smallest degree for which Lemma 8 guarantees stability.

    Lemma 8: every degree-``k`` Abelian Cayley graph on ``n`` nodes is stable
    when ``k > (n - 2) / 2``.
    """
    return int(math.floor((n - 2) / 2)) + 1
