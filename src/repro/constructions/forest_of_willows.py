"""The "Forest of Willows" stable graphs (Definition 1 / Figure 3 / Lemma 6).

The construction has ``k`` sections.  Section ``i`` is a complete ``k``-ary
out-tree of height ``h`` rooted at ``r_i``; beneath each of its ``k^h`` leaves
hangs a *tail* of ``l`` extra nodes.  Tree nodes spend their budget on their
children.  Leaf and tail nodes spend one link going down the tail (when a
node below exists) and their remaining budget on *non-essential* links to
roots, alternating so that consecutive tail nodes cover complementary root
sets:

* the last node of a tail links to **all** ``k`` roots;
* the node above it links to every root **except** its own root ``r_i``;
* above that, nodes alternate between "``r_i`` plus any ``k-2`` other roots"
  and "all roots except ``r_i``", exactly as the figure caption prescribes.

Lemma 6 proves these graphs are pure Nash equilibria of the (n, k)-uniform
game; varying the tail length ``l`` from 0 to ``Θ(sqrt(n/k))`` sweeps the
social cost from ``O(n² log_k n)`` to ``Ω(n² sqrt(n/k))``, which is how the
paper separates the price of stability from the price of anarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core import Objective, StrategyProfile, UniformBBCGame
from ..core.errors import InvalidGameDefinition

NodeName = str


@dataclass(frozen=True)
class WillowParameters:
    """Parameters of a Forest-of-Willows instance."""

    k: int
    height: int
    tail_length: int

    @property
    def nodes_per_tree(self) -> int:
        """Number of nodes in one complete k-ary tree of the given height."""
        k, h = self.k, self.height
        if k == 1:
            return h + 1
        return (k ** (h + 1) - 1) // (k - 1)

    @property
    def leaves_per_tree(self) -> int:
        """Number of leaves of one tree (``k^h``)."""
        return self.k ** self.height

    @property
    def nodes_per_section(self) -> int:
        """Tree nodes plus tail nodes of one section."""
        return self.nodes_per_tree + self.leaves_per_tree * self.tail_length

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``n`` of the game."""
        return self.k * self.nodes_per_section

    def satisfies_definition_constraints(self) -> bool:
        """Return whether Definition 1's restriction on ``h`` and ``l`` holds.

        The definition requires ``(h+l)²/4 + h + 2l + 1 < n/k``, which is what
        the stability proof (Lemma 2) uses.
        """
        h, l = self.height, self.tail_length
        n_over_k = self.nodes_per_section
        return (h + l) ** 2 / 4 + h + 2 * l + 1 < n_over_k


@dataclass(frozen=True)
class WillowForest:
    """A constructed Forest of Willows together with its game."""

    parameters: WillowParameters
    game: UniformBBCGame
    profile: StrategyProfile
    roots: Tuple[NodeName, ...]
    sections: Tuple[Tuple[NodeName, ...], ...]

    @property
    def num_nodes(self) -> int:
        """Return the number of nodes of the constructed graph."""
        return self.parameters.num_nodes

    def social_cost(self) -> float:
        """Return the total social cost of the constructed profile."""
        return self.game.social_cost(self.profile)


def _root_name(section: int) -> NodeName:
    return f"r{section}"


def _tree_node_name(section: int, index: int) -> NodeName:
    return f"s{section}t{index}"


def _tail_node_name(section: int, leaf_index: int, depth: int) -> NodeName:
    return f"s{section}leaf{leaf_index}tail{depth}"


def build_forest_of_willows(
    k: int,
    height: int,
    tail_length: int,
    *,
    objective: Objective = Objective.SUM,
) -> WillowForest:
    """Construct the Forest of Willows with the given parameters.

    Parameters
    ----------
    k:
        Number of sections, branching factor, and per-node budget.  ``k = 1``
        degenerates to the directed cycle, which is the stable graph for
        budget-1 games; it is returned as a single-section "forest".
    height:
        Height ``h`` of each complete ``k``-ary tree (``h >= 1``).
    tail_length:
        Number of tail nodes ``l >= 0`` hanging beneath every leaf.
    """
    if k < 1:
        raise InvalidGameDefinition("k must be at least 1")
    if height < 1:
        raise InvalidGameDefinition("the tree height must be at least 1")
    if tail_length < 0:
        raise InvalidGameDefinition("the tail length must be non-negative")

    if k == 1:
        return _directed_cycle_forest(height, tail_length, objective)

    parameters = WillowParameters(k=k, height=height, tail_length=tail_length)
    strategies: Dict[NodeName, FrozenSet[NodeName]] = {}
    roots = tuple(_root_name(i) for i in range(k))
    sections: List[Tuple[NodeName, ...]] = []

    for section in range(k):
        section_nodes: List[NodeName] = []
        own_root = _root_name(section)

        # --- complete k-ary tree, nodes indexed in BFS order -------------- #
        tree_size = parameters.nodes_per_tree
        names: List[NodeName] = []
        for index in range(tree_size):
            name = own_root if index == 0 else _tree_node_name(section, index)
            names.append(name)
            section_nodes.append(name)
        first_leaf_index = (k ** height - 1) // (k - 1)
        for index in range(tree_size):
            children = [
                names[child]
                for child in range(k * index + 1, k * index + 1 + k)
                if child < tree_size
            ]
            if children:
                strategies[names[index]] = frozenset(children)

        # --- tails beneath each leaf -------------------------------------- #
        for leaf_offset in range(parameters.leaves_per_tree):
            leaf_name = names[first_leaf_index + leaf_offset]
            tail_names = [
                _tail_node_name(section, leaf_offset, depth)
                for depth in range(1, tail_length + 1)
            ]
            section_nodes.extend(tail_names)
            chain = [leaf_name] + tail_names

            # Root links, assigned bottom-up so the alternation matches the
            # figure: last tail node -> all roots; one above -> all but own;
            # then alternate.
            root_links: Dict[NodeName, FrozenSet[NodeName]] = {}
            below_has_own_root: Optional[bool] = None
            for position in range(len(chain) - 1, -1, -1):
                node = chain[position]
                is_last = position == len(chain) - 1
                if is_last and tail_length > 0:
                    chosen = set(roots)
                elif is_last and tail_length == 0:
                    # No tails at all: the leaf itself links to every root.
                    chosen = set(roots)
                elif below_has_own_root:
                    chosen = {r for r in roots if r != own_root}
                else:
                    others = [r for r in roots if r != own_root]
                    chosen = {own_root} | set(others[: k - 2])
                root_links[node] = frozenset(chosen)
                below_has_own_root = own_root in chosen

            # Combine the structural "down" link with the root links.
            for position, node in enumerate(chain):
                links = set()
                if position + 1 < len(chain):
                    links.add(chain[position + 1])
                    budget_left = k - 1
                else:
                    budget_left = k
                desired_roots = sorted(root_links[node])
                # Keep the node's own root (if chosen) and fill the rest.
                keep: List[NodeName] = []
                if own_root in desired_roots:
                    keep.append(own_root)
                for root in desired_roots:
                    if root not in keep:
                        keep.append(root)
                links.update(keep[:budget_left])
                strategies[node] = frozenset(links)

        sections.append(tuple(section_nodes))

    all_nodes: List[NodeName] = [node for section in sections for node in section]
    game = UniformBBCGame(len(all_nodes), k, objective=objective)
    # Rebuild the game on the string labels: UniformBBCGame uses integer
    # labels, so construct an equivalent uniform game over the names instead.
    game = _uniform_game_over_labels(all_nodes, k, objective)

    for node in all_nodes:
        strategies.setdefault(node, frozenset())
    profile = StrategyProfile(strategies)
    forest = WillowForest(
        parameters=parameters,
        game=game,
        profile=profile,
        roots=roots,
        sections=tuple(sections),
    )
    return forest


def _uniform_game_over_labels(
    labels: Sequence[NodeName], k: int, objective: Objective
) -> UniformBBCGame:
    """Return a uniform game whose nodes are the given labels.

    :class:`UniformBBCGame` fixes integer labels; the willow construction is
    much easier to read with structured string labels, so we subclass on the
    fly by building the base game directly.
    """
    game = UniformBBCGame.__new__(UniformBBCGame)
    game.k = k
    # Initialise the BBCGame machinery with the label set.
    from ..core.game import BBCGame  # local import to avoid a cycle at module load

    BBCGame.__init__(
        game,
        nodes=labels,
        default_weight=1.0,
        default_link_cost=1.0,
        default_link_length=1.0,
        default_budget=float(k),
        objective=objective,
    )
    return game


def _directed_cycle_forest(
    height: int, tail_length: int, objective: Objective
) -> WillowForest:
    """Degenerate ``k = 1`` case: the directed cycle is the stable graph."""
    parameters = WillowParameters(k=1, height=height, tail_length=tail_length)
    n = parameters.num_nodes
    labels = [f"c{i}" for i in range(n)]
    strategies = {labels[i]: frozenset({labels[(i + 1) % n]}) for i in range(n)}
    game = _uniform_game_over_labels(labels, 1, objective)
    profile = StrategyProfile(strategies)
    return WillowForest(
        parameters=parameters,
        game=game,
        profile=profile,
        roots=(labels[0],),
        sections=(tuple(labels),),
    )


def max_tail_length(k: int, height: int) -> int:
    """Return the largest tail length satisfying Definition 1's constraint.

    Definition 1 allows any ``0 <= l < 2 sqrt(n/k)`` subject to
    ``(h+l)²/4 + h + 2l + 1 < n/k``; this helper searches for the largest
    such ``l`` directly.
    """
    best = 0
    for candidate in range(0, 4 * (k ** height) + 4):
        params = WillowParameters(k=k, height=height, tail_length=candidate)
        if params.satisfies_definition_constraints():
            best = candidate
        else:
            break
    return best


def willow_cost_spectrum(
    k: int, height: int, tail_lengths: Sequence[int], objective: Objective = Objective.SUM
) -> List[Dict[str, float]]:
    """Return one row per tail length describing size and social cost.

    This is the data behind the Figure 3 / Theorem 4 "spectrum of stable
    graphs" discussion: as the tails grow, the (still stable) graphs get
    socially worse.
    """
    rows: List[Dict[str, float]] = []
    for tail_length in tail_lengths:
        forest = build_forest_of_willows(k, height, tail_length, objective=objective)
        n = forest.num_nodes
        social = forest.social_cost()
        rows.append(
            {
                "k": float(k),
                "height": float(height),
                "tail_length": float(tail_length),
                "n": float(n),
                "social_cost": social,
                "social_cost_per_node": social / n,
                "optimum_lower_bound": forest.game.minimum_possible_social_cost(),
            }
        )
    return rows
