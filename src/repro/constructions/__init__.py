"""Explicit graph families from the paper, packaged as game + profile pairs."""

from .cayley import (
    AbelianCayleyGraph,
    Theorem5Deviation,
    abelian_cayley_graph,
    chord_like_offsets,
    hypercube_cayley,
    is_cayley_stable,
    lemma8_threshold,
    offset_graph,
    theorem5_deviation,
)
from .forest_of_willows import (
    WillowForest,
    WillowParameters,
    build_forest_of_willows,
    max_tail_length,
    willow_cost_spectrum,
)
from .max_distance_equilibrium import (
    MaxDistanceEquilibrium,
    build_max_distance_equilibrium,
    max_distance_cost_row,
)
from .optima import (
    BaselineProfile,
    analytic_optimum_per_node,
    analytic_optimum_total,
    kary_tree_with_back_links,
    log_k,
    random_k_out_baseline,
)
from .ring_path import RingWithPathInstance, build_ring_with_path

__all__ = [
    "WillowForest",
    "WillowParameters",
    "build_forest_of_willows",
    "max_tail_length",
    "willow_cost_spectrum",
    "AbelianCayleyGraph",
    "Theorem5Deviation",
    "abelian_cayley_graph",
    "offset_graph",
    "chord_like_offsets",
    "hypercube_cayley",
    "theorem5_deviation",
    "is_cayley_stable",
    "lemma8_threshold",
    "MaxDistanceEquilibrium",
    "build_max_distance_equilibrium",
    "max_distance_cost_row",
    "RingWithPathInstance",
    "build_ring_with_path",
    "BaselineProfile",
    "kary_tree_with_back_links",
    "random_k_out_baseline",
    "analytic_optimum_per_node",
    "analytic_optimum_total",
    "log_k",
]
