"""Near-optimal (low social cost) baselines for uniform games.

The social optimum of an (n, k)-uniform game is not known in closed form, but
the paper's lower bound — every out-degree-k node has at least the layered
``k, k², ...`` distance profile, i.e. cost Ω(n log_k n) — is matched up to a
constant by "tree plus back links" graphs.  These constructions provide the
denominator for empirical price-of-anarchy / price-of-stability tables and a
convenient non-equilibrium baseline for the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Set

from ..core import Objective, StrategyProfile, UniformBBCGame
from ..core.errors import InvalidGameDefinition


@dataclass(frozen=True)
class BaselineProfile:
    """A baseline (not necessarily stable) profile together with its game."""

    game: UniformBBCGame
    profile: StrategyProfile
    description: str

    def social_cost(self) -> float:
        """Return the social cost of the baseline."""
        return self.game.social_cost(self.profile)

    def per_node_cost(self) -> float:
        """Return the average per-node cost of the baseline."""
        return self.social_cost() / self.game.num_nodes


def kary_tree_with_back_links(
    n: int, k: int, *, objective: Objective = Objective.SUM
) -> BaselineProfile:
    """Return the "k-ary tree + back links to the root" baseline.

    Node ``i`` links to its tree children ``k·i + 1 .. k·i + k`` (when they
    exist); any leftover budget is pointed back at the root (node 0).  Every
    node reaches its subtree directly and everything else through the root,
    so all distances are ``O(log_k n)`` and the social cost is
    ``O(n² log_k n / ...)`` — within a constant of the analytic optimum scale.
    """
    if n < 2 or k < 1 or k >= n:
        raise InvalidGameDefinition("need n >= 2 and 1 <= k < n")
    game = UniformBBCGame(n, k, objective=objective)
    strategies: Dict[int, Set[int]] = {}
    for node in range(n):
        children = [child for child in range(k * node + 1, k * node + k + 1) if child < n]
        links: Set[int] = set(children)
        # Spend leftover budget on a back link to the root, then on the
        # lowest-numbered nodes not yet linked (they are close to the root).
        candidates: List[int] = [0] + list(range(1, n))
        for candidate in candidates:
            if len(links) >= k:
                break
            if candidate != node and candidate not in links:
                links.add(candidate)
        strategies[node] = links
    return BaselineProfile(
        game=game,
        profile=StrategyProfile(strategies),
        description=f"k-ary tree with back links (n={n}, k={k})",
    )


def random_k_out_baseline(
    n: int, k: int, seed: int = 0, *, objective: Objective = Objective.SUM
) -> BaselineProfile:
    """Return a uniformly random k-out profile (the 'unorganised' baseline)."""
    import random

    if n < 2 or k < 1 or k >= n:
        raise InvalidGameDefinition("need n >= 2 and 1 <= k < n")
    rng = random.Random(seed)
    game = UniformBBCGame(n, k, objective=objective)
    strategies = {
        node: set(rng.sample([v for v in range(n) if v != node], k)) for node in range(n)
    }
    return BaselineProfile(
        game=game,
        profile=StrategyProfile(strategies),
        description=f"random {k}-out graph (n={n}, k={k}, seed={seed})",
    )


def analytic_optimum_per_node(n: int, k: int) -> float:
    """Return the paper's per-node lower bound: the layered distance profile sum."""
    game = UniformBBCGame(n, k)
    return game.minimum_possible_node_cost()


def analytic_optimum_total(n: int, k: int) -> float:
    """Return ``n`` times the per-node lower bound."""
    return n * analytic_optimum_per_node(n, k)


def log_k(n: int, k: int) -> float:
    """Return ``log_k n`` (convenience used throughout the benchmark tables)."""
    if k < 2:
        raise InvalidGameDefinition("log_k requires k >= 2")
    return math.log(n, k)
