"""Per-game service metrics: exact counters plus a latency reservoir.

Every counter here is **exact**, not sampled: query counts, batch sizes, and
error tallies are incremented by the worker loop itself, and the cache /
repair / traversal counters are *deltas of the engine's own exact
``stats`` dict*, absorbed after every batch (see :meth:`GameMetrics
.absorb_engine_stats`).  A deterministic query script therefore produces
bit-reproducible counter values — ``tests/test_service.py`` pins them — so a
drifting hit rate in production is a real behaviour change, never sampling
noise.

Latency quantiles are the one deliberately non-deterministic reading (they
measure wall clock).  They live in a bounded reservoir that keeps the most
recent :data:`LATENCY_RESERVOIR_LIMIT` observations; p50/p99 are
nearest-rank over the retained window.

:meth:`GameMetrics.snapshot` returns freshly built plain dicts — mutating a
snapshot can never poison the registry (the same no-aliasing discipline lint
rule RPR006 enforces on the engines' cached rows).
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Engine ``stats`` counters mirrored into a metrics snapshot, renamed to
#: the service vocabulary.  ``cache_hits`` / ``repairs`` / ``recomputes``
#: are the three ways an environment-distance row can be served (reused,
#: patched in place, traversed fresh); the rest qualify them.
ENGINE_COUNTER_MAP = {
    "rows_reused": "cache_hits",
    "rows_repaired": "repairs",
    "rows_computed": "recomputes",
    "rows_evicted": "rows_evicted",
    "evicted_recomputes": "evicted_recomputes",
    "giant_batch_traversals": "giant_traversals",
    "giant_batch_rows": "giant_rows",
    "local_syncs": "incremental_syncs",
    "full_syncs": "full_syncs",
    "row_verify_failures": "row_verify_failures",
    "lp_retries": "lp_retries",
    "lp_fallbacks": "lp_fallbacks",
    "lp_skipped": "lp_skipped",
}

#: How many recent per-query latencies the quantile window retains.
LATENCY_RESERVOIR_LIMIT = 8192


def nearest_rank(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile ``q`` in [0, 1] of a pre-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


class GameMetrics:
    """Exact per-game counters maintained by the service worker loop."""

    def __init__(self) -> None:
        #: Queries answered, by kind (including error responses).
        self.queries: Dict[str, int] = {}
        #: Error responses returned, by error class name.
        self.errors: Dict[str, int] = {}
        #: Engine-derived counters (deltas of the engine's exact stats).
        self.engine: Dict[str, int] = {}
        #: Committed strategy updates (version bumps).
        self.updates = 0
        #: Read batches executed, and how many queries rode in them.  A
        #: batch of one is not *coalesced*; ``coalesced_queries`` counts only
        #: queries that shared their batch with at least one other query, so
        #: ``coalesced_queries / batched_queries`` is the win rate and
        #: ``batched_queries / batches`` the mean coalescing factor.
        self.batches = 0
        self.batched_queries = 0
        self.coalesced_queries = 0
        self.max_batch = 0
        # Last-seen absolute engine counter values, so absorb_engine_stats
        # accumulates deltas even though the engine never resets its stats.
        self._engine_seen: Dict[str, int] = {}
        self._latencies: List[float] = []

    # ------------------------------------------------------------------ #
    # Recording (worker loop only)
    # ------------------------------------------------------------------ #
    def record_query(self, kind: str, seconds: Optional[float] = None) -> None:
        self.queries[kind] = self.queries.get(kind, 0) + 1
        if seconds is not None:
            self._latencies.append(seconds)
            if len(self._latencies) > LATENCY_RESERVOIR_LIMIT:
                del self._latencies[: len(self._latencies) // 2]

    def record_error(self, error_name: str) -> None:
        self.errors[error_name] = self.errors.get(error_name, 0) + 1

    def record_batch(self, size: int) -> None:
        if size <= 0:
            return
        self.batches += 1
        self.batched_queries += size
        if size > 1:
            self.coalesced_queries += size
        if size > self.max_batch:
            self.max_batch = size

    def record_update(self) -> None:
        self.updates += 1

    def absorb_engine_stats(self, stats: Dict[str, int]) -> None:
        """Fold the engine's monotone counters in as deltas since last absorb."""
        for raw, name in ENGINE_COUNTER_MAP.items():
            value = stats.get(raw)
            if value is None:
                continue
            delta = value - self._engine_seen.get(raw, 0)
            self._engine_seen[raw] = value
            if delta:
                self.engine[name] = self.engine.get(name, 0) + delta

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def coalescing_factor(self) -> float:
        """Mean read-batch size (1.0 when nothing ever coalesced)."""
        if not self.batches:
            return 0.0
        return self.batched_queries / self.batches

    def cache_hit_rate(self) -> float:
        """Served-from-cache fraction of all row touches (0.0 before traffic)."""
        hits = self.engine.get("cache_hits", 0)
        total = (
            hits
            + self.engine.get("repairs", 0)
            + self.engine.get("recomputes", 0)
        )
        return hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Return a freshly built, alias-free snapshot of every reading.

        The returned dict (and every nested dict) is new on each call;
        callers may mutate it freely without affecting the registry, and two
        consecutive calls with no traffic in between compare equal.
        """
        ordered = sorted(self._latencies)
        return {
            "queries": dict(self.queries),
            "errors": dict(self.errors),
            "engine": dict(self.engine),
            "updates": self.updates,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "coalesced_queries": self.coalesced_queries,
            "max_batch": self.max_batch,
            "coalescing_factor": self.coalescing_factor(),
            "cache_hit_rate": self.cache_hit_rate(),
            "latency_count": len(ordered),
            "latency_p50_s": nearest_rank(ordered, 0.50),
            "latency_p99_s": nearest_rank(ordered, 0.99),
        }


__all__ = [
    "ENGINE_COUNTER_MAP",
    "GameMetrics",
    "LATENCY_RESERVOIR_LIMIT",
    "nearest_rank",
]
