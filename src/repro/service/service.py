"""The always-on asyncio serving layer over a :class:`GameCatalog`.

One :class:`GameService` hosts many live games behind a single event loop.
Per game there is one ``asyncio.Queue`` and one long-lived worker task; the
worker drains **everything currently queued** in one go, executes maximal
runs of consecutive read queries as one coalesced batch
(:func:`~repro.service.batching.execute_batch` — the giant-batch traversal
substrate), and applies strategy updates one at a time between runs (each a
single-node engine sync, i.e. the incremental repair path).  Because all
work for a game funnels through its worker, the catalog's reader/writer
version contract holds without locks: reads never observe a half-applied
update, and an update stream interleaves deterministically with the read
runs around it.

The loop is deliberately stdlib-only and in-process (queries are CPU-bound
engine calls; an HTTP front can be layered on later, as the ROADMAP notes).
Every submitted query resolves to exactly one
:class:`~repro.service.batching.Response` — payload or documented typed
error — even under an armed :class:`~repro.reliability.FaultPlan`; a worker
task never dies with a query in flight.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence

from ..core.errors import BBCError
from ..reliability.faults import fault_point
from .batching import Query, Response, execute_batch
from .catalog import GameCatalog, GameEntry
from .errors import QueryFailedError, ServiceClosedError, UnknownGameError

#: Queue sentinel that tells a worker to shut down after failing the
#: remaining queued work with :class:`ServiceClosedError`.
_SHUTDOWN = object()


class _QueuedQuery:
    """One queued read: the query plus the future its response resolves."""

    __slots__ = ("query", "future")

    def __init__(self, query: Query, future: "asyncio.Future") -> None:
        self.query = query
        self.future = future


class _QueuedUpdate:
    """One queued write: node, new strategy, and the resolving future."""

    __slots__ = ("node", "strategy", "future")

    def __init__(self, node, strategy, future: "asyncio.Future") -> None:
        self.node = node
        self.strategy = strategy
        self.future = future


def _apply_update(entry: GameEntry, node, strategy) -> Response:
    """Commit one strategy update, mapping failures to typed error responses."""
    started = time.perf_counter()
    try:
        # The write-side fault site: an armed rule fires *before* any state
        # changes, so a drilled update failure leaves the version and
        # profile exactly as the documented contract requires.
        fault_point("service.update", key=(entry.name, node))
        version = entry.apply_update(node, strategy)
    except BBCError as exc:
        entry.metrics.record_query("update", time.perf_counter() - started)
        entry.metrics.record_error(type(exc).__name__)
        return Response(
            game=entry.name,
            kind="update",
            version=entry.version,
            engine_version=entry.engine_version,
            error=type(exc).__name__,
            error_message=str(exc),
        )
    except Exception as exc:  # noqa: BLE001 - terminal typed-error catch-all
        wrapped = QueryFailedError("update", exc)
        entry.metrics.record_query("update", time.perf_counter() - started)
        entry.metrics.record_error(type(wrapped).__name__)
        return Response(
            game=entry.name,
            kind="update",
            version=entry.version,
            engine_version=entry.engine_version,
            error=type(wrapped).__name__,
            error_message=str(wrapped),
        )
    entry.metrics.record_query("update", time.perf_counter() - started)
    return Response(
        game=entry.name,
        kind="update",
        version=version,
        engine_version=entry.engine_version,
        payload={"version": version, "node": node},
    )


class GameService:
    """Batched async queries and serialized updates over a game catalog."""

    def __init__(self, catalog: Optional[GameCatalog] = None) -> None:
        self.catalog = catalog if catalog is not None else GameCatalog()
        self._queues: Dict[str, "asyncio.Queue"] = {}
        self._workers: Dict[str, "asyncio.Task"] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def register(self, name: str, game, **kwargs) -> GameEntry:
        """Register a game (see :meth:`GameCatalog.register`); queries may
        be submitted for it immediately afterwards."""
        if self._closed:
            raise ServiceClosedError("the service is closed")
        return self.catalog.register(name, game, **kwargs)

    async def evict(self, name: str) -> None:
        """Stop ``name``'s worker (draining its queue) and drop the entry."""
        if name not in self.catalog:
            raise UnknownGameError(name)
        await self._stop_worker(name)
        self.catalog.evict(name)

    async def close(self) -> None:
        """Shut every worker down; queued work fails with ServiceClosedError."""
        self._closed = True
        for name in list(self._workers):
            await self._stop_worker(name)

    async def __aenter__(self) -> "GameService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _stop_worker(self, name: str) -> None:
        worker = self._workers.pop(name, None)
        queue = self._queues.pop(name, None)
        if worker is None or queue is None:
            return
        queue.put_nowait(_SHUTDOWN)
        await worker

    def _queue_for(self, name: str) -> "asyncio.Queue":
        if self._closed:
            raise ServiceClosedError("the service is closed")
        if name not in self.catalog:
            raise UnknownGameError(name)
        queue = self._queues.get(name)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[name] = queue
            self._workers[name] = asyncio.get_running_loop().create_task(
                self._worker(name, queue)
            )
        return queue

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(self, name: str, query: Query) -> Response:
        """Submit one read query; resolves when its batch executes."""
        queue = self._queue_for(name)
        future = asyncio.get_running_loop().create_future()
        queue.put_nowait(_QueuedQuery(query, future))
        return await future

    async def gather(self, name: str, queries: Sequence[Query]) -> List[Response]:
        """Submit several reads at once (they enqueue together, so they are
        guaranteed to coalesce into one batch)."""
        queue = self._queue_for(name)
        loop = asyncio.get_running_loop()
        futures = []
        for query in queries:
            future = loop.create_future()
            queue.put_nowait(_QueuedQuery(query, future))
            futures.append(future)
        return list(await asyncio.gather(*futures))

    async def update(self, name: str, node, strategy) -> Response:
        """Submit a strategy update; resolves once it commits (or fails typed)."""
        queue = self._queue_for(name)
        future = asyncio.get_running_loop().create_future()
        queue.put_nowait(_QueuedUpdate(node, strategy, future))
        return await future

    # Convenience one-call forms ---------------------------------------- #
    async def cost(self, name: str, node, *, version: Optional[int] = None) -> Response:
        return await self.submit(name, Query(kind="cost", node=node, version=version))

    async def all_costs(self, name: str, *, version: Optional[int] = None) -> Response:
        return await self.submit(name, Query(kind="all_costs", version=version))

    async def social_cost(self, name: str, *, version: Optional[int] = None) -> Response:
        return await self.submit(name, Query(kind="social_cost", version=version))

    async def best_response(
        self, name: str, node, *, candidates=None, version: Optional[int] = None
    ) -> Response:
        return await self.submit(
            name,
            Query(kind="best_response", node=node, candidates=candidates, version=version),
        )

    async def what_if(
        self, name: str, node, strategy, *, version: Optional[int] = None
    ) -> Response:
        return await self.submit(
            name, Query(kind="what_if", node=node, strategy=strategy, version=version)
        )

    async def report(
        self, name: str, *, candidates=None, version: Optional[int] = None
    ) -> Response:
        return await self.submit(
            name, Query(kind="report", candidates=candidates, version=version)
        )

    async def stats(self, name: str) -> Response:
        return await self.submit(name, Query(kind="stats"))

    # ------------------------------------------------------------------ #
    # The per-game worker
    # ------------------------------------------------------------------ #
    async def _worker(self, name: str, queue: "asyncio.Queue") -> None:
        while True:
            items = [await queue.get()]
            while True:
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            shutdown = False
            run: List[_QueuedQuery] = []
            for item in items:
                if item is _SHUTDOWN or shutdown:
                    shutdown = True
                    if item is not _SHUTDOWN:
                        self._fail_closed(item)
                    continue
                if isinstance(item, _QueuedQuery):
                    run.append(item)
                    continue
                # An update closes the current read run (reads before it see
                # the old version, reads after it the new one).
                self._flush_run(name, run)
                run = []
                self._commit_update(name, item)
            self._flush_run(name, run)
            if shutdown:
                self._drain_closed(queue)
                return
            # One cooperative yield per drained wave, so a flood of queued
            # work cannot starve other games' workers (each wave batches
            # everything that arrived while this one executed).
            await asyncio.sleep(0)

    def _flush_run(self, name: str, run: List[_QueuedQuery]) -> None:
        if not run:
            return
        try:
            entry = self.catalog.entry(name)
        except UnknownGameError:
            for item in run:
                if not item.future.done():
                    item.future.set_exception(UnknownGameError(name))
            return
        responses = execute_batch(entry, [item.query for item in run])
        for item, response in zip(run, responses):
            if not item.future.done():
                item.future.set_result(response)

    def _commit_update(self, name: str, item: _QueuedUpdate) -> None:
        try:
            entry = self.catalog.entry(name)
        except UnknownGameError:
            if not item.future.done():
                item.future.set_exception(UnknownGameError(name))
            return
        response = _apply_update(entry, item.node, item.strategy)
        if not item.future.done():
            item.future.set_result(response)

    def _fail_closed(self, item) -> None:
        future = getattr(item, "future", None)
        if future is not None and not future.done():
            future.set_exception(ServiceClosedError("the service is closed"))

    def _drain_closed(self, queue: "asyncio.Queue") -> None:
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not _SHUTDOWN:
                self._fail_closed(item)


__all__ = ["GameService"]
