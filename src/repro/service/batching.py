"""Query model and batched execution against one catalog entry.

The service's unit of work is a **batch**: the run of read queries its
worker loop drained from the queue between two strategy updates.  All reads
in a batch execute against the same ``(version, profile)`` pair, and for
integral games the batch's whole row working set is staged up front through
:meth:`~repro.engine.CostEngine.plan_report_prefetch` — the same giant-batch
substrate whole-profile reports ride — so ``q`` concurrent cost /
best-response / what-if queries against one game version cost one
multi-source, per-row-masked traversal per chunk instead of ``q`` small
batches.  Coalescing changes only *when* rows are computed, never their
values (the engine's giant-batch contract), so a batched response is
bit-identical to the same query served alone.

Each query yields exactly one :class:`Response`: either a payload or a
*documented typed error* (see :mod:`repro.service.errors`); a handler
exception can never take down the worker loop.  Payloads are plain
JSON-able scalars/dicts/lists, deterministically ordered, so two identical
query scripts produce byte-identical response streams — the property the
fault drill (``scripts/bench_service.py --drill``) asserts under injection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.best_response import best_response
from ..core.equilibrium import equilibrium_report
from ..core.errors import BBCError
from ..core.fractional import epsilon_equilibrium_report, fractional_best_response
from ..reliability.faults import fault_point
from .catalog import KIND_FRACTIONAL, GameEntry
from .errors import InvalidQueryError, QueryFailedError

#: Read query kinds (``update`` is the one write and is not a Query kind —
#: the service routes it through :meth:`GameEntry.apply_update`).
QUERY_KINDS = (
    "cost",
    "all_costs",
    "social_cost",
    "best_response",
    "what_if",
    "report",
    "stats",
)

#: Kinds that touch distance rows and therefore count toward coalescing
#: metrics (``stats`` is pure bookkeeping).
ROW_QUERY_KINDS = frozenset(QUERY_KINDS) - {"stats"}

#: Default epsilon for fractional ``report`` queries (matches
#: :func:`repro.core.fractional.epsilon_equilibrium_report`).
FRACTIONAL_REPORT_EPSILON = 1e-5


@dataclass(frozen=True)
class Query:
    """One read query against a named game.

    ``kind`` is one of :data:`QUERY_KINDS`.  ``node`` names the probed
    player for ``cost`` / ``best_response`` / ``what_if``; ``strategy``
    carries the hypothetical strategy of a ``what_if`` (an iterable of
    target labels for integral games, a ``{target: capacity}`` mapping for
    fractional ones); ``candidates`` optionally restricts the deviation
    targets of ``best_response`` (a sequence) or ``report`` (a per-node
    mapping).  ``version`` pins the read: the query fails with
    :class:`~repro.service.errors.StaleVersionError` unless the game is
    still at exactly that version.
    """

    kind: str
    node: object = None
    strategy: object = None
    candidates: object = None
    version: Optional[int] = None


@dataclass(frozen=True)
class Response:
    """The outcome of one query: a payload or a documented typed error."""

    game: str
    kind: str
    version: int
    engine_version: int
    payload: object = None
    error: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def comparable(self) -> tuple:
        """The deterministic identity of this response (no latency, no ids).

        The fault drill compares these across a healthy and a fault-injected
        run: equal tuples mean bit-identical service behaviour.
        """
        return (
            self.game,
            self.kind,
            self.version,
            self.payload,
            self.error,
        )


def _sorted_labels(labels) -> list:
    """Deterministic node-label ordering (labels may be of mixed types)."""
    return sorted(labels, key=repr)


def _best_response_payload(result) -> Dict[str, object]:
    return {
        "node": result.node,
        "current_cost": result.current_cost,
        "best_cost": result.best_cost,
        "regret": result.regret,
        "improved": result.improved,
        "best_strategy": _sorted_labels(result.best_strategy),
    }


def _report_payload(report) -> Dict[str, object]:
    return {
        "is_equilibrium": report.is_equilibrium,
        "max_regret": report.max_regret,
        "unstable_nodes": _sorted_labels(report.unstable_nodes),
        "nodes_checked": len(report.responses),
    }


def _stats_payload(entry: GameEntry) -> Dict[str, object]:
    entry.absorb_engine_stats()
    payload = entry.metrics.snapshot()
    payload["name"] = entry.name
    payload["kind"] = entry.kind
    payload["version"] = entry.version
    payload["engine_version"] = entry.engine_version
    cache_bytes = getattr(entry.engine, "cache_bytes", None)
    if callable(cache_bytes):
        payload["cache_bytes"] = cache_bytes()
    return payload


def _execute_integral(entry: GameEntry, query: Query):
    game, engine, profile = entry.game, entry.engine, entry.profile
    if query.kind == "cost":
        engine.sync(profile)
        return engine.cost_of(query.node, profile.strategy(query.node))
    if query.kind == "all_costs":
        costs = game.all_costs(profile, engine=engine)
        return {label: costs[label] for label in _sorted_labels(costs)}
    if query.kind == "social_cost":
        return game.social_cost(profile, engine=engine)
    if query.kind == "best_response":
        result = best_response(
            game, profile, query.node, candidates=query.candidates, engine=engine
        )
        return _best_response_payload(result)
    if query.kind == "what_if":
        validated = game.validate_strategy(query.node, query.strategy)
        engine.sync(profile)
        return engine.cost_of(query.node, validated)
    if query.kind == "report":
        report = equilibrium_report(
            game, profile, candidates=query.candidates, engine=engine
        )
        return _report_payload(report)
    raise InvalidQueryError(f"unknown query kind {query.kind!r}")


def _execute_fractional(entry: GameEntry, query: Query):
    game, profile, flag = entry.game, entry.profile, entry.engine_flag
    if query.kind == "cost":
        return game.node_cost(profile, query.node, engine=flag)
    if query.kind == "all_costs":
        costs = game.all_costs(profile, engine=flag)
        return {label: costs[label] for label in _sorted_labels(costs)}
    if query.kind == "social_cost":
        return game.social_cost(profile, engine=flag)
    if query.kind == "best_response":
        result = fractional_best_response(game, profile, query.node, engine=flag)
        return {
            "node": result.node,
            "current_cost": result.current_cost,
            "best_cost": result.best_cost,
            "regret": result.regret,
            "improved": result.improved,
            "best_strategy": {
                target: result.best_strategy[target]
                for target in _sorted_labels(result.best_strategy)
            },
        }
    if query.kind == "what_if":
        # Evaluated on the dependency-free reference path: the hypothetical
        # profile must not churn the warm engine's version (and the
        # FlowNetwork path is exact for cost evaluation).
        hypothetical = profile.with_strategy(query.node, dict(query.strategy))
        return game.node_cost(hypothetical, query.node, engine=False)
    if query.kind == "report":
        report = epsilon_equilibrium_report(
            game, profile, epsilon=FRACTIONAL_REPORT_EPSILON, engine=flag
        )
        return {
            "is_equilibrium": report.is_epsilon_equilibrium,
            "max_regret": report.max_regret,
            "epsilon": report.epsilon,
            "nodes_checked": len(report.regrets),
        }
    raise InvalidQueryError(f"unknown query kind {query.kind!r}")


def execute_query(entry: GameEntry, query: Query) -> Response:
    """Execute one query against ``entry``, mapping failures to typed errors."""
    started = time.perf_counter()
    try:
        if query.kind not in QUERY_KINDS:
            raise InvalidQueryError(
                f"unknown query kind {query.kind!r}; expected one of "
                f"{', '.join(QUERY_KINDS)}"
            )
        entry.check_version(query.version)
        # The service-level fault site: an armed rule here models a handler
        # crash *inside* the serving layer (as opposed to the engine-level
        # sites it composes with); the query gets a typed InjectedFault
        # error response and the worker loop carries on.
        fault_point("service.query", key=(entry.name, query.kind))
        if query.kind == "stats":
            payload = _stats_payload(entry)
        elif entry.kind == KIND_FRACTIONAL:
            payload = _execute_fractional(entry, query)
        else:
            payload = _execute_integral(entry, query)
    except BBCError as exc:
        entry.metrics.record_query(query.kind, time.perf_counter() - started)
        entry.metrics.record_error(type(exc).__name__)
        return Response(
            game=entry.name,
            kind=query.kind,
            version=entry.version,
            engine_version=entry.engine_version,
            error=type(exc).__name__,
            error_message=str(exc),
        )
    except Exception as exc:  # noqa: BLE001 - terminal typed-error catch-all
        wrapped = QueryFailedError(query.kind, exc)
        entry.metrics.record_query(query.kind, time.perf_counter() - started)
        entry.metrics.record_error(type(wrapped).__name__)
        return Response(
            game=entry.name,
            kind=query.kind,
            version=entry.version,
            engine_version=entry.engine_version,
            error=type(wrapped).__name__,
            error_message=str(wrapped),
        )
    entry.metrics.record_query(query.kind, time.perf_counter() - started)
    return Response(
        game=entry.name,
        kind=query.kind,
        version=entry.version,
        engine_version=entry.engine_version,
        payload=payload,
    )


def _plan_candidates(entry: GameEntry, queries: List[Query]):
    """Build the prefetch restriction map for a batch of integral reads.

    Returns ``(should_plan, candidates_map)``.  A ``report`` query subsumes
    every per-node probe, so its own restriction map (or the full working
    set) is planned; otherwise every game node gets an explicit entry — the
    probed nodes their candidate / hypothetical first hops, all others an
    empty list — because :meth:`CostEngine.plan_report_prefetch` treats a
    *missing* node as "plan every row" (full-report semantics).  The engine
    always adds a node's current arcs itself, which is exactly the working
    set of a plain ``cost`` query; ``all_costs`` / ``social_cost`` use the
    engine's own batched full-row sweep and need no planning.
    """
    report_queries = [q for q in queries if q.kind == "report"]
    if report_queries:
        if len(report_queries) == 1:
            return True, report_queries[0].candidates
        return True, None
    touched: Dict[object, list] = {}
    for query in queries:
        if query.kind == "best_response":
            wanted = (
                list(query.candidates)
                if query.candidates is not None
                else [v for v in entry.game.nodes if v != query.node]
            )
        elif query.kind == "what_if":
            wanted = list(query.strategy) if query.strategy else []
        elif query.kind == "cost":
            wanted = []  # current arcs are added by the engine itself
        else:
            continue
        seen = touched.setdefault(query.node, [])
        touched[query.node] = list(dict.fromkeys([*seen, *wanted]))
    if not touched:
        return False, None
    candidates = {label: [] for label in entry.game.nodes}
    candidates.update(touched)
    return True, candidates


def execute_batch(entry: GameEntry, queries: List[Query]) -> List[Response]:
    """Execute a drained run of read queries as one coalesced batch.

    For integral entries with at least two row-touching queries, the whole
    working set is staged via ``plan_report_prefetch`` first, so the
    per-query probes drain giant chunks instead of issuing per-node
    traversals.  Order is preserved; every query gets exactly one response.
    """
    row_queries = [q for q in queries if q.kind in ROW_QUERY_KINDS]
    if (
        entry.kind != KIND_FRACTIONAL
        and len(row_queries) > 1
        and entry.engine is not None
    ):
        try:
            should_plan, candidates = _plan_candidates(entry, row_queries)
            if should_plan:
                entry.engine.plan_report_prefetch(entry.profile, candidates)
        except BBCError:
            # Planning is an optimisation only — never let it fail a batch;
            # the per-query path recomputes whatever was not staged.
            pass
    responses = [execute_query(entry, query) for query in queries]
    if row_queries:
        entry.metrics.record_batch(len(row_queries))
    entry.absorb_engine_stats()
    return responses


__all__ = [
    "FRACTIONAL_REPORT_EPSILON",
    "Query",
    "QUERY_KINDS",
    "ROW_QUERY_KINDS",
    "Response",
    "execute_batch",
    "execute_query",
]
