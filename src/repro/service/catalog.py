"""The catalog of live games: named, versioned, warm-engine entries.

A :class:`GameCatalog` maps client-facing names to :class:`GameEntry`
objects, each holding a game, its **warm engine** (a dedicated
:class:`~repro.engine.CostEngine` for integral games, the shared
:class:`~repro.engine.FractionalEngine` — or the dependency-free reference
path — for fractional games), the current profile, and a monotonically
increasing **service version**.

**The reader/writer contract** promotes the engine's version-stamp
discipline (see the "Snapshot ownership and lifetime" section of
:mod:`repro.engine`) to an explicit client-visible protocol:

* Readers never observe a half-applied update.  A read executes against the
  exact ``(version, profile)`` pair published by the last committed write,
  and for integral games the entry records which frozen
  :class:`~repro.engine.EngineSnapshot` version backs each service version
  (:attr:`GameEntry.engine_version`) — equal service versions therefore
  guarantee bit-identical cost reads.
* Writers go through :meth:`GameEntry.apply_update`, which validates the
  strategy, syncs the engine (a single-node step rides the incremental
  repair path — the edit log and lazy row repair of the engine's repair
  contract — so an update stream never triggers full recomputes), and only
  then publishes the bumped version.  A rejected update leaves version and
  profile untouched.
* A read may *pin* a version; the entry answers only while the head still
  matches, else raises the documented
  :class:`~repro.service.errors.StaleVersionError` (the catalog keeps one
  live version per game — its warm row caches track the head).

The catalog itself is deliberately synchronous and single-threaded: the
asyncio :class:`~repro.service.service.GameService` serializes all access
through one event loop, which is what makes the contract above hold without
locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import InvalidStrategy
from ..core.fractional import FractionalBBCGame, FractionalProfile
from ..core.game import BBCGame
from ..engine import CostEngine, resolve_fractional_engine
from .errors import DuplicateGameError, StaleVersionError, UnknownGameError
from .metrics import GameMetrics

#: Entry kinds: integral games run on :class:`CostEngine`; fractional games
#: run on :class:`FractionalEngine` when scipy is available and on the
#: FlowNetwork reference otherwise (``engine_flag`` captures which).
KIND_INTEGRAL = "integral"
KIND_FRACTIONAL = "fractional"


@dataclass
class GameEntry:
    """One live game: warm engine, current profile, service version, metrics."""

    name: str
    kind: str
    game: object
    engine: object  # CostEngine | FractionalEngine | None (fractional reference)
    profile: object  # StrategyProfile | FractionalProfile
    version: int = 1
    #: The engine-snapshot version backing :attr:`version` (integral games
    #: only; fractional engines stamp internally).  Responses carry it so a
    #: client can correlate service versions with engine snapshots.
    engine_version: int = 0
    metrics: GameMetrics = field(default_factory=GameMetrics)

    @property
    def engine_flag(self):
        """The tri-state ``engine=`` value to thread into routed entry points.

        The entry's own engine instance when one is warm, else ``False`` —
        the reference path — so a fractional entry on the minimal dependency
        leg stays dependency-free instead of re-resolving the shared
        registry on every call.
        """
        return self.engine if self.engine is not None else False

    def check_version(self, pinned: Optional[int]) -> int:
        """Validate a pinned read version against the head; return the head."""
        if pinned is not None and pinned != self.version:
            raise StaleVersionError(self.name, pinned, self.version)
        return self.version

    def apply_update(self, node, strategy) -> int:
        """Commit ``node``'s new strategy; return the new service version.

        Integral entries take an iterable of target labels, fractional
        entries a ``{target: capacity}`` mapping.  Validation happens
        *before* any state changes: an infeasible strategy raises
        :class:`~repro.core.errors.InvalidStrategy` and the entry stays at
        its current version with its current profile.  The engine sync of a
        committed single-node step is the cheap local case of the engine's
        repair contract — cached rows of other nodes repair lazily instead
        of recomputing.
        """
        if self.kind == KIND_FRACTIONAL:
            if not isinstance(strategy, Mapping):
                raise InvalidStrategy(
                    f"fractional update for {node!r} needs a target->capacity "
                    f"mapping, got {type(strategy).__name__}"
                )
            if not self.game.is_feasible_strategy(node, strategy):
                raise InvalidStrategy(
                    f"update for node {node!r} exceeds its budget or buys "
                    "negative capacity"
                )
            new_profile = self.profile.with_strategy(node, strategy)
            if self.engine is not None:
                self.engine.sync(new_profile)
        else:
            validated = self.game.validate_strategy(node, strategy)
            new_profile = self.profile.with_strategy(node, validated)
            self.engine.sync(new_profile)
            self.engine_version = self.engine.snapshot().version
        self.profile = new_profile
        self.version += 1
        self.metrics.record_update()
        return self.version

    def absorb_engine_stats(self) -> None:
        """Fold the engine's exact counters into this entry's metrics."""
        stats = getattr(self.engine, "stats", None)
        if stats is not None:
            self.metrics.absorb_engine_stats(stats)


class GameCatalog:
    """Named registration, eviction, and lookup of live game entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, GameEntry] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        """Registered game names, in registration order."""
        return list(self._entries)

    def entry(self, name: str) -> GameEntry:
        """Return the live entry for ``name`` or raise :class:`UnknownGameError`."""
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownGameError(name)
        return entry

    def register(
        self,
        name: str,
        game,
        *,
        profile=None,
        backend: Optional[str] = None,
        verify_every: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> GameEntry:
        """Register ``game`` under ``name`` with a freshly warmed engine.

        Integral :class:`BBCGame` instances get a *dedicated*
        :class:`CostEngine` (not the shared per-game registry entry), so
        service-level configuration — ``verify_every`` row self-verification
        for long-lived serving, an explicit traversal ``backend``, a byte
        budget — never leaks into batch callers sharing the same game
        object.  :class:`FractionalBBCGame` instances resolve the usual
        shared fractional engine (``None`` on the minimal dependency leg —
        the entry then serves on the FlowNetwork reference path and
        LP-backed queries surface the documented
        :class:`~repro.core.errors.BestResponseUnavailable`).

        The initial ``profile`` defaults to the game's empty profile; the
        engine is synced to it before the entry becomes visible, so the
        first query hits a warm, consistent version 1.
        """
        if name in self._entries:
            raise DuplicateGameError(name)
        if isinstance(game, FractionalBBCGame):
            if profile is None:
                profile = game.empty_profile()
            if not isinstance(profile, FractionalProfile):
                raise InvalidStrategy(
                    "fractional games need a FractionalProfile initial profile"
                )
            game.validate_profile(profile)
            engine = resolve_fractional_engine(game, None)
            if engine is not None:
                engine.sync(profile)
            entry = GameEntry(
                name=name,
                kind=KIND_FRACTIONAL,
                game=game,
                engine=engine,
                profile=profile,
            )
        elif isinstance(game, BBCGame):
            if profile is None:
                profile = game.empty_profile()
            game.validate_profile(profile)
            engine = CostEngine(
                game,
                backend=backend,
                verify_every=verify_every,
                memory_budget_bytes=memory_budget_bytes,
            )
            engine.sync(profile)
            entry = GameEntry(
                name=name,
                kind=KIND_INTEGRAL,
                game=game,
                engine=engine,
                profile=profile,
                engine_version=engine.snapshot().version,
            )
        else:
            raise InvalidStrategy(
                f"cannot register a {type(game).__name__}: expected a BBCGame "
                "or FractionalBBCGame"
            )
        self._entries[name] = entry
        return entry

    def evict(self, name: str) -> GameEntry:
        """Drop ``name`` from the catalog and return its (now dead) entry.

        The entry's engine and caches become garbage immediately; a query in
        flight for the name fails with :class:`UnknownGameError` once it
        reaches the worker loop, which is the documented race outcome.
        """
        entry = self._entries.pop(name, None)
        if entry is None:
            raise UnknownGameError(name)
        return entry

    def describe(self) -> List[Tuple[str, str, int, int]]:
        """Return ``(name, kind, n, version)`` for every entry (for ops)."""
        rows = []
        for entry in self._entries.values():
            nodes: Iterable = entry.game.nodes
            rows.append((entry.name, entry.kind, len(tuple(nodes)), entry.version))
        return rows


__all__ = [
    "GameCatalog",
    "GameEntry",
    "KIND_FRACTIONAL",
    "KIND_INTEGRAL",
]
