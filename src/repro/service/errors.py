"""Typed errors of the always-on game service.

Every error a client can observe through a :class:`~repro.service.Response`
is one of the classes below (or a :class:`~repro.core.errors.BBCError`
subclass raised by the engine layer and relayed by name, e.g.
:class:`~repro.core.errors.BestResponseUnavailable` on the minimal
dependency leg or :class:`~repro.reliability.InjectedFault` under an armed
fault plan).  The service's availability contract mirrors the engine's
failure semantics: a query either returns a payload **bit-identical** to its
fault-free run or a *documented typed error* — never a wrong answer, never a
bare traceback, and never a dead worker loop.  ``docs/service.md`` lists the
full client-observable set; ``scripts/bench_service.py --drill`` and
``tests/test_service.py`` enforce it under seeded fault plans.
"""

from __future__ import annotations

from ..core.errors import BBCError


class ServiceError(BBCError):
    """Base class for every error raised by :mod:`repro.service`."""


class UnknownGameError(ServiceError):
    """A query or eviction named a game the catalog does not hold."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no game named {name!r} in the catalog")
        self.name = name


class DuplicateGameError(ServiceError):
    """A registration reused a name the catalog already holds.

    Names are the client-facing identity of a live engine; silently
    replacing one would invalidate every version a client has pinned.
    Evict the old entry first, or register under a fresh name.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"a game named {name!r} is already registered")
        self.name = name


class StaleVersionError(ServiceError):
    """A read pinned ``version=`` but the game has moved past it.

    The catalog keeps exactly one live version per game (the engine's row
    caches are what make the service fast, and they track the head), so a
    pinned read can only be answered while the head still matches.  Clients
    that see this error re-issue the query unpinned and adopt the version
    stamped on the response.
    """

    def __init__(self, name: str, requested: int, current: int) -> None:
        super().__init__(
            f"game {name!r} is at version {current}, not the pinned "
            f"version {requested}"
        )
        self.name = name
        self.requested = requested
        self.current = current


class InvalidQueryError(ServiceError):
    """A query was malformed: unknown kind, missing node, bad strategy shape."""


class ServiceClosedError(ServiceError):
    """A query was submitted after :meth:`~repro.service.GameService.close`."""


class QueryFailedError(ServiceError):
    """A query handler failed with a non-BBC exception.

    The original exception's type and message are preserved in the error
    text; the worker loop survives and the next query is unaffected.  This
    is the terminal catch-all of the typed-error contract — anything routine
    (stale version, unavailable solver, injected fault) surfaces as its own
    class above instead.
    """

    def __init__(self, kind: str, cause: BaseException) -> None:
        super().__init__(
            f"{kind!r} query failed: {type(cause).__name__}: {cause}"
        )
        self.kind = kind
        self.cause_type = type(cause).__name__


__all__ = [
    "DuplicateGameError",
    "InvalidQueryError",
    "QueryFailedError",
    "ServiceClosedError",
    "ServiceError",
    "StaleVersionError",
    "UnknownGameError",
]
