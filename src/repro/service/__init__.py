"""The always-on game service: a batched async API over warm engines.

This is ROADMAP direction 2 made concrete — the first subsystem whose state
*outlives a single entry-point call*.  It is built **on top of** the
reliability runtime (PR 7), not beside it: warm engines keep answering after
a corrupted cache row (``verify_every`` self-verification) or a solver
hiccup (the LP retry-then-reference fallback), and every availability claim
is CI-verified under seeded :class:`~repro.reliability.FaultPlan`\\ s.

The layer cake, bottom up:

* :mod:`repro.service.errors` — the documented typed errors a client can
  observe.  The service-wide contract is the engine's failure semantics
  promoted to the serving boundary: every response is either bit-identical
  to its fault-free run or one of these errors.
* :mod:`repro.service.metrics` — exact (never sampled) per-game counters:
  query/error tallies, batch coalescing, cache-hit/repair/recompute deltas
  absorbed from the engine's own stats, and a bounded latency reservoir for
  p50/p99.  ``stats()`` snapshots are freshly built dicts — alias-free, the
  RPR006 discipline applied to the metrics surface.
* :mod:`repro.service.catalog` — :class:`GameCatalog` /
  :class:`GameEntry`: named registration and eviction of live games
  (uniform, weighted, fractional) with their warm engines, plus the
  **reader/writer version contract**: one monotone service version per
  game, reads answered at exactly one version (pinnable, with
  :class:`~repro.service.errors.StaleVersionError` as the documented miss),
  writes committed atomically through validation → engine sync → publish.
* :mod:`repro.service.batching` — :class:`Query` / :class:`Response` and
  the coalescing executor: a run of concurrent reads against one game
  version stages its whole row working set through
  :meth:`~repro.engine.CostEngine.plan_report_prefetch` and drains it in
  giant multi-source traversals (PR 6's substrate), bit-identical to
  serving each query alone.
* :mod:`repro.service.service` — :class:`GameService`: one asyncio worker
  per game serializing batched reads and single-node updates (the
  incremental repair path) without locks.

``docs/service.md`` is the client-facing guide; ``scripts/bench_service.py``
is the load generator recording ``benchmarks/output/BENCH_service.json``
(floor-gated by ``scripts/bench_speed.py --check-floors``) and, with
``--drill``, the fault-drill harness CI runs on both dependency legs.
"""

from .batching import (
    QUERY_KINDS,
    Query,
    Response,
    execute_batch,
    execute_query,
)
from .catalog import GameCatalog, GameEntry
from .errors import (
    DuplicateGameError,
    InvalidQueryError,
    QueryFailedError,
    ServiceClosedError,
    ServiceError,
    StaleVersionError,
    UnknownGameError,
)
from .metrics import GameMetrics
from .service import GameService

__all__ = [
    "DuplicateGameError",
    "GameCatalog",
    "GameEntry",
    "GameMetrics",
    "GameService",
    "InvalidQueryError",
    "QUERY_KINDS",
    "Query",
    "QueryFailedError",
    "Response",
    "ServiceClosedError",
    "ServiceError",
    "StaleVersionError",
    "UnknownGameError",
    "execute_batch",
    "execute_query",
]
