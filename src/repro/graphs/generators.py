"""Deterministic graph generators used by examples, tests, and benchmarks.

All random generators take an explicit :class:`random.Random` instance or
seed so every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..rng import SeedLike, as_rng as _rng
from .digraph import DiGraph


def empty_graph(n: int) -> DiGraph:
    """Return a graph with nodes ``0..n-1`` and no edges."""
    graph = DiGraph()
    graph.add_nodes_from(range(n))
    return graph


def directed_cycle(n: int) -> DiGraph:
    """Return the directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if n <= 0:
        raise ValueError("a cycle needs at least one node")
    graph = empty_graph(n)
    for node in range(n):
        graph.add_edge(node, (node + 1) % n)
    return graph


def directed_path(n: int) -> DiGraph:
    """Return the directed path ``0 -> 1 -> ... -> n-1``."""
    if n <= 0:
        raise ValueError("a path needs at least one node")
    graph = empty_graph(n)
    for node in range(n - 1):
        graph.add_edge(node, node + 1)
    return graph


def complete_graph(n: int) -> DiGraph:
    """Return the complete digraph on ``0..n-1`` (no self loops)."""
    graph = empty_graph(n)
    for tail in range(n):
        for head in range(n):
            if tail != head:
                graph.add_edge(tail, head)
    return graph


def complete_kary_out_tree(branching: int, height: int) -> DiGraph:
    """Return a complete ``branching``-ary out-tree of the given ``height``.

    Nodes are numbered in BFS order with the root at 0; edges point away from
    the root.  A tree of height ``h`` has ``(branching**(h+1) - 1)/(branching-1)``
    nodes (or ``h + 1`` when ``branching == 1``).
    """
    if branching < 1:
        raise ValueError("branching factor must be at least 1")
    if height < 0:
        raise ValueError("height must be non-negative")
    graph = DiGraph()
    graph.add_node(0)
    frontier = [0]
    next_label = 1
    for _ in range(height):
        new_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                child = next_label
                next_label += 1
                graph.add_edge(parent, child)
                new_frontier.append(child)
        frontier = new_frontier
    return graph


def hypercube(dimension: int) -> DiGraph:
    """Return the directed ``dimension``-cube on ``2**dimension`` nodes.

    Every undirected hypercube edge is represented by a single outgoing edge
    per endpoint (i.e. both directions are present), which matches the Cayley
    graph of :math:`Z_2^d` with the standard generators.
    """
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    n = 1 << dimension
    graph = empty_graph(n)
    for node in range(n):
        for bit in range(dimension):
            graph.add_edge(node, node ^ (1 << bit))
    return graph


def random_k_out_graph(n: int, k: int, seed: SeedLike = None) -> DiGraph:
    """Return a graph where every node has exactly ``k`` distinct out-links.

    This is the natural random initial configuration of an (n, k)-uniform BBC
    game: each node buys ``k`` links to distinct other nodes chosen uniformly
    at random.
    """
    if k >= n:
        raise ValueError("k must be smaller than n (no self links, no duplicates)")
    rng = _rng(seed)
    graph = empty_graph(n)
    for node in range(n):
        targets = rng.sample([v for v in range(n) if v != node], k)
        for target in targets:
            graph.add_edge(node, target)
    return graph


def random_digraph(n: int, edge_probability: float, seed: SeedLike = None) -> DiGraph:
    """Return an Erdos-Renyi style random digraph G(n, p)."""
    if not 0 <= edge_probability <= 1:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = _rng(seed)
    graph = empty_graph(n)
    for tail in range(n):
        for head in range(n):
            if tail != head and rng.random() < edge_probability:
                graph.add_edge(tail, head)
    return graph


def ring_with_tail(ring_size: int, tail_size: int) -> DiGraph:
    """Return the Ω(n²) convergence lower-bound instance of Section 4.3.

    A directed ring over ``ring_size`` nodes (labelled ``0..ring_size-1``)
    plus a directed path of ``tail_size`` nodes (labelled
    ``ring_size..ring_size+tail_size-1``) whose last hop enters the ring at
    node 0.  The path is oriented towards the ring, so the tail of the path
    can reach every node while ring nodes cannot reach the path.
    """
    if ring_size < 1 or tail_size < 0:
        raise ValueError("ring_size must be >= 1 and tail_size >= 0")
    graph = directed_cycle(ring_size)
    previous: Optional[int] = None
    for offset in range(tail_size):
        node = ring_size + offset
        graph.add_node(node)
        if previous is not None:
            graph.add_edge(previous, node)
        previous = node
    if previous is not None:
        graph.add_edge(previous, 0)
    else:  # tail_size == 0: nothing to attach
        pass
    # Reorient the path so it points *towards* the ring: the construction in
    # the paper has the path ending at a ring node, which the loop above
    # already guarantees (previous -> 0).  The first path node has no
    # incoming edge, as required.
    return graph


def union_of_graphs(graphs: Sequence[DiGraph]) -> DiGraph:
    """Return the disjoint-union-preserving union of ``graphs``.

    Node labels are kept as-is; callers are responsible for making them
    disjoint if a disjoint union is intended.
    """
    merged = DiGraph()
    for graph in graphs:
        merged.add_nodes_from(graph.nodes())
        for tail, head, data in graph.edges_with_data():
            merged.add_edge(tail, head, **dict(data))
    return merged


def relabel(graph: DiGraph, mapping: dict) -> DiGraph:
    """Return a copy of ``graph`` with nodes renamed through ``mapping``.

    Nodes absent from ``mapping`` keep their original label.
    """
    renamed = DiGraph()
    for node in graph.nodes():
        renamed.add_node(mapping.get(node, node))
    for tail, head, data in graph.edges_with_data():
        renamed.add_edge(mapping.get(tail, tail), mapping.get(head, head), **dict(data))
    return renamed
