"""Exceptions raised by the graph substrate.

The graph layer is deliberately independent from the game layer, so it has
its own small exception hierarchy rooted at :class:`GraphError`.
"""

from __future__ import annotations


class GraphError(Exception):
    """Base class for all errors raised by :mod:`repro.graphs`."""


class NodeNotFound(GraphError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFound(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge ({tail!r}, {head!r}) is not in the graph")
        self.tail = tail
        self.head = head


class NegativeEdgeLength(GraphError):
    """Raised when Dijkstra-style algorithms encounter a negative length."""

    def __init__(self, tail: object, head: object, length: float) -> None:
        super().__init__(
            f"edge ({tail!r}, {head!r}) has negative length {length!r}; "
            "shortest-path routines in this package require non-negative lengths"
        )
        self.tail = tail
        self.head = head
        self.length = length


class FlowError(GraphError):
    """Base class for errors raised by the min-cost flow solver."""


class InfeasibleFlow(FlowError):
    """Raised when the requested flow value cannot be routed."""

    def __init__(self, source: object, sink: object, requested: float, routed: float) -> None:
        super().__init__(
            f"cannot route {requested!r} units of flow from {source!r} to {sink!r}; "
            f"only {routed!r} units are feasible"
        )
        self.source = source
        self.sink = sink
        self.requested = requested
        self.routed = routed
