"""A small, dependency-free directed multigraph-free digraph.

The BBC game engine only needs a simple directed graph with optional edge
attributes (length, capacity).  We implement it from scratch instead of
pulling in :mod:`networkx` so that the hot loops of the game engine (repeated
single-source shortest paths during best-response computation) stay cheap and
predictable; networkx is only used in the test-suite as an oracle.

Nodes can be arbitrary hashable objects.  Edges carry a dictionary of
attributes; the shortest-path helpers read the ``"length"`` attribute and the
flow solver reads ``"capacity"`` and ``"length"``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from .errors import EdgeNotFound, NodeNotFound

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A mutable directed graph with edge attributes.

    The class intentionally mirrors a small slice of the networkx API
    (``add_node``, ``add_edge``, ``successors`` ...) so readers familiar with
    networkx can follow the code, but it stores adjacency in plain dicts and
    performs no validation magic.
    """

    __slots__ = ("_succ", "_pred")

    def __init__(self, edges: Optional[Iterable[Edge]] = None) -> None:
        self._succ: Dict[Node, Dict[Node, Dict[str, Any]]] = {}
        self._pred: Dict[Node, Dict[Node, Dict[str, Any]]] = {}
        if edges is not None:
            for tail, head in edges:
                self.add_edge(tail, head)

    # ------------------------------------------------------------------ #
    # Node operations
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if it is already present)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node of ``nodes`` to the graph."""
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise NodeNotFound(node)
        for head in list(self._succ[node]):
            del self._pred[head][node]
        for tail in list(self._pred[node]):
            del self._succ[tail][node]
        del self._succ[node]
        del self._pred[node]

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._succ

    def nodes(self) -> Iterator[Node]:
        """Iterate over the nodes of the graph."""
        return iter(self._succ)

    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._succ)

    # ------------------------------------------------------------------ #
    # Edge operations
    # ------------------------------------------------------------------ #
    def add_edge(self, tail: Node, head: Node, **attrs: Any) -> None:
        """Add the directed edge ``tail -> head``.

        Missing endpoints are added automatically.  If the edge already
        exists its attribute dictionary is updated with ``attrs``.
        """
        self.add_node(tail)
        self.add_node(head)
        data = self._succ[tail].get(head)
        if data is None:
            data = {}
            self._succ[tail][head] = data
            self._pred[head][tail] = data
        data.update(attrs)

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every ``(tail, head)`` pair of ``edges``."""
        for tail, head in edges:
            self.add_edge(tail, head)

    def remove_edge(self, tail: Node, head: Node) -> None:
        """Remove the edge ``tail -> head``."""
        if tail not in self._succ or head not in self._succ[tail]:
            raise EdgeNotFound(tail, head)
        del self._succ[tail][head]
        del self._pred[head][tail]

    def has_edge(self, tail: Node, head: Node) -> bool:
        """Return ``True`` if ``tail -> head`` is an edge of the graph."""
        return tail in self._succ and head in self._succ[tail]

    def edge_data(self, tail: Node, head: Node) -> Mapping[str, Any]:
        """Return the attribute dictionary of edge ``tail -> head``."""
        if not self.has_edge(tail, head):
            raise EdgeNotFound(tail, head)
        return self._succ[tail][head]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(tail, head)`` pairs."""
        for tail, heads in self._succ.items():
            for head in heads:
                yield (tail, head)

    def edges_with_data(self) -> Iterator[Tuple[Node, Node, Mapping[str, Any]]]:
        """Iterate over all edges as ``(tail, head, attrs)`` triples."""
        for tail, heads in self._succ.items():
            for head, data in heads.items():
                yield (tail, head, data)

    def number_of_edges(self) -> int:
        """Return the number of edges."""
        return sum(len(heads) for heads in self._succ.values())

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over the heads of edges leaving ``node``."""
        if node not in self._succ:
            raise NodeNotFound(node)
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over the tails of edges entering ``node``."""
        if node not in self._pred:
            raise NodeNotFound(node)
        return iter(self._pred[node])

    def successor_items(self, node: Node) -> Iterator[Tuple[Node, Mapping[str, Any]]]:
        """Iterate over ``(head, attrs)`` pairs for edges leaving ``node``."""
        if node not in self._succ:
            raise NodeNotFound(node)
        return iter(self._succ[node].items())

    def out_degree(self, node: Node) -> int:
        """Return the number of edges leaving ``node``."""
        if node not in self._succ:
            raise NodeNotFound(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Return the number of edges entering ``node``."""
        if node not in self._pred:
            raise NodeNotFound(node)
        return len(self._pred[node])

    # ------------------------------------------------------------------ #
    # Whole-graph helpers
    # ------------------------------------------------------------------ #
    def copy(self) -> "DiGraph":
        """Return a deep-ish copy (attribute dicts are copied, values shared)."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for tail, head, data in self.edges_with_data():
            clone.add_edge(tail, head, **dict(data))
        return clone

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph()
        for node in self._succ:
            rev.add_node(node)
        for tail, head, data in self.edges_with_data():
            rev.add_edge(head, tail, **dict(data))
        return rev

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._succ)
        if missing:
            raise NodeNotFound(next(iter(missing)))
        sub = DiGraph()
        for node in keep:
            sub.add_node(node)
        for tail, head, data in self.edges_with_data():
            if tail in keep and head in keep:
                sub.add_edge(tail, head, **dict(data))
        return sub

    def adjacency(self) -> Dict[Node, Tuple[Node, ...]]:
        """Return a plain ``{node: (successors...)}`` snapshot of the graph."""
        return {node: tuple(heads) for node, heads in self._succ.items()}

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Return an equivalent :class:`networkx.DiGraph` (used by tests/examples)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes())
        for tail, head, data in self.edges_with_data():
            graph.add_edge(tail, head, **dict(data))
        return graph

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if set(self._succ) != set(other._succ):
            return False
        for tail, heads in self._succ.items():
            other_heads = other._succ[tail]
            if set(heads) != set(other_heads):
                return False
            for head, data in heads.items():
                if dict(data) != dict(other_heads[head]):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )


def from_adjacency(adjacency: Mapping[Node, Iterable[Node]]) -> DiGraph:
    """Build a :class:`DiGraph` from a ``{node: successors}`` mapping."""
    graph = DiGraph()
    for node in adjacency:
        graph.add_node(node)
    for tail, heads in adjacency.items():
        for head in heads:
            graph.add_edge(tail, head)
    return graph
