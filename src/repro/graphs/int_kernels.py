"""Flat-array shortest-path kernels over int-indexed CSR adjacency.

The dict-based BFS/Dijkstra in :mod:`repro.graphs.bfs` and
:mod:`repro.graphs.dijkstra` operate on arbitrary hashable node labels and
per-edge attribute dictionaries, which is convenient but slow in the game
engine's hot path (one SSSP per candidate first hop per probed node).  The
kernels here assume nodes have already been mapped to dense ints ``0..n-1``
and the graph packed into CSR arrays, so the inner loops touch nothing but
flat lists:

* ``build_csr`` packs per-node successor lists into ``(indptr, indices)``;
* ``bfs_hops_csr`` returns hop counts as a dense list (``-1`` = unreachable);
* ``dijkstra_csr`` returns weighted distances (``inf`` = unreachable) using a
  heap of plain ``(dist, node)`` pairs — ints always compare, so no tiebreak
  counter is needed — and edge lengths aligned with ``indices`` instead of
  per-edge attribute-dict lookups.

Both traversals accept a ``forbidden`` node that is never entered, which lets
:class:`repro.engine.CostEngine` compute ``d_{G-u}`` distances by masking
``u`` out of the *shared* profile snapshot instead of rebuilding a per-oracle
environment graph.

Edge lengths are assumed non-negative; game construction validates this
(:meth:`repro.core.game.BBCGame._validate_tables`), so the kernels skip the
check to keep the loop tight.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import List, Sequence, Tuple

#: Sentinel for unreachable nodes in :func:`bfs_hops_csr` results.
UNREACHED = -1


def build_csr(successor_rows: Sequence[Sequence[int]]) -> Tuple[List[int], List[int]]:
    """Pack per-node successor lists into CSR ``(indptr, indices)`` arrays.

    ``successor_rows[u]`` lists the int successors of node ``u``; the edges of
    ``u`` occupy ``indices[indptr[u]:indptr[u + 1]]``.
    """
    indptr = [0]
    indices: List[int] = []
    for successors in successor_rows:
        indices.extend(successors)
        indptr.append(len(indices))
    return indptr, indices


def bfs_hops_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    n: int,
    source: int,
    forbidden: int = -1,
) -> List[int]:
    """Return hop counts from ``source`` as a dense list of length ``n``.

    Unreachable nodes hold :data:`UNREACHED`.  When ``forbidden`` is a valid
    node id it is never entered, yielding distances in the graph with that
    node deleted; ``forbidden == source`` is contradictory and rejected.
    """
    if forbidden == source:
        raise ValueError("the BFS source cannot be the forbidden node")
    dist = [UNREACHED] * n
    if 0 <= forbidden < n:
        dist[forbidden] = n + 1  # non-negative: blocks the visit test below
    dist[source] = 0
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        next_hop = dist[node] + 1
        for head in indices[indptr[node] : indptr[node + 1]]:
            if dist[head] < 0:
                dist[head] = next_hop
                queue.append(head)
    if 0 <= forbidden < n:
        dist[forbidden] = UNREACHED
    return dist


def dijkstra_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    lengths: Sequence[float],
    n: int,
    source: int,
    forbidden: int = -1,
) -> List[float]:
    """Return weighted distances from ``source`` as a dense list of length ``n``.

    ``lengths`` is aligned with ``indices`` (edge ``indices[i]`` has length
    ``lengths[i]``).  Unreachable nodes hold ``inf``; ``forbidden`` (if any)
    is never entered and reports ``inf``; ``forbidden == source`` is
    contradictory and rejected.
    """
    if forbidden == source:
        raise ValueError("the Dijkstra source cannot be the forbidden node")
    dist = [math.inf] * n
    done = [False] * n
    if 0 <= forbidden < n:
        done[forbidden] = True
    heap: List[Tuple[float, int]] = [(0, source)]
    while heap:
        d, node = heappop(heap)
        if done[node]:
            continue
        done[node] = True
        dist[node] = d
        for offset in range(indptr[node], indptr[node + 1]):
            head = indices[offset]
            if not done[head]:
                heappush(heap, (d + lengths[offset], head))
    return dist


def scaled_float_row(hops: Sequence[int], unit: float) -> List[float]:
    """Convert a BFS hop row into floats scaled by ``unit`` (``inf`` = unreachable).

    The scaling mirrors how the dict-based engine converts hop counts into
    lengths (``float(hops) * unit``) so results stay bit-identical.
    """
    return [float(h) * unit if h >= 0 else math.inf for h in hops]
