"""Flat-array shortest-path kernels over int-indexed CSR adjacency.

The dict-based BFS/Dijkstra in :mod:`repro.graphs.bfs` and
:mod:`repro.graphs.dijkstra` operate on arbitrary hashable node labels and
per-edge attribute dictionaries, which is convenient but slow in the game
engine's hot path (one SSSP per candidate first hop per probed node).  The
kernels here assume nodes have already been mapped to dense ints ``0..n-1``
and the graph packed into CSR arrays, so the inner loops touch nothing but
flat lists:

* ``build_csr`` packs per-node successor lists into ``(indptr, indices)``;
* ``bfs_hops_csr`` returns hop counts as a dense list (``-1`` = unreachable);
* ``dijkstra_csr`` returns weighted distances (``inf`` = unreachable) using a
  heap of plain ``(dist, node)`` pairs — ints always compare, so no tiebreak
  counter is needed — and edge lengths aligned with ``indices`` instead of
  per-edge attribute-dict lookups;
* ``bfs_hops_csr_multi`` / ``dijkstra_csr_multi`` — the batched reference
  forms: one row per source, each with its *own* ``forbidden`` mask (row
  ``i`` computes ``d_{G-u_i}`` from ``sources[i]``), implemented as plain
  loops over the single-source kernels so the vectorised batched kernels in
  :mod:`repro.graphs.int_kernels_np` have a bit-identical reference;
* ``repair_hops_csr`` / ``repair_dijkstra_csr`` *repair* a cached distance
  row in place after some nodes' out-arcs changed, by bounded re-relaxation
  of the affected region instead of a fresh traversal (dynamic SSSP in the
  Ramalingam–Reps style: find the region whose old distance lost support,
  reset it, then run a Dijkstra continuation seeded from the region's intact
  boundary and from the added arcs).  Repaired rows are bit-identical to
  recomputing from scratch; ``tests/test_engine_parity.py`` pins it.

Both traversals accept a ``forbidden`` node that is never entered, which lets
:class:`repro.engine.CostEngine` compute ``d_{G-u}`` distances by masking
``u`` out of the *shared* profile snapshot instead of rebuilding a per-oracle
environment graph.  The repair kernels honour the same mask, so masked
``d_{G-u}`` rows repair exactly like unmasked ones.

Edge lengths are assumed non-negative; game construction validates this
(:meth:`repro.core.game.BBCGame._validate_tables`), so the kernels skip the
check to keep the loop tight.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Iterable, List, Sequence, Tuple

#: Sentinel for unreachable nodes in :func:`bfs_hops_csr` results.
UNREACHED = -1


def build_csr(successor_rows: Sequence[Sequence[int]]) -> Tuple[List[int], List[int]]:
    """Pack per-node successor lists into CSR ``(indptr, indices)`` arrays.

    ``successor_rows[u]`` lists the int successors of node ``u``; the edges of
    ``u`` occupy ``indices[indptr[u]:indptr[u + 1]]``.
    """
    indptr = [0]
    indices: List[int] = []
    for successors in successor_rows:
        indices.extend(successors)
        indptr.append(len(indices))
    return indptr, indices


def bfs_hops_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    n: int,
    source: int,
    forbidden: int = -1,
) -> List[int]:
    """Return hop counts from ``source`` as a dense list of length ``n``.

    Unreachable nodes hold :data:`UNREACHED`.  When ``forbidden`` is a valid
    node id it is never entered, yielding distances in the graph with that
    node deleted; ``forbidden == source`` is contradictory and rejected.
    """
    if forbidden == source:
        raise ValueError("the BFS source cannot be the forbidden node")
    dist = [UNREACHED] * n
    if 0 <= forbidden < n:
        dist[forbidden] = n + 1  # non-negative: blocks the visit test below
    dist[source] = 0
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        next_hop = dist[node] + 1
        for head in indices[indptr[node] : indptr[node + 1]]:
            if dist[head] < 0:
                dist[head] = next_hop
                queue.append(head)
    if 0 <= forbidden < n:
        dist[forbidden] = UNREACHED
    return dist


def per_source_forbidden(sources, forbidden) -> List[int]:
    """Normalise the batched kernels' ``forbidden`` argument to one mask per row.

    ``forbidden`` is either a single int shared by every source (the original
    multi-kernel contract; ``-1`` = no mask) or a sequence aligned with
    ``sources`` so row ``i`` computes ``d_{G-u_i}`` from ``sources[i]``.
    ``forbidden[i] == sources[i]`` is contradictory and rejected, exactly like
    the single-source kernels reject it.
    """
    try:
        masks = [int(f) for f in forbidden]
    except TypeError:
        return [int(forbidden)] * len(sources)
    if len(masks) != len(sources):
        raise ValueError(
            f"per-row forbidden masks ({len(masks)}) do not align with "
            f"sources ({len(sources)})"
        )
    return masks


def bfs_hops_csr_multi(
    indptr: Sequence[int],
    indices: Sequence[int],
    n: int,
    sources: Sequence[int],
    forbidden=-1,
) -> List[List[int]]:
    """Batched reference BFS: one :func:`bfs_hops_csr` row per source.

    ``forbidden`` is a shared int or a per-row sequence (row ``i`` masks
    ``forbidden[i]``); see :func:`per_source_forbidden`.  This is the
    bit-identical reference for the vectorised
    :func:`repro.graphs.int_kernels_np.bfs_hops_csr_multi`, and what the cost
    engine's giant-batch report prefetch runs on the python backend — a plain
    loop, so batching changes *when* rows are computed, never their values.
    """
    masks = per_source_forbidden(sources, forbidden)
    return [
        bfs_hops_csr(indptr, indices, n, source, mask)
        for source, mask in zip(sources, masks)
    ]


def dijkstra_csr_multi(
    indptr: Sequence[int],
    indices: Sequence[int],
    lengths: Sequence[float],
    n: int,
    sources: Sequence[int],
    forbidden=-1,
) -> List[List[float]]:
    """Batched reference Dijkstra: one :func:`dijkstra_csr` row per source.

    The weighted counterpart of :func:`bfs_hops_csr_multi`, with the same
    shared-or-per-row ``forbidden`` contract.
    """
    masks = per_source_forbidden(sources, forbidden)
    return [
        dijkstra_csr(indptr, indices, lengths, n, source, mask)
        for source, mask in zip(sources, masks)
    ]


def dijkstra_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    lengths: Sequence[float],
    n: int,
    source: int,
    forbidden: int = -1,
) -> List[float]:
    """Return weighted distances from ``source`` as a dense list of length ``n``.

    ``lengths`` is aligned with ``indices`` (edge ``indices[i]`` has length
    ``lengths[i]``).  Unreachable nodes hold ``inf``; ``forbidden`` (if any)
    is never entered and reports ``inf``; ``forbidden == source`` is
    contradictory and rejected.
    """
    if forbidden == source:
        raise ValueError("the Dijkstra source cannot be the forbidden node")
    dist = [math.inf] * n
    done = [False] * n
    if 0 <= forbidden < n:
        done[forbidden] = True
    heap: List[Tuple[float, int]] = [(0, source)]
    while heap:
        d, node = heappop(heap)
        if done[node]:
            continue
        done[node] = True
        dist[node] = d
        for offset in range(indptr[node], indptr[node + 1]):
            head = indices[offset]
            if not done[head]:
                heappush(heap, (d + lengths[offset], head))
    return dist


def _phase1_affected(
    dist,
    tight_seeds,
    edit_map,
    indptr,
    indices,
    weight_of,
    source: int,
    forbidden: int,
) -> set:
    """Return the (over-approximate) set of nodes whose old distance lost support.

    Starting from the heads of removed *tight* arcs, follow old-graph tight
    edges forward: a tight edge ``(v, y)`` (``dist[v] + w(v, y) == dist[y]``)
    means ``y``'s old distance may have been supported through ``v``.  Nodes
    with alternative support get swept in too — that is safe, merely wasteful,
    because phase 2 recomputes every marked node exactly.  The ``source``
    (distance 0 by definition, not by in-edges) and ``forbidden`` (never
    entered) can never lose support and are excluded.

    Old-graph out-edges of an edited node are reconstructed from the new CSR
    row by dropping its added arcs and appending its removed arcs.
    """
    affected: set = set()
    stack = list(tight_seeds)
    while stack:
        v = stack.pop()
        if v in affected:
            continue
        affected.add(v)
        dv = dist[v]
        edit = edit_map.get(v)
        if edit is None:
            old_out = indices[indptr[v] : indptr[v + 1]]
        else:
            removed, added = edit
            old_out = [y for y in indices[indptr[v] : indptr[v + 1]] if y not in added]
            old_out.extend(removed)
        for y in old_out:
            if y == source or y == forbidden or y in affected:
                continue
            if dist[y] == dv + weight_of(v, y):
                stack.append(y)
    return affected


def repair_hops_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    hops: List[int],
    source: int,
    edits: Sequence[Tuple[int, Iterable[int], Iterable[int]]],
    rev_rows: Sequence[Iterable[int]],
    forbidden: int = -1,
) -> List[int]:
    """Repair a BFS hop row in place after the arcs in ``edits`` changed.

    ``hops`` must be a valid hop row from ``source`` (:data:`UNREACHED` for
    unreachable, ``forbidden`` masked) for the *old* graph; ``indptr`` /
    ``indices`` describe the **new** graph.  Each edit is ``(mover,
    removed_heads, added_heads)``: the out-arcs ``mover`` lost and gained
    between the two graphs.  ``rev_rows[v]`` lists the in-neighbours of ``v``
    in the new graph.  Returns the node ids whose entry may have changed
    (a superset of the actual changes), for patching derived rows.

    The repaired row is exactly what :func:`bfs_hops_csr` would return on the
    new graph — hop counts are ints, so equality is literal.
    """
    edit_map = {}
    tight_seeds = []
    for mover, removed, added in edits:
        if mover == forbidden:
            continue  # the masked graph never contained this node's arcs
        edit_map[mover] = (frozenset(removed), frozenset(added))
        dm = hops[mover]
        if dm < 0:
            continue  # unreachable mover: its arcs support nothing
        for a in removed:
            if a != source and a != forbidden and hops[a] == dm + 1:
                tight_seeds.append(a)
    if not edit_map:
        return []

    touched: List[int] = []
    heap: List[Tuple[int, int]] = []
    if tight_seeds:
        affected = _phase1_affected(
            hops, tight_seeds, edit_map, indptr, indices,
            lambda v, y: 1, source, forbidden,
        )
        for v in affected:
            hops[v] = UNREACHED
            touched.append(v)
        # Seed each orphaned node from its intact boundary: every in-arc from
        # a node that kept a (finite) distance.
        for v in affected:
            best = -1
            for p in rev_rows[v]:
                if p == forbidden or p in affected:
                    continue
                hp = hops[p]
                if hp >= 0 and (best < 0 or hp + 1 < best):
                    best = hp + 1
            if best >= 0:
                heap.append((best, v))
    else:
        affected = set()

    # Added arcs from still-reachable movers may shorten distances; movers
    # that are themselves orphaned relax their new arcs when they pop.
    for mover, (_removed, added) in edit_map.items():
        dm = hops[mover]
        if dm < 0:
            continue
        cand = dm + 1
        for a in added:
            if a == forbidden or a in affected:
                continue
            ha = hops[a]
            if ha < 0 or cand < ha:
                heap.append((cand, a))

    if heap:
        heapify(heap)
        while heap:
            d, v = heappop(heap)
            hv = hops[v]
            if hv >= 0 and d >= hv:
                continue
            hops[v] = d
            touched.append(v)
            nd = d + 1
            for y in indices[indptr[v] : indptr[v + 1]]:
                if y == forbidden:
                    continue
                hy = hops[y]
                if hy < 0 or nd < hy:
                    heappush(heap, (nd, y))
    return touched


def repair_dijkstra_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    lengths: Sequence[float],
    dist: List[float],
    source: int,
    edits: Sequence[Tuple[int, Iterable[int], Iterable[int]]],
    rev_rows: Sequence[Iterable[int]],
    length_rows: Sequence[Sequence[float]],
    forbidden: int = -1,
) -> List[int]:
    """Repair a weighted distance row in place after the arcs in ``edits`` changed.

    The weighted counterpart of :func:`repair_hops_csr`: ``dist`` is a valid
    :func:`dijkstra_csr` row for the old graph, ``lengths`` is aligned with
    the new ``indices``, and ``length_rows[p][v]`` gives the (strategy-
    independent) length of arc ``(p, v)`` for boundary in-edges and for the
    reconstructed old out-rows of edited nodes.  Returns the node ids whose
    entry may have changed.

    Repaired values are bit-identical to a fresh run: every label is a
    left-associated float sum along one path — the same form Dijkstra
    produces — and the tight tests use exact float equality, so the affected
    region found here covers exactly the entries whose float value could
    differ.
    """
    inf = math.inf
    edit_map = {}
    tight_seeds = []
    for mover, removed, added in edits:
        if mover == forbidden:
            continue
        edit_map[mover] = (frozenset(removed), frozenset(added))
        dm = dist[mover]
        if dm == inf:
            continue
        mover_lengths = length_rows[mover]
        for a in removed:
            if a != source and a != forbidden and dist[a] == dm + mover_lengths[a]:
                tight_seeds.append(a)
    if not edit_map:
        return []

    touched: List[int] = []
    heap: List[Tuple[float, int]] = []
    if tight_seeds:
        affected = _phase1_affected(
            dist, tight_seeds, edit_map, indptr, indices,
            lambda v, y: length_rows[v][y], source, forbidden,
        )
        for v in affected:
            dist[v] = inf
            touched.append(v)
        for v in affected:
            best = inf
            for p in rev_rows[v]:
                if p == forbidden or p in affected:
                    continue
                dp = dist[p]
                if dp < inf:
                    cand = dp + length_rows[p][v]
                    if cand < best:
                        best = cand
            if best < inf:
                heap.append((best, v))
    else:
        affected = set()

    for mover, (_removed, added) in edit_map.items():
        dm = dist[mover]
        if dm == inf:
            continue
        mover_lengths = length_rows[mover]
        for a in added:
            if a == forbidden or a in affected:
                continue
            cand = dm + mover_lengths[a]
            if cand < dist[a]:
                heap.append((cand, a))

    if heap:
        heapify(heap)
        while heap:
            d, v = heappop(heap)
            if d >= dist[v]:
                continue
            dist[v] = d
            touched.append(v)
            for offset in range(indptr[v], indptr[v + 1]):
                y = indices[offset]
                if y == forbidden:
                    continue
                cand = d + lengths[offset]
                if cand < dist[y]:
                    heappush(heap, (cand, y))
    return touched


def scaled_float_row(hops: Sequence[int], unit: float) -> List[float]:
    """Convert a BFS hop row into floats scaled by ``unit`` (``inf`` = unreachable).

    The scaling mirrors how the dict-based engine converts hop counts into
    lengths (``float(hops) * unit``) so results stay bit-identical.
    """
    return [float(h) * unit if h >= 0 else math.inf for h in hops]
