"""Vectorised CSR traversal kernels (the numpy backend of the cost engine).

The list kernels in :mod:`repro.graphs.int_kernels` spend their time in
per-edge Python bytecode, which caps equilibrium checks at n in the tens.
This module re-implements the same four traversals as *array sweeps* so the
per-edge work happens inside numpy's C loops:

* :func:`bfs_hops_csr_np` — level-synchronous frontier BFS: each round
  gathers every out-edge of the current frontier in one shot
  (``np.repeat`` over the CSR ``indptr`` slices) and labels the unvisited
  heads with the next hop count;
* :func:`dijkstra_csr_np` — frontier relaxation over non-negative lengths
  (a bucketed label-correcting Dijkstra): each round relaxes all out-edges
  of the nodes whose tentative distance just improved, with
  ``np.minimum.at`` resolving duplicate heads.  Integer lengths (the
  ``int64`` dtype) keep every label in exact int space; float lengths
  converge to the same fixed point as the heap Dijkstra (see below);
* :func:`bfs_hops_csr_multi` / :func:`dijkstra_csr_multi` — the batched
  forms: one traversal computes the rows of many sources, under one shared
  mask or under **per-row masks** (row ``i`` computes ``d_{G-u_i}`` from
  ``sources[i]``), amortising the per-round dispatch overhead that otherwise
  dominates on sparse graphs (a deviation probe wants every candidate
  first-hop row of one masked node at once; ``all_costs`` wants all ``n``
  unmasked rows; a whole equilibrium report wants the rows of *every*
  probed node in one giant sweep);
* :func:`repair_hops_csr_np` / :func:`repair_dijkstra_csr_np` — the dynamic
  repair kernels of PR 4 with both phases vectorised: the affected region
  (old distances that lost support) is marked by frontier sweeps over tight
  edges, and the continuation is the same frontier relaxation seeded from
  the region's intact in-boundary (one reverse-CSR gather) plus the added
  arcs.  They repair a cached row in place — a plain list (the python
  backend's representation) or an int64/float64 array (the numpy
  backend's) — writing only the touched entries.

**Bit-identity.**  Hop counts and integer lengths are computed in exact
``int64`` space, so equality with the list kernels is literal, and the
float conversions (``float(h) * unit``; ``float(int_distance)``) apply the
same single IEEE operations the list path applies.  For float lengths the
frontier relaxation converges to ``dist[v] = min over paths P of the
left-associated float sum along P`` — the same value the binary-heap
Dijkstra produces, because IEEE addition of non-negative doubles is
monotone (``fl(a + w) >= a``), so a node finalised later can never supply a
smaller float label, and every relaxation candidate is itself a
left-associated path sum.  ``tests/test_backend_parity.py`` pins all four
kernels against the list kernels under hypothesis (masked and unmasked,
zero-length edges, disconnected nodes, randomized edit sequences).

All kernels honour the same ``forbidden`` mask as the list kernels (the
masked node is never entered and reports unreachable), which is what lets
:class:`repro.engine.CostEngine` serve ``d_{G-u}`` rows from one shared
profile snapshot.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .int_kernels import UNREACHED

#: Bitset decoding views uint64 frontier words as bytes; on big-endian hosts
#: the words must be byteswapped first so bit ``s`` lands at unpacked
#: position ``s`` (matching the little-endian shift that set it).
_BIG_ENDIAN = sys.byteorder != "little"

#: Sentinel for unreachable entries of int64 distance rows.  Far above any
#: real distance (lengths are gated below ``2**53``) yet with enough headroom
#: that a stray ``sentinel + length`` could not wrap ``int64`` — though the
#: kernels never relax out of an unreached node in the first place.
INT_UNREACHED = 2**62


def csr_arrays(
    indptr: Sequence[int], indices: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise list CSR arrays as int64 numpy arrays (one copy)."""
    return (
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
    )


def reverse_csr(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the reverse graph as CSR ``(rev_indptr, rev_tails)`` arrays.

    ``rev_tails[rev_indptr[v]:rev_indptr[v + 1]]`` lists the in-neighbours of
    ``v``.  The repair kernels seed orphaned nodes from their intact
    in-boundary, which the forward CSR cannot answer.
    """
    rev_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(indices, minlength=n), out=rev_indptr[1:])
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.argsort(indices, kind="stable")
    return rev_indptr, tails[order]


def _gather_edges(
    indptr: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(edge_positions, tails)`` for every out-edge of ``frontier``.

    ``edge_positions`` indexes the CSR ``indices``/``lengths`` arrays;
    ``tails`` repeats each frontier node once per out-edge, aligned with it.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.cumsum(counts) - counts
    positions = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
    return positions, np.repeat(frontier, counts)


def bfs_hops_csr_np(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source: int,
    forbidden: int = -1,
) -> np.ndarray:
    """Level-synchronous BFS: the numpy counterpart of ``bfs_hops_csr``.

    Returns an int64 array of hop counts with :data:`~repro.graphs
    .int_kernels.UNREACHED` for unreachable nodes; semantics (including the
    ``forbidden`` mask and the rejected ``forbidden == source`` case) match
    the list kernel exactly.
    """
    if forbidden == source:
        raise ValueError("the BFS source cannot be the forbidden node")
    hops = np.full(n, UNREACHED, dtype=np.int64)
    if 0 <= forbidden < n:
        hops[forbidden] = n + 1  # non-negative: blocks the visit test below
    hops[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        positions, _ = _gather_edges(indptr, frontier)
        heads = indices[positions]
        heads = heads[hops[heads] < 0]
        if heads.size == 0:
            break
        frontier = np.unique(heads)
        hops[frontier] = level
    if 0 <= forbidden < n:
        hops[forbidden] = UNREACHED
    return hops


def dijkstra_csr_np(
    indptr: np.ndarray,
    indices: np.ndarray,
    lengths: np.ndarray,
    n: int,
    source: int,
    forbidden: int = -1,
) -> np.ndarray:
    """Frontier-relaxation Dijkstra: the numpy counterpart of ``dijkstra_csr``.

    ``lengths`` is aligned with ``indices`` and its dtype selects the label
    space: an integer dtype keeps every label an exact int64 (unreachable =
    :data:`INT_UNREACHED`), a float dtype works in IEEE doubles (unreachable
    = ``inf``).  Each round applies every improvement found so far and
    relaxes the out-edges of the improved nodes; rounds continue until no
    label moves, which for non-negative lengths reproduces the heap
    Dijkstra's labels bit for bit (see the module docstring).
    """
    if forbidden == source:
        raise ValueError("the Dijkstra source cannot be the forbidden node")
    integral = lengths.dtype.kind in "iu"
    if integral:
        dist = np.full(n, INT_UNREACHED, dtype=np.int64)
        barrier = -1  # no candidate is below it, so the mask is never entered
    else:
        dist = np.full(n, np.inf, dtype=np.float64)
        barrier = -np.inf
    masked = 0 <= forbidden < n
    if masked:
        dist[forbidden] = barrier
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        positions, tails = _gather_edges(indptr, frontier)
        if positions.size == 0:
            break
        heads = indices[positions]
        candidates = dist[tails] + lengths[positions]
        previous = dist.copy()
        np.minimum.at(dist, heads, candidates)
        frontier = np.flatnonzero(dist < previous)
    if masked:
        dist[forbidden] = INT_UNREACHED if integral else np.inf
    return dist


def _per_row_masks(sources: np.ndarray, n: int, forbidden, kernel: str):
    """Normalise ``forbidden`` for the batched kernels.

    Returns ``(scalar_mask, per_row_array)``: exactly one of the two is
    active — ``per_row_array`` is ``None`` for the original shared-mask form
    (including a per-row sequence whose entries all agree, which collapses to
    the scalar path), otherwise an int64 array aligned with ``sources`` where
    row ``i`` masks ``per_row_array[i]`` (negative = unmasked row).  The
    contradictory ``forbidden[i] == sources[i]`` is rejected like the
    single-source kernels reject it.
    """
    if isinstance(forbidden, (int, np.integer)):
        scalar = int(forbidden)
        if scalar >= 0 and bool(np.any(sources == scalar)):
            raise ValueError(f"the {kernel} source cannot be the forbidden node")
        return scalar, None
    forb = np.asarray(forbidden, dtype=np.int64)
    if forb.shape != sources.shape:
        raise ValueError(
            f"per-row forbidden masks {forb.shape} do not align with "
            f"sources {sources.shape}"
        )
    if bool(np.any((forb >= 0) & (forb == sources))):
        raise ValueError(f"the {kernel} source cannot be the forbidden node")
    if forb.size and bool(np.all(forb == forb[0])):
        return int(forb[0]), None  # uniform masks: take the shared-mask path
    return -1, forb


def bfs_hops_csr_multi(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    sources: Sequence[int],
    forbidden=-1,
    scale_unit=None,
):
    """Batched BFS: hop rows for every source at once, as an ``(S, n)`` matrix.

    With ``scale_unit`` set, returns ``(hops, scaled)`` where ``scaled`` is
    bit-identical to ``scaled_float_rows(hops, scale_unit)`` but assembled
    straight from the kernel's internal visit counter — one fewer full pass
    over the hop matrix, which matters for giant report-prefetch chunks.
    In this form ``hops`` uses the narrowest exact integer dtype (int16
    whenever the round count fits): every entry is the same exact integer
    the plain form returns, at a quarter of the matrix and cache bytes.

    Row ``i`` is exactly ``bfs_hops_csr(..., sources[i], forbidden)``.  All
    sources advance level-synchronously over **bitset frontiers**: each node
    carries one bit per source packed into ``ceil(S / 64)`` uint64 words, a
    round ORs the frontier words of every union-frontier tail into its heads
    (one ``np.bitwise_or.at``) and ticks a bit-sliced visit counter from
    which hop labels are assembled once at the end.  Per-round work is
    ``O(frontier edges * S / 64)`` words instead
    of ``O(S * E)`` bools, which is what amortises the per-round dispatch
    overhead that makes single-source array BFS lose on sparse, deep graphs
    — per-node deviation probes (a handful of sources, same mask) and whole
    ``all_costs`` sweeps (``S = n``) both stay traversal-cheap.

    ``forbidden`` is a shared int or a sequence aligned with ``sources``:
    with per-row masks, row ``i`` never enters ``forbidden[i]`` (its bit is
    cleared from every reached word via a per-node blocked bitmask), so one
    giant traversal serves ``d_{G-u_i}`` rows for *different* masked nodes
    ``u_i`` — the substrate of whole-report batched prefetch.  Each row's
    bits evolve exactly as they would alone (bits of different sources never
    interact), so per-row-masked rows stay bit-identical to the
    single-source kernel under its own mask.
    """
    sources = np.asarray(sources, dtype=np.int64)
    num = int(sources.shape[0])
    forbidden, forb_rows = _per_row_masks(sources, n, forbidden, "BFS")
    words = (num + 63) // 64
    frontier = np.zeros((n, words), dtype=np.uint64)
    bit_word = np.arange(num, dtype=np.int64) // 64
    bit_mask = np.uint64(1) << (np.arange(num, dtype=np.uint64) % np.uint64(64))
    # bitwise_or.at (not fancy |=) so repeated source nodes still set all bits.
    np.bitwise_or.at(frontier, (sources, bit_word), bit_mask)
    visited = frontier.copy()
    masked = 0 <= forbidden < n
    unblocked = None
    if forb_rows is not None:
        # blocked[v] has bit i set when row i must never enter node v; AND-ing
        # its complement out of each round's reached words is the per-row
        # analogue of zeroing the shared forbidden node's words.
        rows_masked = np.flatnonzero((forb_rows >= 0) & (forb_rows < n))
        blocked = np.zeros_like(frontier)
        np.bitwise_or.at(
            blocked,
            (forb_rows[rows_masked], bit_word[rows_masked]),
            bit_mask[rows_masked],
        )
        unblocked = ~blocked
    # Hop labels are never scattered during the sweep.  Instead each round
    # increments a bit-sliced counter over the *visited* words (a carry-save
    # ripple across ceil(log2(rounds+1)) uint64 planes, so the per-round cost
    # is a handful of word-parallel AND/XORs instead of an unpack + nonzero +
    # scatter over every fresh bit).  A bit first visited in round L is
    # counted in rounds L..R, so count = R - L + 1 and L = R + 1 - count;
    # never-visited bits keep count 0.  One unpack per plane at the end
    # replaces the per-round decode that dominated giant-chunk profiles.
    planes: list = []
    rounds = 0
    # Once the frontier covers a large slice of a wide batch, a head-grouped
    # ``bitwise_or.reduceat`` over the reverse CSR beats the
    # frontier-restricted scatter (``bitwise_or.at`` is a buffered
    # per-element loop): inactive tails contribute all-zero words, so the
    # dense sweep computes the same ``reached``.  Narrow batches stay on the
    # sparse scatter — their per-round gather traffic (all E edges * words)
    # would dwarf the scatter they replace.
    rev = None
    dense_threshold = n // 4 if words >= 4 else n + 1
    last_fresh = 0
    while True:
        if last_fresh >= dense_threshold:
            if rev is None:
                rev_indptr, rev_tails = reverse_csr(indptr, indices, n)
                # reduceat only over heads that have in-edges: empty groups
                # would repeat a neighbour's element (and a start == E is out
                # of bounds), but consecutive non-empty starts are strictly
                # increasing and span exactly each head's edge run, so none
                # of reduceat's empty-group quirks apply.
                nonempty = np.flatnonzero(rev_indptr[:-1] < rev_indptr[1:])
                rev_starts = rev_indptr[:-1][nonempty]
                rev = (
                    rev_starts,
                    rev_tails,
                    nonempty if nonempty.shape[0] < n else None,
                )
            grouped = np.bitwise_or.reduceat(frontier[rev[1]], rev[0], axis=0)
            if rev[2] is None:
                reached = grouped
            else:
                reached = np.zeros_like(frontier)
                reached[rev[2]] = grouped
        else:
            active = np.flatnonzero(frontier.any(axis=1))
            positions, tails = _gather_edges(indptr, active)
            if positions.size == 0:
                break
            heads = indices[positions]
            reached = np.zeros_like(frontier)
            np.bitwise_or.at(reached, heads, frontier[tails])
        if masked:
            reached[forbidden] = 0
        elif unblocked is not None:
            reached &= unblocked
        fresh = reached & ~visited
        rows = np.flatnonzero(fresh.any(axis=1))
        if rows.size == 0:
            break
        last_fresh = int(rows.size)
        visited[rows] |= fresh[rows]
        frontier = fresh
        rounds += 1
        carry = visited.copy()
        for plane in planes:
            carried = plane & carry
            plane ^= carry
            carry = carried
        if carry.any():
            planes.append(carry)
    scaled = None
    if not planes:
        hops = np.full(
            (num, n), UNREACHED,
            dtype=np.int64 if scale_unit is None else np.int16,
        )
        if scale_unit is not None:
            scaled = np.full((num, n), np.inf)
    else:
        # Assemble levels from the plane counters: unpack each plane's words
        # once to (n, S) bits.  bitorder='little' matches the shift direction
        # used to build bit_mask above once the words are in little-endian
        # byte order (a byteswap on big-endian hosts).  The counter uses the
        # narrowest exact dtype (counts <= rounds, bounded by 2**planes - 1)
        # so the accumulation and the transpose touch as little memory as
        # possible; counts are exact small integers either way, so the final
        # int64 subtraction is bit-identical.
        if len(planes) <= 8:
            acc_dtype = np.uint8
        elif len(planes) <= 15:
            acc_dtype = np.int16
        else:
            acc_dtype = np.int64
        # Transposing the packed bytes (words per node, a ~1% slice of the
        # full bit matrix) lands source-major cheaply, and a shift-and-mask
        # broadcast unpacks each byte row into its 8 source rows in C order
        # — byte s // 8 of a node's words holds sources 8 * (s // 8) ..
        # 8 * (s // 8) + 7, least significant bit first, matching bit_mask
        # above.  (np.unpackbits along axis 0 computes the same thing an
        # order of magnitude slower, and unpacking along axis 1 would force
        # an elementwise transpose of the full-size counter.)
        count = np.zeros((num, n), dtype=acc_dtype)
        shifts = np.arange(8, dtype=np.uint8)[None, :, None]
        for k, plane in enumerate(planes):
            if _BIG_ENDIAN:  # pragma: no cover - exercised on s390x and friends
                plane = plane.byteswap()
            pbytes = np.ascontiguousarray(plane.view(np.uint8).T)
            bits = ((pbytes[:, None, :] >> shifts) & np.uint8(1)).reshape(-1, n)
            bits = bits[:num]
            if k == 0:
                count += bits
            elif k < 8:
                count += bits << np.uint8(k)  # still uint8: k <= 7, bit <= 128
            else:
                count += bits.astype(acc_dtype) << k
        # Widen once, subtract in place, then fill the (typically few)
        # never-visited entries.  The fused giant-chunk form keeps hops in
        # int16 where exact (labels are bounded by rounds + 1, which fits
        # whenever the counter did): a quarter of the write traffic here and
        # of the hop-row cache bytes downstream.
        never = count == 0
        if scale_unit is None:
            out_dtype = np.int64
        else:
            # <= 14 planes: rounds < 2**14, so rounds + 1 and every label
            # stay well inside int16.
            out_dtype = np.int16 if len(planes) <= 14 else np.int64
        hops = count.astype(out_dtype)
        np.subtract(rounds + 1, hops, out=hops)
        hops[never] = UNREACHED
        if scale_unit is not None:
            # One multiply off the still-cache-hot hop matrix; ``never`` is
            # exactly the ``hops < 0`` set ``scaled_float_rows`` masks, so
            # this is the same IEEE product and fill, one full pass over the
            # cold matrix cheaper.
            scaled = hops * np.float64(scale_unit)
            scaled[never] = np.inf
    # Sources counted in every round (count = rounds → level 1 above), but
    # their true hop label is 0.
    hops[np.arange(num), sources] = 0
    if masked:
        hops[:, forbidden] = UNREACHED
    elif forb_rows is not None:
        # Blocked bits were never set, so these entries already hold
        # UNREACHED; the explicit write keeps the mask contract load-bearing
        # rather than incidental.
        hops[rows_masked, forb_rows[rows_masked]] = UNREACHED
    if scaled is None:
        return hops
    # Mirror the post-assembly writes above so ``scaled`` matches
    # ``scaled_float_rows(hops, scale_unit)`` bit for bit.
    scaled[np.arange(num), sources] = 0.0
    if masked:
        scaled[:, forbidden] = np.inf
    elif forb_rows is not None:
        scaled[rows_masked, forb_rows[rows_masked]] = np.inf
    return hops, scaled


def dijkstra_csr_multi(
    indptr: np.ndarray,
    indices: np.ndarray,
    lengths: np.ndarray,
    n: int,
    sources: Sequence[int],
    forbidden=-1,
) -> np.ndarray:
    """Batched frontier Dijkstra: one ``(S, n)`` matrix of distance rows.

    Row ``i`` is exactly ``dijkstra_csr_np(..., sources[i], forbidden)`` (and
    therefore exactly the heap kernel's row).  Each round relaxes the
    out-edges of the union frontier for every source at once; relaxing an
    edge for a source that did not improve its tail is a no-op (the candidate
    cannot beat the standing label), so sharing the gather across sources
    never changes any label — only the round count shrinks.

    ``forbidden`` is a shared int or a sequence aligned with ``sources``
    (row ``i`` masks ``forbidden[i]``).  With per-row masks, a node that is
    forbidden for row ``i`` can still enter the *shared* frontier through
    another row, so besides the barrier entry (which keeps relaxations into
    the mask from sticking) every round must also kill row ``i``'s
    relaxations *out of* its own forbidden tail — otherwise the barrier
    label would propagate outward for that row.  With both guards the
    relaxations applied to row ``i`` are exactly the single-mask kernel's,
    so labels (float bits included) are unchanged.
    """
    sources = np.asarray(sources, dtype=np.int64)
    num = int(sources.shape[0])
    forbidden, forb_rows = _per_row_masks(sources, n, forbidden, "Dijkstra")
    integral = lengths.dtype.kind in "iu"
    if integral:
        dist = np.full((num, n), INT_UNREACHED, dtype=np.int64)
        barrier = -1
        unreached = INT_UNREACHED
    else:
        dist = np.full((num, n), np.inf, dtype=np.float64)
        barrier = -np.inf
        unreached = np.inf
    masked = 0 <= forbidden < n
    if masked:
        dist[:, forbidden] = barrier
    forb_counts = forb_sorted_rows = forb_starts = None
    if forb_rows is not None:
        rows_masked = np.flatnonzero((forb_rows >= 0) & (forb_rows < n))
        dist[rows_masked, forb_rows[rows_masked]] = barrier
        # Group masking rows by forbidden node once, so each round's kill is
        # a ragged scatter over only the (row, edge) pairs whose tail is that
        # row's own forbidden node — O(E_round + matches) instead of the
        # (S, E_round) comparison matrix that dominates giant chunks.
        forb_counts = np.zeros(n, dtype=np.int64)
        np.add.at(forb_counts, forb_rows[rows_masked], 1)
        order = np.argsort(forb_rows[rows_masked], kind="stable")
        forb_sorted_rows = rows_masked[order]
        forb_starts = np.zeros(n, dtype=np.int64)
        forb_starts[1:] = np.cumsum(forb_counts)[:-1]
    dist[np.arange(num), sources] = 0
    flat = dist.reshape(-1)
    offsets = np.arange(num, dtype=np.int64) * n
    # The frontier is the set of columns (nodes) where any source's label
    # improved last round: relaxing an edge for a source that did not
    # improve its tail is a no-op (the candidate cannot beat the standing
    # label), so per-source frontier masking is unnecessary, and only the
    # head columns of a round need snapshotting to detect improvements —
    # copying the whole (S, n) matrix per round would dominate at S = n.
    columns = np.unique(sources)
    while True:
        positions, tails = _gather_edges(indptr, columns)
        if positions.size == 0:
            break
        heads = indices[positions]
        candidates = dist[:, tails] + lengths[positions]
        if forb_rows is not None:
            # Kill each row's relaxations out of its own forbidden tail: its
            # barrier label must never leave the masked node.
            cols = np.flatnonzero(forb_counts[tails] > 0)
            if cols.size:
                counts = forb_counts[tails[cols]]
                ends = np.cumsum(counts)
                within = np.arange(int(ends[-1]), dtype=np.int64)
                within -= np.repeat(ends - counts, counts)
                starts = np.repeat(forb_starts[tails[cols]], counts)
                kill_rows = forb_sorted_rows[starts + within]
                candidates[kill_rows, np.repeat(cols, counts)] = unreached
        head_columns = np.unique(heads)
        if 4 * head_columns.size < n:
            # Narrow round: snapshot only the columns that can change.
            previous = dist[:, head_columns]
            np.minimum.at(flat, (offsets[:, None] + heads).ravel(), candidates.ravel())
            improved = (dist[:, head_columns] < previous).any(axis=0)
            columns = head_columns[improved]
        else:
            # Wide round: the head set approaches n, where one flat copy is
            # cheaper than two fancy-index gathers of almost everything.
            previous = dist.copy()
            np.minimum.at(flat, (offsets[:, None] + heads).ravel(), candidates.ravel())
            columns = np.flatnonzero((dist < previous).any(axis=0))
        if columns.size == 0:
            break
    if masked:
        dist[:, forbidden] = INT_UNREACHED if integral else np.inf
    if forb_rows is not None:
        dist[rows_masked, forb_rows[rows_masked]] = unreached
    return dist


def int_to_float_rows(dist: np.ndarray) -> np.ndarray:
    """Convert int64 distances (row or matrix) to ``dijkstra_csr``'s floats.

    ``float(d)`` is exact for every gated distance (``< 2**53``), so each
    entry is bit-identical to the heap kernel's float label on integer
    lengths; :data:`INT_UNREACHED` becomes ``inf``.
    """
    rows = dist.astype(np.float64)
    rows[dist >= INT_UNREACHED] = np.inf
    return rows


def scaled_float_rows(hops: np.ndarray, unit: float) -> np.ndarray:
    """Vectorised ``scaled_float_row`` (row or matrix): hops scaled by ``unit``.

    Each entry is the same single IEEE product ``float(h) * unit`` the list
    helper computes; :data:`~repro.graphs.int_kernels.UNREACHED` becomes
    ``inf``.
    """
    # One fused ufunc: each int hop converts to its exact double (< 2**53)
    # before the multiply, so every entry is the same single IEEE product
    # ``float(h) * unit`` the two-step astype-then-scale spelling computes.
    rows = hops * np.float64(unit)
    rows[hops < 0] = np.inf
    return rows


# --------------------------------------------------------------------- #
# Repair kernels
# --------------------------------------------------------------------- #
def _prepare_edits(edits, forbidden, tight_of):
    """Normalise ``edits`` and collect phase-1 tight seeds.

    Returns ``(edit_map, seeds)`` like the list kernels' preamble:
    ``edit_map`` maps each mover (the masked node's edits dropped) to its
    ``(removed, added)`` frozensets, and ``seeds`` lists the heads of removed
    arcs that were *tight* under the old row (``tight_of(mover, head)``).
    """
    edit_map = {}
    seeds: List[int] = []
    for mover, removed, added in edits:
        if mover == forbidden:
            continue  # the masked graph never contained this node's arcs
        edit_map[mover] = (frozenset(removed), frozenset(added))
        for head in removed:
            if head != forbidden and tight_of(mover, head):
                seeds.append(head)
    return edit_map, seeds


def _affected_mask(
    dist: np.ndarray,
    seeds: List[int],
    edit_map,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_weights,
    pair_weights,
    source: int,
    forbidden: int,
    n: int,
) -> np.ndarray:
    """Vectorised phase 1: mark the region whose old distance lost support.

    The frontier sweep follows old-graph tight edges (``dist[y] == dist[v] +
    w(v, y)``) exactly like ``_phase1_affected``; unedited nodes' out-rows
    come from one CSR gather per round, and the handful of edited movers
    reconstruct their old rows (new row minus added arcs plus removed arcs)
    in a scalar loop.  ``edge_weights(positions)`` returns per-CSR-edge
    weights and ``pair_weights(v, heads)`` static arc weights for the
    reconstructed rows.
    """
    affected = np.zeros(n, dtype=bool)
    edited = np.zeros(n, dtype=bool)
    if edit_map:
        edited[list(edit_map)] = True
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    while frontier.size:
        affected[frontier] = True
        plain = frontier[~edited[frontier]]
        positions, tails = _gather_edges(indptr, plain)
        heads = indices[positions]
        keep = (
            (heads != source)
            & ~affected[heads]
            & (dist[heads] == dist[tails] + edge_weights(positions))
        )
        if forbidden >= 0:
            keep &= heads != forbidden
        batches = [heads[keep]]
        for mover in frontier[edited[frontier]]:
            v = int(mover)
            removed, added = edit_map[v]
            old_out = [
                y for y in indices[indptr[v] : indptr[v + 1]].tolist() if y not in added
            ]
            old_out.extend(removed)
            if not old_out:
                continue
            ys = np.asarray(old_out, dtype=np.int64)
            keep_y = (
                (ys != source)
                & ~affected[ys]
                & (dist[ys] == dist[v] + pair_weights(v, ys))
            )
            if forbidden >= 0:
                keep_y &= ys != forbidden
            batches.append(ys[keep_y])
        frontier = np.unique(np.concatenate(batches)) if len(batches) > 1 else np.unique(batches[0])
        frontier = frontier[~affected[frontier]]
    return affected


def _boundary_seeds(
    work: np.ndarray,
    affected: np.ndarray,
    rev_indptr: np.ndarray,
    rev_tails: np.ndarray,
    in_weights,
    forbidden: int,
    unreached,
) -> np.ndarray:
    """Vectorised phase-2 seeding from the intact in-boundary.

    For every affected node ``v``, the best label reachable in one hop from a
    non-affected in-neighbour ``p`` with a finite label: ``min over p of
    work[p] + w(p, v)``.  One reverse-CSR gather replaces the per-node
    in-neighbour loops of the list kernels; ``np.minimum.at`` takes the
    per-head minimum, which is exact (no rounding happens in a min).
    """
    pending = np.full(work.shape[0], unreached, dtype=work.dtype)
    aff_nodes = np.flatnonzero(affected)
    positions, heads = _gather_edges(rev_indptr, aff_nodes)
    if positions.size:
        tails = rev_tails[positions]
        keep = ~affected[tails] & (work[tails] < unreached)
        if forbidden >= 0:
            keep &= tails != forbidden
        if keep.any():
            tails, heads = tails[keep], heads[keep]
            np.minimum.at(pending, heads, work[tails] + in_weights(tails, heads))
    return pending


def _continue_relax(
    work: np.ndarray,
    pending: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_weights,
    forbidden: int,
) -> np.ndarray:
    """Frontier continuation: apply seeded labels, relax until fixed point.

    ``pending`` holds per-node candidate labels (boundary seeds plus added
    arcs); each round applies the candidates that improve ``work`` and
    relaxes the out-edges of the improved nodes, exactly the seeded-heap
    continuation of the list kernels expressed as array sweeps.  Returns the
    boolean mask of nodes whose label was (re)assigned.
    """
    changed = np.zeros(work.shape[0], dtype=bool)
    while True:
        frontier = np.flatnonzero(pending < work)
        if frontier.size == 0:
            return changed
        work[frontier] = pending[frontier]
        changed[frontier] = True
        positions, tails = _gather_edges(indptr, frontier)
        if positions.size == 0:
            continue
        heads = indices[positions]
        candidates = work[tails] + edge_weights(positions)
        if forbidden >= 0:
            keep = heads != forbidden
            heads, candidates = heads[keep], candidates[keep]
        np.minimum.at(pending, heads, candidates)


def repair_hops_csr_np(
    indptr: np.ndarray,
    indices: np.ndarray,
    hops: List[int],
    source: int,
    edits: Sequence[Tuple[int, Iterable[int], Iterable[int]]],
    rev_indptr: np.ndarray,
    rev_tails: np.ndarray,
    forbidden: int = -1,
) -> List[int]:
    """Vectorised ``repair_hops_csr``: repair a BFS hop row in place.

    Same contract as the list kernel — ``hops`` is a valid hop row of the old
    graph, ``indptr``/``indices`` (and the reverse CSR) describe the new one,
    and the returned ids are a superset of the entries that changed — but the
    affected-region marking and the seeded continuation run as array sweeps.
    The row stays a plain Python list (entries are written back as ints), so
    the engine's caches are backend-agnostic.
    """
    n = len(hops)
    dist = np.asarray(hops, dtype=np.int64)

    def tight_of(mover: int, head: int) -> bool:
        dm = hops[mover]
        return dm >= 0 and head != source and hops[head] == dm + 1

    edit_map, seeds = _prepare_edits(edits, forbidden, tight_of)
    if not edit_map:
        return []

    def unit_weight(positions):
        return 1

    def unit_pair_weight(tails, heads):
        return 1

    if seeds:
        affected = _affected_mask(
            dist, seeds, edit_map, indptr, indices,
            unit_weight, lambda v, ys: 1, source, forbidden, n,
        )
    else:
        affected = np.zeros(n, dtype=bool)

    work = np.where(dist < 0, INT_UNREACHED, dist)
    work[affected] = INT_UNREACHED
    pending = _boundary_seeds(
        work, affected, rev_indptr, rev_tails,
        unit_pair_weight, forbidden, INT_UNREACHED,
    )
    for mover, (_removed, added) in edit_map.items():
        dm = hops[mover]
        if dm < 0 or affected[mover]:
            continue
        for head in added:
            if head != forbidden and not affected[head]:
                pending[head] = min(pending[head], dm + 1)
    changed = _continue_relax(work, pending, indptr, indices, unit_weight, forbidden)

    touched = np.flatnonzero(affected | changed)
    for v in touched.tolist():
        label = work[v]
        hops[v] = int(label) if label < INT_UNREACHED else UNREACHED
    return touched.tolist()


def repair_dijkstra_csr_np(
    indptr: np.ndarray,
    indices: np.ndarray,
    lengths: np.ndarray,
    dist_row: List[float],
    source: int,
    edits: Sequence[Tuple[int, Iterable[int], Iterable[int]]],
    rev_indptr: np.ndarray,
    rev_tails: np.ndarray,
    length_matrix: np.ndarray,
    forbidden: int = -1,
) -> List[int]:
    """Vectorised ``repair_dijkstra_csr``: repair a weighted row in place.

    ``lengths`` must be the float64 per-edge lengths of the new CSR and
    ``length_matrix`` the dense float64 ``length_matrix[p, v]`` table (for
    old-row reconstruction and boundary in-edges).  The float arithmetic is
    the same single-sum-per-arc the list kernel performs, so repaired labels
    are bit-identical; on integer-valued lengths every label remains an
    exact integer in float form.
    """
    n = len(dist_row)
    dist = np.asarray(dist_row, dtype=np.float64)

    def tight_of(mover: int, head: int) -> bool:
        dm = dist_row[mover]
        if dm == float("inf"):
            return False
        return head != source and dist_row[head] == dm + length_matrix[mover, head]

    edit_map, seeds = _prepare_edits(edits, forbidden, tight_of)
    if not edit_map:
        return []

    def edge_w(positions):
        return lengths[positions]

    if seeds:
        affected = _affected_mask(
            dist, seeds, edit_map, indptr, indices,
            edge_w, lambda v, ys: length_matrix[v, ys], source, forbidden, n,
        )
    else:
        affected = np.zeros(n, dtype=bool)

    work = dist.copy()
    work[affected] = np.inf
    pending = _boundary_seeds(
        work, affected, rev_indptr, rev_tails,
        lambda tails, heads: length_matrix[tails, heads], forbidden, np.inf,
    )
    for mover, (_removed, added) in edit_map.items():
        dm = dist_row[mover]
        if dm == float("inf") or affected[mover]:
            continue
        for head in added:
            if head != forbidden and not affected[head]:
                candidate = dm + float(length_matrix[mover, head])
                if candidate < pending[head]:
                    pending[head] = candidate
    changed = _continue_relax(work, pending, indptr, indices, edge_w, forbidden)

    touched = np.flatnonzero(affected | changed)
    for v in touched.tolist():
        dist_row[v] = float(work[v])
    return touched.tolist()


__all__ = [
    "INT_UNREACHED",
    "bfs_hops_csr_multi",
    "bfs_hops_csr_np",
    "csr_arrays",
    "dijkstra_csr_multi",
    "dijkstra_csr_np",
    "int_to_float_rows",
    "repair_dijkstra_csr_np",
    "repair_hops_csr_np",
    "reverse_csr",
    "scaled_float_rows",
]
