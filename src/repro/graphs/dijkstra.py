"""Dijkstra single-source shortest paths for non-negative edge lengths.

Non-uniform BBC games attach an integer length to every link, so weighted
shortest paths are needed whenever link lengths differ.  The implementation
is a standard binary-heap Dijkstra with lazy deletion.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from .digraph import DiGraph
from .errors import NegativeEdgeLength, NodeNotFound

Node = Hashable
_Number = float


def dijkstra_distances(
    graph: DiGraph, source: Node, length_attr: str = "length", default_length: _Number = 1
) -> Dict[Node, _Number]:
    """Return shortest-path distances from ``source`` using edge lengths.

    Edge lengths are read from ``length_attr`` (defaulting to
    ``default_length`` when absent).  Unreachable nodes are omitted from the
    result.  Negative lengths raise :class:`NegativeEdgeLength`.
    """
    if not graph.has_node(source):
        raise NodeNotFound(source)
    dist: Dict[Node, _Number] = {}
    heap: List[Tuple[_Number, int, Node]] = [(0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for nxt, data in graph.successor_items(node):
            if nxt in dist:
                continue
            length = data.get(length_attr, default_length)
            if length < 0:
                raise NegativeEdgeLength(node, nxt, length)
            counter += 1
            heapq.heappush(heap, (d + length, counter, nxt))
    return dist


def dijkstra_distances_weighted_adjacency(
    adjacency: Mapping[Node, Iterable[Tuple[Node, _Number]]], source: Node
) -> Dict[Node, _Number]:
    """Dijkstra over a plain ``{node: [(successor, length), ...]}`` mapping.

    Used by the best-response engine for non-uniform games where candidate
    strategies are evaluated on adjacency snapshots.
    """
    dist: Dict[Node, _Number] = {}
    heap: List[Tuple[_Number, int, Node]] = [(0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for nxt, length in adjacency.get(node, ()):
            if nxt in dist:
                continue
            if length < 0:
                raise NegativeEdgeLength(node, nxt, length)
            counter += 1
            heapq.heappush(heap, (d + length, counter, nxt))
    return dist


def dijkstra_path(
    graph: DiGraph,
    source: Node,
    target: Node,
    length_attr: str = "length",
    default_length: _Number = 1,
) -> Optional[Tuple[_Number, List[Node]]]:
    """Return ``(distance, path)`` for one shortest path, or ``None``.

    ``None`` is returned when ``target`` is unreachable from ``source``.
    """
    if not graph.has_node(source):
        raise NodeNotFound(source)
    if not graph.has_node(target):
        raise NodeNotFound(target)
    dist: Dict[Node, _Number] = {}
    parent: Dict[Node, Optional[Node]] = {source: None}
    heap: List[Tuple[_Number, int, Node]] = [(0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if node == target:
            break
        for nxt, data in graph.successor_items(node):
            if nxt in dist:
                continue
            length = data.get(length_attr, default_length)
            if length < 0:
                raise NegativeEdgeLength(node, nxt, length)
            candidate = d + length
            counter += 1
            heapq.heappush(heap, (candidate, counter, nxt))
            if nxt not in parent or candidate < dist.get(nxt, float("inf")):
                parent.setdefault(nxt, node)
    if target not in dist:
        return None
    # Rebuild the path by walking a shortest-path tree computed from scratch;
    # the parent map above is only a heuristic seed, so recompute carefully.
    path = _reconstruct_path(graph, source, target, dist, length_attr, default_length)
    return dist[target], path


def _reconstruct_path(
    graph: DiGraph,
    source: Node,
    target: Node,
    dist: Dict[Node, _Number],
    length_attr: str,
    default_length: _Number,
) -> List[Node]:
    """Walk backwards from ``target`` along tight edges to recover a path."""
    reverse = graph.reverse()
    path = [target]
    node = target
    while node != source:
        found_predecessor = False
        for prev, data in reverse.successor_items(node):
            if prev not in dist:
                continue
            length = data.get(length_attr, default_length)
            if abs(dist[prev] + length - dist[node]) < 1e-12:
                path.append(prev)
                node = prev
                found_predecessor = True
                break
        if not found_predecessor:  # pragma: no cover - defensive
            raise RuntimeError("failed to reconstruct shortest path")
    path.reverse()
    return path
