"""Dijkstra single-source shortest paths for non-negative edge lengths.

Non-uniform BBC games attach an integer length to every link, so weighted
shortest paths are needed whenever link lengths differ.  The implementation
is a standard binary-heap Dijkstra with lazy deletion.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from .digraph import DiGraph
from .errors import NegativeEdgeLength, NodeNotFound

Node = Hashable
_Number = float


def dijkstra_distances(
    graph: DiGraph, source: Node, length_attr: str = "length", default_length: _Number = 1
) -> Dict[Node, _Number]:
    """Return shortest-path distances from ``source`` using edge lengths.

    Edge lengths are read from ``length_attr`` (defaulting to
    ``default_length`` when absent).  Unreachable nodes are omitted from the
    result.  Negative lengths raise :class:`NegativeEdgeLength`.
    """
    if not graph.has_node(source):
        raise NodeNotFound(source)
    dist: Dict[Node, _Number] = {}
    heap: List[Tuple[_Number, int, Node]] = [(0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for nxt, data in graph.successor_items(node):
            if nxt in dist:
                continue
            length = data.get(length_attr, default_length)
            if length < 0:
                raise NegativeEdgeLength(node, nxt, length)
            counter += 1
            heapq.heappush(heap, (d + length, counter, nxt))
    return dist


def dijkstra_distances_weighted_adjacency(
    adjacency: Mapping[Node, Iterable[Tuple[Node, _Number]]], source: Node
) -> Dict[Node, _Number]:
    """Dijkstra over a plain ``{node: [(successor, length), ...]}`` mapping.

    Used by the best-response engine for non-uniform games where candidate
    strategies are evaluated on adjacency snapshots.
    """
    dist: Dict[Node, _Number] = {}
    heap: List[Tuple[_Number, int, Node]] = [(0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for nxt, length in adjacency.get(node, ()):
            if nxt in dist:
                continue
            if length < 0:
                raise NegativeEdgeLength(node, nxt, length)
            counter += 1
            heapq.heappush(heap, (d + length, counter, nxt))
    return dist


def dijkstra_path(
    graph: DiGraph,
    source: Node,
    target: Node,
    length_attr: str = "length",
    default_length: _Number = 1,
) -> Optional[Tuple[_Number, List[Node]]]:
    """Return ``(distance, path)`` for one shortest path, or ``None``.

    ``None`` is returned when ``target`` is unreachable from ``source``.
    Tight-edge predecessors are tracked during the main loop (the parent of a
    node is updated whenever a strictly better tentative distance is pushed),
    so the path falls out of a single backward walk with no extra traversal
    or graph copy.
    """
    if not graph.has_node(source):
        raise NodeNotFound(source)
    if not graph.has_node(target):
        raise NodeNotFound(target)
    dist: Dict[Node, _Number] = {}
    parent: Dict[Node, Optional[Node]] = {source: None}
    best_seen: Dict[Node, _Number] = {source: 0}
    heap: List[Tuple[_Number, int, Node]] = [(0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if node == target:
            break
        for nxt, data in graph.successor_items(node):
            if nxt in dist:
                continue
            length = data.get(length_attr, default_length)
            if length < 0:
                raise NegativeEdgeLength(node, nxt, length)
            candidate = d + length
            if candidate < best_seen.get(nxt, float("inf")):
                best_seen[nxt] = candidate
                parent[nxt] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, nxt))
    if target not in dist:
        return None
    path: List[Node] = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path
