"""Strongly connected components (Tarjan) and the condensation DAG.

The convergence analysis of best-response walks (Section 4.3 of the paper)
reasons about sink components of the condensation, so the game layer needs a
fast SCC routine.  Tarjan's algorithm is implemented iteratively to avoid
Python's recursion limit on long paths/rings (the Ω(n²) lower-bound instance
is exactly a long ring plus a long path).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from .digraph import DiGraph

Node = Hashable


def strongly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Return the strongly connected components of ``graph``.

    Components are returned in reverse topological order of the condensation
    (i.e. a component appears before any component that can reach it), which
    is the natural output order of Tarjan's algorithm.
    """
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Iterative Tarjan: each frame is (node, iterator over successors).
        work: List[Tuple[Node, object]] = [(root, iter(list(graph.successors(root))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(list(graph.successors(nxt)))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def is_strongly_connected(graph: DiGraph) -> bool:
    """Return ``True`` when the whole graph is one strongly connected component."""
    if graph.number_of_nodes() == 0:
        return True
    return len(strongly_connected_components(graph)) == 1


def condensation(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, int]]:
    """Return ``(dag, membership)`` for the condensation of ``graph``.

    ``dag`` has one integer node per strongly connected component and an edge
    between two components whenever the original graph has an edge between
    their members.  ``membership`` maps each original node to its component id.
    """
    components = strongly_connected_components(graph)
    membership: Dict[Node, int] = {}
    for component_id, component in enumerate(components):
        for node in component:
            membership[node] = component_id
    dag = DiGraph()
    dag.add_nodes_from(range(len(components)))
    for tail, head in graph.edges():
        tail_id = membership[tail]
        head_id = membership[head]
        if tail_id != head_id:
            dag.add_edge(tail_id, head_id)
    return dag, membership


def sink_components(graph: DiGraph) -> List[Set[Node]]:
    """Return the components with no outgoing edge in the condensation.

    These are exactly the components whose members have minimum reach in a
    non-strongly-connected configuration (Lemma 10 of the paper reasons about
    them).
    """
    components = strongly_connected_components(graph)
    membership: Dict[Node, int] = {}
    for component_id, component in enumerate(components):
        for node in component:
            membership[node] = component_id
    has_outgoing = [False] * len(components)
    for tail, head in graph.edges():
        if membership[tail] != membership[head]:
            has_outgoing[membership[tail]] = True
    return [
        component
        for component_id, component in enumerate(components)
        if not has_outgoing[component_id]
    ]
