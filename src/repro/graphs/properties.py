"""Structural graph properties used by the analysis layer.

These helpers compute quantities the paper reasons about directly: reach
vectors (Section 4.3), diameters and eccentricities (Lemma 7), degree
regularity (Section 4.2), and distance-sum profiles that feed the social-cost
metrics.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from .apsp import all_pairs_hop_distances
from .bfs import bfs_distances, reach
from .digraph import DiGraph
from .scc import is_strongly_connected

Node = Hashable


def reach_vector(graph: DiGraph) -> Dict[Node, int]:
    """Return the reach (number of reachable nodes, inclusive) of every node."""
    return {node: reach(graph, node) for node in graph.nodes()}


def minimum_reach(graph: DiGraph) -> int:
    """Return the smallest reach over all nodes (0 for the empty graph)."""
    vector = reach_vector(graph)
    return min(vector.values()) if vector else 0


def sorted_reach_profile(graph: DiGraph) -> Tuple[int, ...]:
    """Return the reach values in non-decreasing order.

    The convergence argument of Lemma 9/10 tracks exactly this vector: best
    response steps can only make it lexicographically larger.
    """
    return tuple(sorted(reach_vector(graph).values()))


def hop_distance_sum(graph: DiGraph, source: Node, penalty: float) -> float:
    """Return the sum of hop distances from ``source`` to all other nodes.

    Unreachable nodes contribute ``penalty`` each, mirroring the game's
    disconnection penalty ``M``.
    """
    dist = bfs_distances(graph, source)
    n = graph.number_of_nodes()
    total = float(sum(dist.values()))
    missing = n - len(dist)
    return total + missing * penalty


def hop_distance_max(graph: DiGraph, source: Node, penalty: float) -> float:
    """Return the maximum hop distance from ``source`` (or the penalty)."""
    dist = bfs_distances(graph, source)
    n = graph.number_of_nodes()
    if len(dist) < n:
        return penalty
    others = [d for node, d in dist.items() if node != source]
    return float(max(others)) if others else 0.0


def total_hop_distance(graph: DiGraph, penalty: float) -> float:
    """Return the sum over all ordered pairs of hop distances (with penalty)."""
    return sum(hop_distance_sum(graph, node, penalty) for node in graph.nodes())


def is_out_regular(graph: DiGraph, degree: Optional[int] = None) -> bool:
    """Return ``True`` if every node has the same out-degree (== ``degree`` if given)."""
    degrees = {graph.out_degree(node) for node in graph.nodes()}
    if not degrees:
        return True
    if len(degrees) != 1:
        return False
    return degree is None or degrees == {degree}


def degree_histogram(graph: DiGraph) -> Dict[int, int]:
    """Return ``{out_degree: count}`` over all nodes."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        histogram[graph.out_degree(node)] = histogram.get(graph.out_degree(node), 0) + 1
    return histogram


def distance_histogram(graph: DiGraph) -> Dict[int, int]:
    """Return a histogram of finite pairwise hop distances (excluding self pairs)."""
    histogram: Dict[int, int] = {}
    matrix = all_pairs_hop_distances(graph)
    for source, row in matrix.items():
        for target, distance in row.items():
            if source == target:
                continue
            histogram[distance] = histogram.get(distance, 0) + 1
    return histogram


def average_distance(graph: DiGraph, penalty: float) -> float:
    """Return the average ordered-pair distance with the disconnection penalty."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    return total_hop_distance(graph, penalty) / (n * (n - 1))


def connectivity_summary(graph: DiGraph) -> Dict[str, object]:
    """Return a small report used by the experiment harness."""
    reaches = reach_vector(graph)
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "strongly_connected": is_strongly_connected(graph),
        "min_reach": min(reaches.values()) if reaches else 0,
        "max_reach": max(reaches.values()) if reaches else 0,
        "out_regular": is_out_regular(graph),
    }
