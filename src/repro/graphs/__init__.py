"""Directed-graph substrate for the BBC games reproduction.

Everything the game engine needs from graph theory lives here: a small
dependency-free digraph, BFS / Dijkstra shortest paths, Tarjan strongly
connected components, all-pairs distances, min-cost flow (for fractional
games), generators and serialization helpers.
"""

from .apsp import (
    all_pairs_hop_distances,
    all_pairs_weighted_distances,
    diameter,
    eccentricity,
    floyd_warshall,
)
from .bfs import (
    bfs_distances,
    bfs_distances_adjacency,
    bfs_order,
    bfs_tree,
    reach,
    reachable_set,
    shortest_path,
)
from .digraph import DiGraph, from_adjacency
from .dijkstra import (
    dijkstra_distances,
    dijkstra_distances_weighted_adjacency,
    dijkstra_path,
)
from .errors import (
    EdgeNotFound,
    FlowError,
    GraphError,
    InfeasibleFlow,
    NegativeEdgeLength,
    NodeNotFound,
)
from .flow import FlowNetwork, min_cost_unit_flow_cost
from .int_kernels import (
    UNREACHED,
    bfs_hops_csr,
    build_csr,
    dijkstra_csr,
    repair_dijkstra_csr,
    repair_hops_csr,
    scaled_float_row,
)
from .generators import (
    complete_graph,
    complete_kary_out_tree,
    directed_cycle,
    directed_path,
    empty_graph,
    hypercube,
    random_digraph,
    random_k_out_graph,
    relabel,
    ring_with_tail,
    union_of_graphs,
)
from .properties import (
    average_distance,
    connectivity_summary,
    degree_histogram,
    distance_histogram,
    hop_distance_max,
    hop_distance_sum,
    is_out_regular,
    minimum_reach,
    reach_vector,
    sorted_reach_profile,
    total_hop_distance,
)
from .scc import (
    condensation,
    is_strongly_connected,
    sink_components,
    strongly_connected_components,
)
from .serialization import (
    ascii_adjacency,
    from_adjacency_dict,
    from_edge_list,
    graph_fingerprint,
    to_adjacency_dict,
    to_dot,
    to_edge_list,
    to_json,
)

__all__ = [
    "DiGraph",
    "from_adjacency",
    "bfs_distances",
    "bfs_distances_adjacency",
    "bfs_order",
    "bfs_tree",
    "reach",
    "reachable_set",
    "shortest_path",
    "dijkstra_distances",
    "dijkstra_distances_weighted_adjacency",
    "dijkstra_path",
    "UNREACHED",
    "build_csr",
    "bfs_hops_csr",
    "dijkstra_csr",
    "repair_dijkstra_csr",
    "repair_hops_csr",
    "scaled_float_row",
    "all_pairs_hop_distances",
    "all_pairs_weighted_distances",
    "floyd_warshall",
    "diameter",
    "eccentricity",
    "strongly_connected_components",
    "is_strongly_connected",
    "condensation",
    "sink_components",
    "FlowNetwork",
    "min_cost_unit_flow_cost",
    "GraphError",
    "NodeNotFound",
    "EdgeNotFound",
    "NegativeEdgeLength",
    "FlowError",
    "InfeasibleFlow",
    "empty_graph",
    "directed_cycle",
    "directed_path",
    "complete_graph",
    "complete_kary_out_tree",
    "hypercube",
    "random_k_out_graph",
    "random_digraph",
    "ring_with_tail",
    "union_of_graphs",
    "relabel",
    "reach_vector",
    "minimum_reach",
    "sorted_reach_profile",
    "hop_distance_sum",
    "hop_distance_max",
    "total_hop_distance",
    "is_out_regular",
    "degree_histogram",
    "distance_histogram",
    "average_distance",
    "connectivity_summary",
    "to_adjacency_dict",
    "to_edge_list",
    "to_json",
    "from_edge_list",
    "from_adjacency_dict",
    "to_dot",
    "ascii_adjacency",
    "graph_fingerprint",
]
