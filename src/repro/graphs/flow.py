"""Minimum-cost flow via successive shortest augmenting paths.

Fractional BBC games (Section 3.2 of the paper) define a node's cost through
minimum-cost *unit* flows in a network whose capacities are the fractional
link purchases.  Capacities and flow values are therefore real numbers, so
the solver works with floats and a small tolerance.

The implementation is the classic successive-shortest-paths algorithm with
Johnson potentials: as long as edge costs are non-negative (true for BBC link
lengths and the disconnection penalty), each augmentation can use Dijkstra on
reduced costs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from .errors import InfeasibleFlow, NegativeEdgeLength

Node = Hashable

_EPS = 1e-9


@dataclass
class _Arc:
    """Internal arc record; ``partner`` indexes the reverse residual arc."""

    head: int
    capacity: float
    cost: float
    flow: float = 0.0
    partner: int = -1

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


@dataclass
class FlowNetwork:
    """A directed flow network with float capacities and costs.

    Nodes may be arbitrary hashable objects; they are indexed internally.
    Parallel edges are supported (the fractional game adds both a purchased
    capacity edge and an "always available" penalty edge between the same
    pair of nodes).
    """

    _index_of: Dict[Node, int] = field(default_factory=dict)
    _labels: List[Node] = field(default_factory=list)
    _arcs: List[_Arc] = field(default_factory=list)
    _out: List[List[int]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> int:
        """Ensure ``node`` exists and return its internal index."""
        if node in self._index_of:
            return self._index_of[node]
        idx = len(self._labels)
        self._index_of[node] = idx
        self._labels.append(node)
        self._out.append([])
        return idx

    def add_edge(self, tail: Node, head: Node, capacity: float, cost: float) -> int:
        """Add a directed arc and its residual partner; return the arc id."""
        if cost < 0:
            raise NegativeEdgeLength(tail, head, cost)
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity!r}")
        tail_idx = self.add_node(tail)
        head_idx = self.add_node(head)
        forward = _Arc(head=head_idx, capacity=capacity, cost=cost)
        backward = _Arc(head=tail_idx, capacity=0.0, cost=-cost)
        forward_id = len(self._arcs)
        backward_id = forward_id + 1
        forward.partner = backward_id
        backward.partner = forward_id
        self._arcs.append(forward)
        self._arcs.append(backward)
        self._out[tail_idx].append(forward_id)
        self._out[head_idx].append(backward_id)
        return forward_id

    def number_of_nodes(self) -> int:
        """Return the number of nodes added so far."""
        return len(self._labels)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` has been added."""
        return node in self._index_of

    # ------------------------------------------------------------------ #
    # Min-cost flow
    # ------------------------------------------------------------------ #
    def reset_flow(self) -> None:
        """Zero out the flow on every arc so the network can be reused."""
        for arc in self._arcs:
            arc.flow = 0.0

    def min_cost_flow(
        self, source: Node, sink: Node, value: float, *, overflow_cost: Optional[float] = None
    ) -> Tuple[float, Dict[int, float]]:
        """Route ``value`` units from ``source`` to ``sink`` at minimum cost.

        Returns ``(total_cost, {arc_id: flow})`` for forward arcs carrying
        positive flow.  Raises :class:`InfeasibleFlow` if less than ``value``
        can be routed.

        When ``overflow_cost`` is given, any part of ``value`` that cannot be
        routed more cheaply than ``overflow_cost`` per unit is absorbed at
        exactly that price instead of raising.  Because successive shortest
        paths augment in non-decreasing path-cost order, this is equivalent to
        adding an uncapacitated ``source -> sink`` edge of cost
        ``overflow_cost`` — the fractional game's disconnection penalty —
        without mutating the network, so one shared network can serve every
        ``(source, sink)`` pair.  Absorbed flow is not reported in the
        returned arc-flow map.
        """
        if value < 0:
            raise ValueError(f"flow value must be non-negative, got {value!r}")
        if not self.has_node(source) or not self.has_node(sink):
            missing = source if not self.has_node(source) else sink
            raise InfeasibleFlow(source, sink, value, 0.0)  # pragma: no cover
        self.reset_flow()
        source_idx = self._index_of[source]
        sink_idx = self._index_of[sink]
        n = self.number_of_nodes()
        potential = [0.0] * n
        routed = 0.0
        total_cost = 0.0

        while routed + _EPS < value:
            dist, parent_arc = self._dijkstra(source_idx, potential)
            if dist[sink_idx] == math.inf:
                if overflow_cost is None:
                    raise InfeasibleFlow(source, sink, value, routed)
                total_cost += (value - routed) * overflow_cost
                routed = value
                break
            if overflow_cost is not None:
                # True path cost in original costs: potential[source] is pinned
                # at 0, so dist[sink] + potential[sink] undoes the reduction.
                path_cost = dist[sink_idx] + potential[sink_idx]
                if path_cost >= overflow_cost:
                    total_cost += (value - routed) * overflow_cost
                    routed = value
                    break
            # Update potentials for reachable nodes.
            for idx in range(n):
                if dist[idx] < math.inf:
                    potential[idx] += dist[idx]
            # Find the bottleneck along the augmenting path.
            bottleneck = value - routed
            node = sink_idx
            while node != source_idx:
                arc_id = parent_arc[node]
                bottleneck = min(bottleneck, self._arcs[arc_id].residual)
                node = self._arcs[self._arcs[arc_id].partner].head
            # Apply the augmentation.
            node = sink_idx
            while node != source_idx:
                arc_id = parent_arc[node]
                arc = self._arcs[arc_id]
                arc.flow += bottleneck
                self._arcs[arc.partner].flow -= bottleneck
                total_cost += bottleneck * arc.cost
                node = self._arcs[arc.partner].head
            routed += bottleneck

        flows = {
            arc_id: arc.flow
            for arc_id, arc in enumerate(self._arcs)
            if arc_id % 2 == 0 and arc.flow > _EPS
        }
        return total_cost, flows

    def min_cost_unit_flow(
        self, source: Node, sink: Node, *, overflow_cost: Optional[float] = None
    ) -> float:
        """Return the cost of a minimum-cost unit flow from ``source`` to ``sink``."""
        cost, _ = self.min_cost_flow(source, sink, 1.0, overflow_cost=overflow_cost)
        return cost

    # ------------------------------------------------------------------ #
    # Scratch-edge rollback
    # ------------------------------------------------------------------ #
    def arc_count(self) -> int:
        """Return the number of arc records (a rollback mark for :meth:`truncate`)."""
        return len(self._arcs)

    def truncate(self, count: int) -> None:
        """Remove every arc added after :meth:`arc_count` returned ``count``.

        ``add_edge`` only ever appends — one forward/backward arc pair to
        ``_arcs`` and one id to the tail's and head's adjacency lists — so a
        strict LIFO rollback just pops those appends back off.  This lets a
        cached environment network temporarily host one node's own (variable)
        edges: mark, add, evaluate flows, truncate.  No nodes may have been
        added since the mark, and ``count`` must come from :meth:`arc_count`
        (arc pairs are never split).
        """
        if count < 0 or count % 2 != 0 or count > len(self._arcs):
            raise ValueError(f"invalid truncation mark {count!r}")
        while len(self._arcs) > count:
            backward = self._arcs.pop()
            forward = self._arcs.pop()
            # The backward arc points at the edge's tail; its id and the
            # forward id are the most recent appends on those adjacency lists.
            self._out[backward.head].pop()
            self._out[forward.head].pop()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _dijkstra(
        self, source_idx: int, potential: List[float]
    ) -> Tuple[List[float], List[int]]:
        """Dijkstra on reduced costs over the residual network."""
        n = self.number_of_nodes()
        dist = [math.inf] * n
        parent_arc = [-1] * n
        dist[source_idx] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_idx)]
        visited = [False] * n
        while heap:
            d, node = heapq.heappop(heap)
            if visited[node]:
                continue
            visited[node] = True
            for arc_id in self._out[node]:
                arc = self._arcs[arc_id]
                if arc.residual <= _EPS:
                    continue
                head = arc.head
                if visited[head]:
                    continue
                reduced = arc.cost + potential[node] - potential[head]
                # Reduced costs can pick up tiny negative rounding noise.
                if reduced < -1e-6:  # pragma: no cover - defensive
                    reduced = 0.0
                candidate = d + max(reduced, 0.0)
                if candidate + _EPS < dist[head]:
                    dist[head] = candidate
                    parent_arc[head] = arc_id
                    heapq.heappush(heap, (candidate, head))
        return dist, parent_arc

    def arc_endpoints(self, arc_id: int) -> Tuple[Node, Node]:
        """Return ``(tail, head)`` labels of a forward arc."""
        arc = self._arcs[arc_id]
        tail_idx = self._arcs[arc.partner].head
        return self._labels[tail_idx], self._labels[arc.head]


def min_cost_unit_flow_cost(
    edges: List[Tuple[Node, Node, float, float]], source: Node, sink: Node
) -> Optional[float]:
    """Convenience wrapper: cost of a min-cost unit flow over an edge list.

    ``edges`` contains ``(tail, head, capacity, cost)`` tuples.  Returns
    ``None`` when a unit of flow cannot be routed at all.
    """
    network = FlowNetwork()
    network.add_node(source)
    network.add_node(sink)
    for tail, head, capacity, cost in edges:
        network.add_edge(tail, head, capacity, cost)
    try:
        return network.min_cost_unit_flow(source, sink)
    except InfeasibleFlow:
        return None
