"""Serialization helpers for graphs: adjacency dicts, edge lists, DOT text.

Benchmarks and examples render equilibrium graphs for inspection; these
helpers keep that rendering logic in one place.
"""

from __future__ import annotations

import json
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from .digraph import DiGraph, from_adjacency

Node = Hashable


def to_adjacency_dict(graph: DiGraph) -> Dict[str, List[str]]:
    """Return a JSON-friendly ``{str(node): [str(successor), ...]}`` mapping."""
    return {
        str(node): sorted(str(succ) for succ in graph.successors(node))
        for node in graph.nodes()
    }


def to_edge_list(graph: DiGraph) -> List[Tuple[Node, Node]]:
    """Return a sorted list of edges (sorted by ``repr`` for stability)."""
    return sorted(graph.edges(), key=lambda edge: (repr(edge[0]), repr(edge[1])))


def to_json(graph: DiGraph, indent: int = 2) -> str:
    """Serialise the graph's adjacency structure to a JSON string."""
    return json.dumps(to_adjacency_dict(graph), indent=indent, sort_keys=True)


def from_edge_list(edges: Iterable[Tuple[Node, Node]]) -> DiGraph:
    """Build a graph from an iterable of ``(tail, head)`` pairs."""
    graph = DiGraph()
    for tail, head in edges:
        graph.add_edge(tail, head)
    return graph


def from_adjacency_dict(adjacency: Mapping[Node, Iterable[Node]]) -> DiGraph:
    """Build a graph from a ``{node: successors}`` mapping (re-export)."""
    return from_adjacency(adjacency)


def to_dot(graph: DiGraph, name: str = "bbc", highlight: Iterable[Node] = ()) -> str:
    """Render the graph as Graphviz DOT text.

    ``highlight`` nodes are drawn with a doubled outline so equilibrium
    figures can emphasise roots / switch nodes.
    """
    highlighted = set(highlight)
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes(), key=repr):
        shape = "doublecircle" if node in highlighted else "circle"
        lines.append(f'  "{node}" [shape={shape}];')
    for tail, head in to_edge_list(graph):
        lines.append(f'  "{tail}" -> "{head}";')
    lines.append("}")
    return "\n".join(lines)


def ascii_adjacency(graph: DiGraph) -> str:
    """Render a compact one-line-per-node adjacency listing."""
    lines = []
    for node in sorted(graph.nodes(), key=repr):
        succs = ", ".join(str(s) for s in sorted(graph.successors(node), key=repr))
        lines.append(f"{node} -> [{succs}]")
    return "\n".join(lines)


def graph_fingerprint(graph: DiGraph) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Return a hashable canonical form of the graph's adjacency structure.

    Best-response walk cycle detection hashes configurations; this helper
    provides the canonical form used for that hashing.
    """
    return tuple(
        (repr(node), tuple(sorted(repr(succ) for succ in graph.successors(node))))
        for node in sorted(graph.nodes(), key=repr)
    )
