"""All-pairs shortest paths helpers.

The social-cost and diameter analyses repeatedly need distances between every
pair of nodes.  For hop-count (uniform) games we run one BFS per source; for
weighted games one Dijkstra per source.  A dense Floyd-Warshall variant is
also provided for cross-checking in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from .bfs import bfs_distances
from .digraph import DiGraph
from .dijkstra import dijkstra_distances

Node = Hashable
DistanceMatrix = Dict[Node, Dict[Node, float]]


def all_pairs_hop_distances(graph: DiGraph) -> DistanceMatrix:
    """Return hop-count distances between all pairs of nodes.

    Unreachable pairs are omitted from the inner dictionaries.
    """
    return {node: dict(bfs_distances(graph, node)) for node in graph.nodes()}


def all_pairs_weighted_distances(
    graph: DiGraph, length_attr: str = "length", default_length: float = 1
) -> DistanceMatrix:
    """Return weighted distances between all pairs of nodes."""
    return {
        node: dict(dijkstra_distances(graph, node, length_attr, default_length))
        for node in graph.nodes()
    }


def floyd_warshall(
    graph: DiGraph, length_attr: str = "length", default_length: float = 1
) -> DistanceMatrix:
    """Dense Floyd-Warshall all-pairs shortest paths.

    Quadratic memory in the number of nodes; intended for small graphs and for
    cross-checking the per-source routines in the test-suite.
    """
    nodes = list(graph.nodes())
    inf = float("inf")
    dist: DistanceMatrix = {u: {v: (0 if u == v else inf) for v in nodes} for u in nodes}
    for tail, head, data in graph.edges_with_data():
        length = data.get(length_attr, default_length)
        if length < dist[tail][head]:
            dist[tail][head] = length
    for mid in nodes:
        dist_mid = dist[mid]
        for left in nodes:
            through = dist[left][mid]
            if through == inf:
                continue
            dist_left = dist[left]
            for right in nodes:
                candidate = through + dist_mid[right]
                if candidate < dist_left[right]:
                    dist_left[right] = candidate
    # Drop unreachable entries so the output matches the per-source helpers.
    return {
        u: {v: d for v, d in row.items() if d != inf}
        for u, row in dist.items()
    }


def eccentricity(
    graph: DiGraph,
    source: Node,
    weighted: bool = False,
    length_attr: str = "length",
    default_length: float = 1,
) -> Optional[float]:
    """Return the eccentricity of ``source``: its maximum distance to any node.

    When ``weighted`` is true, edge lengths are read from ``length_attr``
    (falling back to ``default_length`` when absent), matching
    :func:`all_pairs_weighted_distances`.  Returns ``None`` when some node is
    unreachable from ``source``.
    """
    if weighted:
        dist = dijkstra_distances(graph, source, length_attr, default_length)
    else:
        dist = bfs_distances(graph, source)
    if len(dist) < graph.number_of_nodes():
        return None
    return max(dist.values()) if dist else 0


def diameter(
    graph: DiGraph,
    weighted: bool = False,
    length_attr: str = "length",
    default_length: float = 1,
) -> Optional[float]:
    """Return the directed diameter of ``graph``.

    ``length_attr`` / ``default_length`` select the edge lengths for the
    ``weighted`` variant, as in :func:`eccentricity`.  Returns ``None`` when
    the graph is not strongly connected (some pair has no connecting path).
    """
    worst: float = 0
    for node in graph.nodes():
        ecc = eccentricity(
            graph, node, weighted=weighted,
            length_attr=length_attr, default_length=default_length,
        )
        if ecc is None:
            return None
        worst = max(worst, ecc)
    return worst
