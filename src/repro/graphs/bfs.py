"""Breadth-first traversal and unit-length shortest paths.

Uniform BBC games use hop-count distances, so BFS is the work-horse of the
best-response engine; it is kept free of per-edge attribute lookups for speed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

from .digraph import DiGraph
from .errors import NodeNotFound

Node = Hashable


def bfs_order(graph: DiGraph, source: Node) -> List[Node]:
    """Return the nodes reachable from ``source`` in BFS visiting order."""
    if not graph.has_node(source):
        raise NodeNotFound(source)
    seen: Set[Node] = {source}
    order: List[Node] = [source]
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                queue.append(nxt)
    return order


def bfs_distances(graph: DiGraph, source: Node) -> Dict[Node, int]:
    """Return hop-count distances from ``source`` to every reachable node.

    The returned mapping contains only reachable nodes; ``source`` maps to 0.
    """
    if not graph.has_node(source):
        raise NodeNotFound(source)
    dist: Dict[Node, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        base = dist[node]
        for nxt in graph.successors(node):
            if nxt not in dist:
                dist[nxt] = base + 1
                queue.append(nxt)
    return dist


def bfs_distances_adjacency(
    adjacency: Mapping[Node, Iterable[Node]], source: Node
) -> Dict[Node, int]:
    """BFS distances over a plain ``{node: successors}`` mapping.

    The best-response search evaluates thousands of candidate strategies and
    works on adjacency snapshots rather than full :class:`DiGraph` objects;
    this variant avoids any graph-object overhead.
    """
    dist: Dict[Node, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        base = dist[node]
        for nxt in adjacency.get(node, ()):
            if nxt not in dist:
                dist[nxt] = base + 1
                queue.append(nxt)
    return dist


def bfs_tree(graph: DiGraph, source: Node) -> Dict[Node, Optional[Node]]:
    """Return a BFS predecessor tree rooted at ``source``.

    ``source`` maps to ``None``; every other reachable node maps to its BFS
    parent.
    """
    if not graph.has_node(source):
        raise NodeNotFound(source)
    parent: Dict[Node, Optional[Node]] = {source: None}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in graph.successors(node):
            if nxt not in parent:
                parent[nxt] = node
                queue.append(nxt)
    return parent


def reachable_set(graph: DiGraph, source: Node) -> Set[Node]:
    """Return the set of nodes reachable from ``source`` (including itself)."""
    return set(bfs_distances(graph, source))


def reach(graph: DiGraph, source: Node) -> int:
    """Return the *reach* of ``source``: the number of nodes it can reach.

    This matches the paper's definition in Section 4.3, which counts the node
    itself (an isolated node has reach 1).
    """
    return len(bfs_distances(graph, source))


def shortest_path(graph: DiGraph, source: Node, target: Node) -> Optional[List[Node]]:
    """Return one hop-minimal path from ``source`` to ``target``.

    Returns ``None`` when ``target`` is unreachable.
    """
    if not graph.has_node(target):
        raise NodeNotFound(target)
    parent = bfs_tree(graph, source)
    if target not in parent:
        return None
    path: List[Node] = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path
