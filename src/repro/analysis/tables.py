"""Plain-text table rendering for benchmark and example output.

Every benchmark regenerates its paper table/figure as a list of row dicts;
this module turns those rows into aligned ASCII tables so the harness output
can be compared with the paper at a glance (and diffed between runs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Format a cell: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (a list of dicts) as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty table)" if title else "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        rendered.append([format_value(row.get(column, ""), precision) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(cell.ljust(width) for cell, width in zip(rendered[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered[1:]:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def merge_rows(rows: Iterable[Mapping[str, object]], extra: Mapping[str, object]) -> List[Dict[str, object]]:
    """Return copies of ``rows`` with the ``extra`` key/values added to each."""
    return [{**row, **extra} for row in rows]
