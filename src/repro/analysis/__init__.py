"""Analysis layer: parameter sweeps and table rendering for the benchmarks."""

from .studies import (
    connectivity_convergence_study,
    diameter_study,
    equilibrium_census_study,
    fairness_study,
    hypercube_study,
    max_poa_study,
    max_pos_study,
    poa_spectrum_study,
    regularity_study,
    ring_path_lower_bound_study,
)
from .tables import format_table, format_value, merge_rows

__all__ = [
    "equilibrium_census_study",
    "fairness_study",
    "poa_spectrum_study",
    "diameter_study",
    "regularity_study",
    "hypercube_study",
    "connectivity_convergence_study",
    "ring_path_lower_bound_study",
    "max_poa_study",
    "max_pos_study",
    "format_table",
    "format_value",
    "merge_rows",
]
