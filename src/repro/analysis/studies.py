"""Parameter-sweep studies behind the paper's theorems.

Each function regenerates the data for one claim of the paper as a list of
row dictionaries; the benchmarks render them with
:func:`repro.analysis.tables.format_table` and EXPERIMENTS.md records a
snapshot of the output.

Every grid study is a map over independent parameter cells, so each one
accepts ``processes`` and fans the cells out through
:func:`repro.experiments.parallel_map` (module-level cell workers, plain
picklable parameters, rows returned in grid order).  ``processes=1`` — the
default — is a deterministic serial loop; any other count produces the
identical rows.  Each study also accepts ``journal`` (a
:class:`~repro.reliability.CheckpointJournal` or a path), passed through to
``parallel_map`` so a killed grid resumes from its completed cells.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..constructions import (
    build_forest_of_willows,
    build_max_distance_equilibrium,
    chord_like_offsets,
    hypercube_cayley,
    is_cayley_stable,
    offset_graph,
    theorem5_deviation,
)
from ..constructions.ring_path import build_ring_with_path
from ..core import (
    Objective,
    UniformBBCGame,
    equilibrium_report,
    fairness_report,
    lemma1_additive_bound,
    lemma1_multiplicative_bound,
    random_profile,
    swap_stability_report,
    theorem4_poa_lower_bound,
    theorem8_max_poa_lower_bound,
)
from ..dynamics import probes_to_strong_connectivity
from ..experiments.parallel import parallel_map
from ..graphs import diameter

Row = Dict[str, object]


# --------------------------------------------------------------------------- #
# Lemma 1: fairness of stable graphs
# --------------------------------------------------------------------------- #
def _fairness_cell(args) -> Row:
    k, height, tail, exact = args
    forest = build_forest_of_willows(k, height, tail)
    game, profile = forest.game, forest.profile
    report = fairness_report(game, profile)
    uniform = UniformBBCGame(max(game.num_nodes, 2), max(k, 1)) if k >= 1 else None
    additive_bound = lemma1_additive_bound(uniform) if uniform else float("nan")
    multiplicative_bound = lemma1_multiplicative_bound(uniform) if uniform else float("nan")
    if exact:
        stable = equilibrium_report(game, profile).is_equilibrium
    else:
        stable = swap_stability_report(game, profile).is_equilibrium
    return {
        "k": k,
        "h": height,
        "l": tail,
        "n": game.num_nodes,
        "stable": stable,
        "min_cost": report.min_cost,
        "max_cost": report.max_cost,
        "additive_gap": report.additive_gap,
        "additive_bound": additive_bound,
        "cost_ratio": report.ratio,
        "ratio_bound": multiplicative_bound,
        "within_additive_bound": report.additive_gap <= additive_bound,
    }


def fairness_study(
    parameter_grid: Sequence[tuple], *, exact: bool = True, processes: int = 1, journal=None
) -> List[Row]:
    """Fairness of Forest-of-Willows equilibria for each ``(k, h, l)`` triple.

    Lemma 1 bounds the cost spread of *any* stable graph: additively by
    ``n + n·floor(log_k n)`` and multiplicatively by ``2 + 1/k + o(1)``.  The
    study verifies both on explicit stable graphs.
    """
    cells = [(k, height, tail, exact) for k, height, tail in parameter_grid]
    return parallel_map(_fairness_cell, cells, processes=processes, journal=journal)


# --------------------------------------------------------------------------- #
# Theorem 4: the spectrum of stable graphs and the PoA / PoS estimates
# --------------------------------------------------------------------------- #
def _poa_spectrum_cell(args) -> Row:
    k, height, tail = args
    forest = build_forest_of_willows(k, height, tail)
    game = forest.game
    n = game.num_nodes
    social = forest.social_cost()
    optimum = game.minimum_possible_social_cost()
    return {
        "k": k,
        "h": height,
        "l": tail,
        "n": n,
        "social_cost": social,
        "optimum_lower_bound": optimum,
        "cost_over_optimum": social / optimum,
        "theorem4_poa_scale": theorem4_poa_lower_bound(n, k) if k >= 2 else float("nan"),
        "satisfies_definition": forest.parameters.satisfies_definition_constraints(),
    }


def poa_spectrum_study(
    k: int, height: int, tail_lengths: Sequence[int], *, processes: int = 1, journal=None
) -> List[Row]:
    """Social cost of willow equilibria versus the analytic optimum.

    Sweeping the tail length from 0 upwards regenerates the Theorem 4
    spectrum: the price of stability stays Θ(1) (the ``l = 0`` row) while the
    worst stable graph's cost grows like ``n² sqrt(n/k)``.
    """
    cells = [(k, height, tail) for tail in tail_lengths]
    return parallel_map(_poa_spectrum_cell, cells, processes=processes, journal=journal)


# --------------------------------------------------------------------------- #
# Lemma 7: diameter of stable graphs
# --------------------------------------------------------------------------- #
def _diameter_cell(args) -> Row:
    k, height, tail = args
    forest = build_forest_of_willows(k, height, tail)
    graph = forest.profile.graph()
    measured = diameter(graph)
    n = forest.num_nodes
    bound_scale = math.sqrt(n) * (math.log(n, k) if k >= 2 else n)
    return {
        "k": k,
        "h": height,
        "l": tail,
        "n": n,
        "diameter": measured,
        "sqrt_n_log_k_n": bound_scale,
        "ratio": (measured / bound_scale) if measured is not None else float("nan"),
    }


def diameter_study(parameter_grid: Sequence[tuple], *, processes: int = 1, journal=None) -> List[Row]:
    """Diameter of willow equilibria versus the ``O(sqrt(n)·log_k n)`` bound."""
    return parallel_map(_diameter_cell, list(parameter_grid), processes=processes, journal=journal)


# --------------------------------------------------------------------------- #
# Theorem 5 / Corollary 1 / Lemma 8: (in)stability of regular graphs
# --------------------------------------------------------------------------- #
def _regularity_cell(args) -> Row:
    n, k = args
    offsets = chord_like_offsets(n, k)
    cayley = offset_graph(n, offsets)
    deviations = theorem5_deviation(cayley)
    best_improvement = max((d.improvement for d in deviations), default=0.0)
    return {
        "n": n,
        "k": k,
        "offsets": str(list(offsets)),
        "stable": is_cayley_stable(cayley),
        "thm5_best_improvement": best_improvement,
        "thm5_deviation_improves": best_improvement > 1e-9,
    }


def regularity_study(sizes: Sequence[int], k: int, *, processes: int = 1, journal=None) -> List[Row]:
    """Stability of Chord-like offset (Abelian Cayley) graphs of degree ``k``."""
    return parallel_map(_regularity_cell, [(n, k) for n in sizes], processes=processes, journal=journal)


def _hypercube_cell(dimension: int) -> Row:
    cayley = hypercube_cayley(dimension)
    deviations = theorem5_deviation(cayley)
    best_improvement = max((d.improvement for d in deviations), default=0.0)
    return {
        "dimension": dimension,
        "n": 2 ** dimension,
        "k": dimension,
        "stable": is_cayley_stable(cayley),
        "thm5_best_improvement": best_improvement,
    }


def hypercube_study(dimensions: Sequence[int], *, processes: int = 1, journal=None) -> List[Row]:
    """Corollary 1: hypercubes are unstable for ``d > 4`` (and small ones may not be)."""
    return parallel_map(_hypercube_cell, list(dimensions), processes=processes, journal=journal)


# --------------------------------------------------------------------------- #
# Theorem 6: convergence to strong connectivity
# --------------------------------------------------------------------------- #
def _connectivity_cell(args) -> Row:
    n, k, seeds = args
    game = UniformBBCGame(n, k)
    worst = 0
    for seed in seeds:
        profile = random_profile(game, seed=seed)
        probes = probes_to_strong_connectivity(game, profile)
        worst = max(worst, probes if probes is not None else n * n + 1)
    return {
        "n": n,
        "k": k,
        "worst_probes_to_connectivity": worst,
        "n_squared": n * n,
        "within_bound": worst <= n * n,
    }


def connectivity_convergence_study(
    sizes: Sequence[int],
    k: int,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    processes: int = 1,
    journal=None,
) -> List[Row]:
    """Probes to strong connectivity from random starts, versus the n² bound."""
    cells = [(n, k, tuple(seeds)) for n in sizes]
    return parallel_map(_connectivity_cell, cells, processes=processes, journal=journal)


def _ring_path_cell(args) -> Row:
    ring_size, path_size = args
    instance = build_ring_with_path(ring_size, path_size)
    probes = probes_to_strong_connectivity(
        instance.game, instance.profile, round_order=instance.round_order
    )
    n = instance.num_nodes
    return {
        "ring": ring_size,
        "path": path_size,
        "n": n,
        "probes_to_connectivity": probes,
        "n_squared": n * n,
        "quadratic_fraction": (probes / (n * n)) if probes else 0.0,
    }


def ring_path_lower_bound_study(
    sizes: Sequence[tuple], *, processes: int = 1, journal=None
) -> List[Row]:
    """Probes to connectivity from the adversarial ring+path starts (Ω(n²))."""
    return parallel_map(_ring_path_cell, list(sizes), processes=processes, journal=journal)


# --------------------------------------------------------------------------- #
# Theorem 8 / 9: BBC-max price of anarchy and stability
# --------------------------------------------------------------------------- #
def _max_poa_cell(args) -> Row:
    k, tail_length = args
    instance = build_max_distance_equilibrium(k, tail_length)
    game = instance.game
    n = game.num_nodes
    social = instance.social_cost()
    optimum = game.minimum_possible_social_cost()
    return {
        "k": k,
        "tail_length": tail_length,
        "n": n,
        "social_cost": social,
        "optimum_lower_bound": optimum,
        "poa_estimate": social / optimum,
        "theorem8_scale": theorem8_max_poa_lower_bound(n, k),
    }


def max_poa_study(parameters: Sequence[tuple], *, processes: int = 1, journal=None) -> List[Row]:
    """Social cost of the Figure 6 BBC-max equilibria versus the optimum scale."""
    return parallel_map(_max_poa_cell, list(parameters), processes=processes, journal=journal)


def _max_pos_cell(args) -> Row:
    k, height = args
    forest = build_forest_of_willows(k, height, 0, objective=Objective.MAX)
    game = forest.game
    n = game.num_nodes
    social = forest.social_cost()
    optimum = game.minimum_possible_social_cost()
    return {
        "k": k,
        "h": height,
        "n": n,
        "social_cost": social,
        "optimum_lower_bound": optimum,
        "pos_estimate": social / optimum,
    }


def max_pos_study(parameter_grid: Sequence[tuple], *, processes: int = 1, journal=None) -> List[Row]:
    """Theorem 9: tail-free willow forests are near-optimal under the max objective."""
    return parallel_map(_max_pos_cell, list(parameter_grid), processes=processes, journal=journal)


# --------------------------------------------------------------------------- #
# Theorem 2 context: exhaustive equilibrium census of small uniform games
# --------------------------------------------------------------------------- #
def equilibrium_census_study(
    parameter_grid: Sequence[tuple],
    *,
    objective: Objective = Objective.SUM,
    processes: int = 1,
    journal_dir=None,
) -> List[Row]:
    """Count every pure equilibrium of small ``(n, k)``-uniform games.

    Theorem 2 makes pure-NE *existence* NP-hard in general, so the census
    brute-forces the question where brute force is honest: the full Gray
    sweep over all budget-maximal profiles, counting equilibria rather than
    stopping at the first.

    Unlike the grid studies above, the dominant axis here is the *profile
    space* of each cell, not the cell count — so ``processes`` shards each
    cell's Gray sweep through
    :func:`~repro.core.exhaustive_equilibrium_search`'s ``processes=``
    (contiguous rank subranges over one shared payload) instead of fanning
    the cells out, and the cells themselves run in order in the parent.
    Rows are bit-identical at any worker count.  ``journal_dir`` (a
    directory path) checkpoints each cell's sweep into its own journal file
    ``census-n{n}-k{k}.json``, so a killed census resumes per cell *and*
    per checkpoint block within the interrupted cell.
    """
    import os

    from ..core import exhaustive_equilibrium_search

    rows: List[Row] = []
    for n, k in parameter_grid:
        game = UniformBBCGame(n, k, objective=objective)
        journal = None
        if journal_dir is not None:
            os.makedirs(str(journal_dir), exist_ok=True)
            journal = os.path.join(str(journal_dir), f"census-n{n}-k{k}.json")
        summary = exhaustive_equilibrium_search(
            game,
            stop_at_first=False,
            processes=processes,
            journal=journal,
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "profiles": summary.profiles_examined,
                "equilibria": summary.equilibria_found,
                "equilibrium_fraction": (
                    summary.equilibria_found / summary.profiles_examined
                    if summary.profiles_examined
                    else 0.0
                ),
                "has_equilibrium": summary.has_equilibrium,
                "exhausted": summary.exhausted,
            }
        )
    return rows
