"""Sweep evaluation: Gray-code profile enumeration + incremental Nash checks.

The repo's heavy workloads are *sweeps*: exhaustive / sampled equilibrium
searches and the Figure 4 completion scan evaluate thousands of profiles that
differ from their neighbours in a single node's strategy.  This module makes
that locality explicit:

* :func:`gray_code_profiles` enumerates the cartesian product of per-node
  strategy sets in mixed-radix *reflected Gray order*, so consecutive
  profiles differ in exactly one node.  Every :meth:`CostEngine.sync` along
  the sweep is then a single-node local sync and the version-stamped
  ``d_{G-u}`` rows of the moving node stay hot.

* :class:`SweepEvaluator` holds one :class:`~repro.engine.CostEngine` and
  answers ``is_nash(profile)`` with two memoisation layers keyed by a node's
  *environment* (the strategies of everyone else, which is all a deviation
  check depends on):

  - ``B(u, env)`` — the exact minimum cost node ``u`` can reach over its
    budget-maximal strategies against ``env``.  Along a Gray sweep the
    moving node's environment is unchanged, so its stability under a new
    strategy is one cached-row scoring against the memoised minimum — no
    SSSP, no re-enumeration;
  - ``verdict(u, env, strategy)`` — the final stable/unstable bit.  Each
    environment of ``u`` recurs once per strategy of ``u`` across a full
    product sweep, so re-visits cost one dict probe.

  Verdicts are **bit-identical** to the reference path
  (:func:`repro.core.is_pure_nash` with ``engine=False``): the full probe
  replays :func:`~repro.core.best_response`'s exact chained
  ``cost < best - 1e-9`` update rule, and the memoised shortcut falls back
  to a full probe inside the one-epsilon window where the pure minimum
  cannot decide the chained outcome.

``tests/test_sweep.py`` pins the Gray single-edit/coverage invariants and
search-summary parity; ``scripts/bench_speed.py --sweep`` tracks the speedup.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SearchSpaceTooLarge
from ..core.game import BBCGame, DEFAULT_ENUMERATION_LIMIT
from ..core.profile import StrategyProfile, Strategy
from .cost_engine import CostEngine

Node = Hashable

#: The epsilon of ``best_response``'s chained ``cost < best - eps`` update;
#: the memoised shortcut must replicate it exactly to stay bit-identical.
_CHAIN_EPS = 1e-9

#: Default cap on the number of profiles a Gray sweep may range over
#: (mirrors :data:`repro.core.search.DEFAULT_PROFILE_LIMIT`).
DEFAULT_SWEEP_LIMIT = 5_000_000

#: Default bound on memoised entries (environment minima + verdict bits)
#: across all nodes; exceeding it drops every memo and starts over.
DEFAULT_MEMO_ENTRY_LIMIT = 1_000_000


def _resolve_gray_space(
    game: BBCGame,
    sets: Optional[Mapping[Node, Sequence[Strategy]]],
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]],
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]],
    limit: float,
):
    """Resolve the per-node strategy sets and the Gray digit layout.

    Returns ``(nodes, resolved, digit_nodes, radix, size)`` where
    ``digit_nodes`` are the multi-option nodes in digit order (digit 0 = the
    last such node in declaration order = fastest-varying, mirroring
    ``itertools.product``) and ``size`` is the exact product cardinality (0
    when any node's set is empty).  Raises
    :class:`~repro.core.errors.SearchSpaceTooLarge` past ``limit``.
    """
    from ..core.search import candidate_strategy_sets

    if sets is not None:
        if candidate_strategies is not None:
            raise ValueError("pass either `sets` or `candidate_strategies`, not both")
        candidate_strategies = sets
    resolved = candidate_strategy_sets(game, candidate_strategies, candidate_targets)

    nodes = list(game.nodes)
    size = 1
    for node in nodes:
        size *= max(1, len(resolved[node]))
    if size > limit:
        raise SearchSpaceTooLarge("Gray-code profile enumeration", size, limit)
    if any(not resolved[node] for node in nodes):
        size = 0
    digit_nodes = [node for node in reversed(nodes) if len(resolved[node]) >= 2]
    radix = [len(resolved[node]) for node in digit_nodes]
    return nodes, resolved, digit_nodes, radix, size


def _gray_digits(rank: int, radix: List[int]) -> List[int]:
    """Return the reflected-Gray digit vector of ``rank`` (digit 0 fastest).

    In mixed-radix reflected Gray order the plain counter digits of ``rank``
    are ``b_j = (rank // prod(radix[:j])) % radix[j]``, and digit ``j``
    sweeps its range forward or backward depending on how many full passes
    it has completed — the quotient ``rank // prod(radix[:j+1])``.  Even
    quotient: the Gray digit is ``b_j`` itself; odd: the reflection
    ``radix[j]-1-b_j``.  That alternation is exactly what makes consecutive
    ranks differ in a single digit.
    """
    gray = []
    quotient = rank
    for m in radix:
        quotient, b = divmod(quotient, m)
        gray.append(b if quotient % 2 == 0 else m - 1 - b)
    return gray


def profile_at(
    game: BBCGame,
    rank: int,
    sets: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    *,
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]] = None,
    limit: float = DEFAULT_SWEEP_LIMIT,
) -> StrategyProfile:
    """Return the ``rank``-th profile of :func:`gray_code_profiles` directly.

    Seeks the mixed-radix reflected Gray word in O(nodes) without enumerating
    the ``rank`` profiles before it — the primitive that lets sharded sweeps
    hand each worker a contiguous subrange (``start=`` below) of the exact
    serial order.  Raises ``IndexError`` outside ``[0, size)``.
    """
    nodes, resolved, digit_nodes, radix, size = _resolve_gray_space(
        game, sets, candidate_strategies, candidate_targets, limit
    )
    if not 0 <= rank < size:
        raise IndexError(f"profile rank {rank} out of range [0, {size})")
    current: Dict[Node, Strategy] = {node: resolved[node][0] for node in nodes}
    for node, digit in zip(digit_nodes, _gray_digits(rank, radix)):
        current[node] = resolved[node][digit]
    return StrategyProfile(current)


def gray_code_profiles(
    game: BBCGame,
    sets: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    *,
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]] = None,
    limit: float = DEFAULT_SWEEP_LIMIT,
    start: int = 0,
    stop: Optional[int] = None,
) -> Iterator[StrategyProfile]:
    """Yield every profile over the per-node strategy sets in Gray order.

    Consecutive profiles differ in **exactly one** node's strategy (mixed-radix
    reflected Gray order, Knuth 7.2.1.1 Algorithm H), and the full cartesian
    product is covered exactly once.  ``sets`` explicitly fixes the strategy
    list of the nodes it mentions (shorthand for ``candidate_strategies``);
    nodes covered by neither fall back to all budget-maximal strategies, like
    :func:`repro.core.enumerate_profiles`.  The last node in declaration
    order varies fastest, mirroring ``itertools.product``.

    ``start``/``stop`` select the half-open rank subrange ``[start, stop)``
    of that same order (``stop=None`` = the end): the first profile is
    seeked in O(nodes) via :func:`profile_at`'s digit arithmetic and the
    rest follow incrementally, so a sharded sweep over ``k`` contiguous
    subranges yields exactly the serial stream, partitioned — each
    subrange still steps one node at a time internally.

    The search-space size is estimated up front; exceeding ``limit`` raises
    :class:`~repro.core.errors.SearchSpaceTooLarge`.
    """
    nodes, resolved, digit_nodes, radix, size = _resolve_gray_space(
        game, sets, candidate_strategies, candidate_targets, limit
    )
    if start < 0 or (stop is not None and stop < start):
        raise ValueError(f"invalid Gray subrange [{start}, {stop})")
    hi = size if stop is None else min(stop, size)
    if size == 0 or start >= hi:
        return  # empty product or empty subrange

    current: Dict[Node, Strategy] = {node: resolved[node][0] for node in nodes}
    m = len(digit_nodes)

    if start == 0 and hi == size:
        # Full enumeration: Knuth 7.2.1.1 Algorithm H, loopless per step.
        yield StrategyProfile(current)
        if m == 0:
            return
        value = [0] * m
        direction = [1] * m
        focus = list(range(m + 1))
        while True:
            j = focus[0]
            focus[0] = 0
            if j == m:
                return
            value[j] += direction[j]
            if value[j] == 0 or value[j] == radix[j] - 1:
                direction[j] = -direction[j]
                focus[j] = focus[j + 1]
                focus[j + 1] = j + 1
            node = digit_nodes[j]
            current[node] = resolved[node][value[j]]
            yield StrategyProfile(current)

    # Subrange: seek the Gray word of `start` in closed form, then advance a
    # plain mixed-radix counter; between consecutive ranks only the digit
    # where the counter's carry stops changes in the Gray word (reflection
    # swallows the rolled-over lower digits), so each step is one strategy
    # edit — the same single-edit stream a worker's local engine wants.
    b = [0] * m
    remaining = start
    for j in range(m):
        remaining, b[j] = divmod(remaining, radix[j])
    for node, digit in zip(digit_nodes, _gray_digits(start, radix)):
        current[node] = resolved[node][digit]
    yield StrategyProfile(current)
    prefix = [1]
    for m_j in radix:
        prefix.append(prefix[-1] * m_j)
    for rank in range(start + 1, hi):
        j = 0
        while b[j] == radix[j] - 1:
            b[j] = 0
            j += 1
        b[j] += 1
        digit = (
            b[j]
            if (rank // prefix[j + 1]) % 2 == 0
            else radix[j] - 1 - b[j]
        )
        node = digit_nodes[j]
        current[node] = resolved[node][digit]
        yield StrategyProfile(current)


class SweepEvaluator:
    """Incremental pure-Nash checking over a stream of related profiles.

    Bound to one game and one :class:`CostEngine`; ``is_nash(profile)`` diffs
    each profile against the previous one, checks the changed node first (its
    environment — everything a deviation check depends on — is untouched, so
    its memoised best cost usually decides instantly), and memoises per-node
    results keyed by environment so that profiles revisiting a known
    environment never re-probe.  Verdicts are bit-identical to
    ``is_pure_nash(game, profile, engine=False)``; only the work is different.

    The evaluator assumes the profiles it is fed are feasible for the game
    (true for anything produced by :func:`gray_code_profiles` or
    :func:`repro.core.random_profile`); it does not re-validate budgets.
    """

    def __init__(
        self,
        game: BBCGame,
        *,
        tolerance: float = 1e-9,
        deviation_limit: float = DEFAULT_ENUMERATION_LIMIT,
        engine=None,
        backend: Optional[str] = None,
        memo_entry_limit: int = DEFAULT_MEMO_ENTRY_LIMIT,
    ) -> None:
        from . import resolve_engine

        if backend is not None:
            # The traversal-backend selector mirrors CostEngine's tri-state
            # idiom; it only makes sense when this evaluator owns the engine
            # (an explicit engine already fixed its backend at construction).
            if engine is not None:
                raise ValueError(
                    "pass either an explicit engine or backend=..., not both"
                )
            engine = CostEngine(game, backend=backend)
        resolved = resolve_engine(game, engine)
        if resolved is None:
            raise ValueError(
                "SweepEvaluator requires the flat-array engine; pass engine=None "
                "for the shared per-game engine or an explicit CostEngine "
                "(engine=False selects the reference path at the search entry "
                "points, not here)"
            )
        self.game = game
        self.engine: CostEngine = resolved
        self.tolerance = float(tolerance)
        self.deviation_limit = deviation_limit
        # Static game facts come off the engine's frozen snapshot, not its
        # internals — the same read path pool workers use over an attached
        # shared snapshot.
        self.labels: Tuple[Node, ...] = resolved.snapshot().labels
        self._n = len(self.labels)
        self._strategies: Optional[List[FrozenSet[Node]]] = None
        self._last_verdict: Optional[bool] = None
        # per node: environment key -> [pure minimum, {strategy: verdict}]
        self._memo: List[Dict[tuple, list]] = [dict() for _ in range(self._n)]
        self._memo_entries = 0
        self._memo_entry_limit = memo_entry_limit
        #: Observability: how each check was decided.
        self.stats: Dict[str, int] = {
            "checks": 0,
            "noop_checks": 0,
            "verdict_hits": 0,
            "memoised_probes": 0,
            "full_probes": 0,
            "ambiguous_fallbacks": 0,
            "memo_resets": 0,
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def is_nash(self, profile: StrategyProfile) -> bool:
        """Return whether ``profile`` is a pure Nash equilibrium of the game.

        Exactly the verdict of ``is_pure_nash(game, profile, engine=False)``
        with this evaluator's tolerance and deviation limit.
        """
        labels = self.labels
        strategies = [profile.strategy(label) for label in labels]
        self.stats["checks"] += 1
        previous = self._strategies
        if previous is not None:
            changed = [u for u in range(self._n) if strategies[u] != previous[u]]
            if not changed and self._last_verdict is not None:
                self.stats["noop_checks"] += 1
                return self._last_verdict
        else:
            changed = None

        # The moving node keeps its environment, and every row its check
        # reads is masked at the node itself (``d_{G-u}`` never contains
        # ``u``'s links) — so as long as the engine's snapshot differs from
        # the new profile *only* at the mover, the mover can be probed
        # against the existing snapshot without a sync.  Along a Gray run of
        # one node's strategies, an unstable mover therefore rejects the
        # whole profile with no sync and no CSR rebuild at all.
        mover: Optional[int] = None
        if changed is not None and len(changed) == 1:
            mover = changed[0]
            snapshot = self.engine.snapshot().label_strategies
            if snapshot is not None and all(
                u == mover or strategies[u] == snapshot[u] for u in range(self._n)
            ):
                if not self._node_stable(mover, strategies):
                    self._strategies = strategies
                    self._last_verdict = False
                    return False
                # Mover stable: the remaining nodes need the real snapshot.
                self.engine.sync(profile)
                self._strategies = strategies
                return self._check_rest(strategies, skip=mover)

        self.engine.sync(profile)
        self._strategies = strategies
        if mover is not None:
            # Check the mover first: it is both the cheapest node to decide
            # (memoised best cost, preserved rows) and, in a sweep, the
            # likeliest source of instability.
            if not self._node_stable(mover, strategies):
                self._last_verdict = False
                return False
            return self._check_rest(strategies, skip=mover)
        return self._check_rest(strategies, skip=None)

    def _check_rest(self, strategies: List[FrozenSet[Node]], skip: Optional[int]) -> bool:
        verdict = True
        for u in range(self._n):
            if u == skip:
                continue
            if not self._node_stable(u, strategies):
                verdict = False
                break
        self._last_verdict = verdict
        return verdict

    # ------------------------------------------------------------------ #
    # Per-node checks
    # ------------------------------------------------------------------ #
    def _node_stable(self, u: int, strategies: List[FrozenSet[Node]]) -> bool:
        env_key = tuple(strategies[:u] + strategies[u + 1 :])
        strategy = strategies[u]
        memo = self._memo[u]
        entry = memo.get(env_key)
        if entry is None:
            verdict, pure = self._full_probe(u, strategy)
            self.stats["full_probes"] += 1
            memo[env_key] = [pure, {strategy: verdict}]
            self._account_memo(2)
            return verdict
        pure, verdicts = entry
        cached = verdicts.get(strategy)
        if cached is not None:
            self.stats["verdict_hits"] += 1
            return cached
        # Environment unchanged since `pure` was memoised.  The reference's
        # chained best lands within _CHAIN_EPS above the pure minimum, so the
        # margin decides everywhere except inside that one-epsilon window.
        current = self._scorer(u)(strategy)
        margin = current - pure
        if margin <= self.tolerance:
            verdict = True
            self.stats["memoised_probes"] += 1
        elif margin > self.tolerance + _CHAIN_EPS:
            verdict = False
            self.stats["memoised_probes"] += 1
        else:
            verdict, _ = self._full_probe(u, strategy)
            self.stats["full_probes"] += 1
            self.stats["ambiguous_fallbacks"] += 1
        verdicts[strategy] = verdict
        self._account_memo(1)
        return verdict

    def _scorer_obj(self, u: int):
        return self.engine.scorer(self.labels[u])

    @staticmethod
    def _score_callable(scorer):
        return scorer.score_ints if scorer.identity_labels else scorer.score

    def _scorer(self, u: int):
        return self._score_callable(self._scorer_obj(u))

    def _full_probe(self, u: int, strategy: FrozenSet[Node]) -> Tuple[bool, float]:
        """Probe node ``u`` exactly like the reference, harvesting the memo.

        One enumeration pass tracks both the *chained* best (seeded at the
        current cost, updated only when ``cost < best - 1e-9`` — the exact
        :func:`~repro.core.best_response` semantics the verdict needs) and the
        *pure* minimum (what later profiles with the same environment compare
        against).  On exact-sum games the pass is batch-scored through
        :meth:`~repro.engine.cost_engine.StrategyScorer.score_combinations`,
        which is bit-identical to the loop.
        """
        from ..core.best_response import batched_combination_costs, chained_best_from_vector

        label = self.labels[u]
        scorer = self._scorer_obj(u)
        score = self._score_callable(scorer)
        current = score(strategy)
        chained = current
        pure = math.inf
        batch = batched_combination_costs(
            self.game, scorer, label, None, self.deviation_limit
        )
        if batch is not None:
            _, _, costs = batch
            if len(costs):
                chained, _ = chained_best_from_vector(costs, chained)
                pure = float(costs.min())
        else:
            for candidate in self.game.feasible_strategies(
                label, maximal_only=True, limit=self.deviation_limit
            ):
                cost = score(candidate)
                if cost < chained - _CHAIN_EPS:
                    chained = cost
                if cost < pure:
                    pure = cost
        verdict = (current - chained) <= self.tolerance
        return verdict, pure

    def _account_memo(self, added: int) -> None:
        self._memo_entries += added
        if self._memo_entries > self._memo_entry_limit:
            for memo in self._memo:
                memo.clear()
            self._memo_entries = 0
            self.stats["memo_resets"] += 1


__all__ = [
    "DEFAULT_SWEEP_LIMIT",
    "SweepEvaluator",
    "gray_code_profiles",
    "profile_at",
]
