"""Immutable read-view of a :class:`~repro.engine.cost_engine.CostEngine`.

The engine is two things tangled together: a *mutable* cache/repair machine
(row caches, chunk ledger, edit log) and the *read-only state of one profile
version* that every traversal actually consumes — the CSR of the bought
graph, aligned edge lengths, the synced strategies, and the static game
tables.  :class:`EngineSnapshot` extracts the second half into a frozen
value object built once per :meth:`~repro.engine.cost_engine.CostEngine.sync`
(see the "Snapshot ownership and lifetime" contract in
:mod:`repro.engine`):

* ``CostEngine._rebuild_csr`` is the only writer; it constructs a *fresh*
  snapshot per version and never mutates a published one.  The CSR lists and
  array views inside a snapshot are therefore stable for its lifetime even
  while the engine syncs onward.
* Kernels and the sweep layer read through :func:`csr_of` /
  :func:`csr_arrays_of` and the snapshot's fields instead of reaching into
  engine internals, so a reader holding a snapshot is indifferent to who
  owns the caches.
* The static side (link lengths, target rows, weights, licence flags) lives
  in the embedded :class:`~repro.engine.indexed.IndexedGame`, whose rows are
  read-only repo-wide — aliasing them here is free.

The second job of this module is moving snapshots *between processes*:
:func:`pack_payload` / :func:`unpack_payload` serialise an arbitrary
picklable object plus named numpy arrays into one contiguous byte layout
(8-byte big-endian header length, pickled header, 64-byte-aligned raw array
blocks) that drops straight into a ``multiprocessing.shared_memory`` buffer.
On the full dependency leg the arrays come back as zero-copy read-only numpy
views over the shared segment; the minimal leg packs no arrays and rides the
pickled header alone.  :func:`export_tables` / :func:`restore_tables` apply
that machinery to an :class:`IndexedGame`'s static tables so pool workers
adopt the parent's probed rows instead of re-probing ``n^2`` node pairs
(uniform games ship a compact marker — their tables rebuild in ``O(n)``).

Float safety: every float crossing the byte boundary travels as an IEEE-754
float64 (numpy ``tobytes``/``frombuffer`` or pickle), both of which are
bit-exact round trips — adopted tables are *identical* to the parent's, so
sharded results can be compared bitwise against serial references.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

try:  # Optional array backend; the pickled-header path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the minimal CI leg
    _np = None

#: Byte alignment of raw array blocks inside a packed payload; generous
#: enough for any numpy dtype and for cache-line-friendly worker reads.
PAYLOAD_ALIGN = 64

_HEADER_LEN = struct.Struct(">Q")


@dataclass(frozen=True, eq=False)
class EngineSnapshot:
    """Everything a traversal or sweep needs to *read*, frozen per version.

    Instances are value objects: the engine publishes a new one on every
    observed profile change and never mutates an old one.  ``version`` is the
    engine's profile version at build time; a reader that cached derived
    state can compare versions instead of re-diffing strategies.

    The CSR fields mirror the engine's traversal state exactly:

    * ``indptr`` / ``indices`` — the bought graph in CSR form (list space);
    * ``edge_lengths`` — CSR-aligned arc lengths, or ``None`` for
      uniform-length games (hop kernels scale by ``unit_length`` instead);
    * ``*_np`` — int64/float64 array mirrors when the numpy backend is
      active (``None`` otherwise), including the exact-int64 length view
      when the integral-lengths licence holds;
    * ``strategies`` / ``label_strategies`` — the synced profile per dense
      node id, in int and label space (``None`` before the first sync).

    Static game tables (lengths, targets, weights, penalty, licence flags)
    live in ``indexed`` and are exposed through read-through properties so
    call sites need one object, not two.
    """

    version: int
    indexed: Any  # IndexedGame (static, read-only tables)
    indptr: List[int]
    indices: List[int]
    edge_lengths: Optional[List[float]] = None
    indptr_np: Any = None
    indices_np: Any = None
    edge_lengths_np: Any = None
    edge_lengths_exact_np: Any = None
    strategies: Optional[Tuple[frozenset, ...]] = None
    label_strategies: Optional[Tuple[frozenset, ...]] = None

    # ------------------------------------------------------------------ #
    # Static read-throughs (one object for readers, not two)
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self.indexed.n

    @property
    def labels(self):
        return self.indexed.labels

    @property
    def penalty(self) -> float:
        return self.indexed.penalty

    @property
    def unit_length(self) -> float:
        return self.indexed.unit_length

    @property
    def uniform_lengths(self) -> bool:
        return self.indexed.uniform_lengths

    @property
    def integral_lengths(self) -> bool:
        return self.indexed.integral_lengths

    @property
    def length_rows(self):
        return self.indexed.length_rows

    @property
    def target_rows(self):
        return self.indexed.target_rows

    @property
    def target_weight_rows(self):
        return self.indexed.target_weight_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        synced = self.strategies is not None
        return (
            f"EngineSnapshot(version={self.version}, n={self.indexed.n}, "
            f"synced={synced})"
        )


def csr_of(snapshot: EngineSnapshot):
    """Return ``(indptr, indices, edge_lengths)`` for the list kernels.

    ``edge_lengths`` is ``None`` for uniform-length games — exactly the
    contract of :mod:`repro.graphs.int_kernels`' hop kernels.
    """
    return snapshot.indptr, snapshot.indices, snapshot.edge_lengths


def csr_arrays_of(snapshot: EngineSnapshot):
    """Return ``(indptr, indices, lengths, exact_lengths)`` array views.

    The array-kernel counterpart of :func:`csr_of`; all four are ``None``
    when the snapshot was built without the numpy backend.
    """
    return (
        snapshot.indptr_np,
        snapshot.indices_np,
        snapshot.edge_lengths_np,
        snapshot.edge_lengths_exact_np,
    )


# ---------------------------------------------------------------------- #
# Byte packing: one contiguous layout for shared segments and inline bytes
# ---------------------------------------------------------------------- #
def _aligned(offset: int) -> int:
    return offset + (-offset) % PAYLOAD_ALIGN


def pack_payload(obj: Any, arrays: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialise ``obj`` plus named numpy ``arrays`` into one byte string.

    Layout: ``[u64 header length][pickled header][pad][array blocks]`` with
    every array block aligned to :data:`PAYLOAD_ALIGN` bytes.  The header
    records each array's dtype, shape, and offset *relative to the aligned
    region start*, so :func:`unpack_payload` can rebuild zero-copy views
    over any buffer holding these bytes (a ``shared_memory`` segment, an
    mmap, or the returned string itself).  ``arrays`` requires numpy; pass
    none on the minimal leg and carry lists inside ``obj`` instead.
    """
    items: List[Tuple[str, str, Tuple[int, ...], int, int]] = []
    blocks: List[bytes] = []
    offset = 0
    for name, array in sorted((arrays or {}).items()):
        if _np is None:
            raise RuntimeError("pack_payload(arrays=...) requires numpy")
        data = _np.ascontiguousarray(array).tobytes()
        offset = _aligned(offset)
        items.append((name, str(array.dtype), tuple(array.shape), offset, len(data)))
        blocks.append(data)
        offset += len(data)
    header = pickle.dumps(
        {"obj": obj, "arrays": items}, protocol=pickle.HIGHEST_PROTOCOL
    )
    out = bytearray(_HEADER_LEN.pack(len(header)))
    out += header
    out += b"\x00" * (_aligned(len(out)) - len(out))
    for data in blocks:
        out += b"\x00" * (_aligned(len(out)) - len(out))
        out += data
    return bytes(out)


def unpack_payload(buffer) -> Tuple[Any, Dict[str, Any]]:
    """Decode :func:`pack_payload` bytes from any buffer-protocol object.

    Returns ``(obj, arrays)`` where each array is a *read-only* numpy view
    over ``buffer`` — zero copies, so the caller must keep the underlying
    segment open for as long as the views live (the attach cache in
    :mod:`repro.experiments.parallel` does exactly that).  Raises
    ``RuntimeError`` if arrays are present but numpy is not importable;
    the fork-based pool guarantees workers match their parent, and the
    minimal leg never packs arrays in the first place.
    """
    view = memoryview(buffer)
    (header_len,) = _HEADER_LEN.unpack_from(view, 0)
    header = pickle.loads(bytes(view[_HEADER_LEN.size : _HEADER_LEN.size + header_len]))
    base = _aligned(_HEADER_LEN.size + header_len)
    arrays: Dict[str, Any] = {}
    for name, dtype, shape, offset, nbytes in header["arrays"]:
        if _np is None:
            raise RuntimeError(
                "packed payload carries numpy arrays but numpy is unavailable"
            )
        count = 1
        for dim in shape:
            count *= dim
        array = _np.frombuffer(
            view, dtype=_np.dtype(dtype), count=count, offset=base + offset
        ).reshape(shape)
        array.flags.writeable = False
        arrays[name] = array
    return header["obj"], arrays


# ---------------------------------------------------------------------- #
# Static-table export: pool workers adopt instead of re-probing n^2 pairs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SnapshotTables:
    """Picklable static tables of an :class:`IndexedGame`.

    ``compact`` marks uniform constant-parameter games whose tables rebuild
    in ``O(n)`` — those ship no rows at all.  For general games the rows
    either ride the pickled header (``length_rows`` et al. populated) or, on
    the numpy path, ride shared-segment arrays referenced by
    :data:`TABLE_ARRAY_KEYS` and are rebuilt at :func:`restore_tables` time.
    """

    labels: Tuple[Any, ...]
    compact: bool
    integral_lengths: bool = False
    exact_sums: bool = False
    length_rows: Optional[List[List[float]]] = None
    target_rows: Optional[List[List[int]]] = None
    target_weight_rows: Optional[List[List[float]]] = None
    unit_weight_nodes: Optional[List[bool]] = None
    uses_arrays: bool = False
    #: Restore-side only (never pickled as set): the dense float64 length
    #: matrix as a read-only zero-copy view over the shared segment, adopted
    #: straight into ``IndexedGame._length_matrix``.
    length_matrix: Any = None


#: Names of the shared-segment arrays an array-mode table export produces.
TABLE_ARRAY_KEYS = ("tables.lengths", "tables.tindptr", "tables.tindices", "tables.tweights")


def export_tables(indexed) -> Tuple[SnapshotTables, Dict[str, Any]]:
    """Export ``indexed``'s static tables for shipping to pool workers.

    Returns ``(tables, arrays)`` suitable for :func:`pack_payload`.  Uniform
    compact games (shared aliased rows) return a marker with no payload —
    rebuilding them is ``O(n)``.  General games export the dense length
    matrix and a ragged target CSR as int64/float64 arrays when numpy is
    available (zero-copy attach on the other side), or embed the plain list
    rows in the pickled tables otherwise.
    """
    n = indexed.n
    shared = n >= 2 and indexed.length_rows[0] is indexed.length_rows[-1]
    if shared or n < 2:
        return SnapshotTables(labels=indexed.labels, compact=True), {}
    if _np is not None:
        tindptr = [0]
        tindices: List[int] = []
        tweights: List[float] = []
        for row, weights in zip(indexed.target_rows, indexed.target_weight_rows):
            tindices.extend(row)
            tweights.extend(weights)
            tindptr.append(len(tindices))
        arrays = {
            "tables.lengths": _np.asarray(indexed.length_rows, dtype=_np.float64),
            "tables.tindptr": _np.asarray(tindptr, dtype=_np.int64),
            "tables.tindices": _np.asarray(tindices, dtype=_np.int64),
            "tables.tweights": _np.asarray(tweights, dtype=_np.float64),
        }
        tables = SnapshotTables(
            labels=indexed.labels,
            compact=False,
            integral_lengths=indexed.integral_lengths,
            exact_sums=indexed.exact_sums,
            unit_weight_nodes=list(indexed.unit_weight_nodes),
            uses_arrays=True,
        )
        return tables, arrays
    tables = SnapshotTables(
        labels=indexed.labels,
        compact=False,
        integral_lengths=indexed.integral_lengths,
        exact_sums=indexed.exact_sums,
        length_rows=[list(row) for row in indexed.length_rows],
        target_rows=[list(row) for row in indexed.target_rows],
        target_weight_rows=[list(row) for row in indexed.target_weight_rows],
        unit_weight_nodes=list(indexed.unit_weight_nodes),
    )
    return tables, {}


def restore_tables(
    tables: Optional[SnapshotTables], arrays: Dict[str, Any]
) -> Optional[SnapshotTables]:
    """Rehydrate an :func:`export_tables` payload into list-space tables.

    Returns a :class:`SnapshotTables` whose row lists are bit-identical to
    the parent's (float64 byte round trips are exact), ready for
    ``IndexedGame(game, tables=...)``; ``None`` (or a ``compact`` marker)
    means the worker should construct normally.  Array-mode payloads are
    materialised with ``tolist()`` here — the adopted dense length matrix
    itself stays a zero-copy view (see ``IndexedGame``).
    """
    if tables is None or tables.compact:
        return tables
    if not tables.uses_arrays:
        return tables
    if _np is None:  # pragma: no cover - fork pool mirrors parent's numpy
        raise RuntimeError("array-mode SnapshotTables require numpy")
    matrix = arrays["tables.lengths"]
    tindptr = arrays["tables.tindptr"].tolist()
    tindices = arrays["tables.tindices"].tolist()
    tweights = arrays["tables.tweights"].tolist()
    target_rows = [
        tindices[tindptr[u] : tindptr[u + 1]] for u in range(len(tindptr) - 1)
    ]
    target_weight_rows = [
        tweights[tindptr[u] : tindptr[u + 1]] for u in range(len(tindptr) - 1)
    ]
    return SnapshotTables(
        labels=tables.labels,
        compact=False,
        integral_lengths=tables.integral_lengths,
        exact_sums=tables.exact_sums,
        length_rows=[row.tolist() for row in matrix],
        target_rows=target_rows,
        target_weight_rows=target_weight_rows,
        unit_weight_nodes=list(tables.unit_weight_nodes),
        length_matrix=matrix,
    )


__all__ = [
    "EngineSnapshot",
    "PAYLOAD_ALIGN",
    "SnapshotTables",
    "TABLE_ARRAY_KEYS",
    "csr_arrays_of",
    "csr_of",
    "export_tables",
    "pack_payload",
    "restore_tables",
    "unpack_payload",
]
