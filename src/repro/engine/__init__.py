"""Flat-array distance/cost engine (index + version-stamp invalidation).

This subsystem is the performance core of the reproduction.  It replaces the
per-oracle rebuild of hash-dict :class:`~repro.graphs.DiGraph` environments
with one shared, int-indexed CSR snapshot of the profile plus caches that are
invalidated by a version stamp instead of by reconstruction.

**The index contract.**  :class:`~repro.engine.indexed.IndexedGame` maps the
game's node labels to dense ints ``0..n-1`` exactly once, in declaration
order, and materialises link lengths and the positive-preference target
lists (with their weights) as flat per-node rows.  Every traversal kernel
(the list kernels of :mod:`repro.graphs.int_kernels` and the numpy kernels
of :mod:`repro.graphs.int_kernels_np` alike) and every cache in
:class:`~repro.engine.cost_engine.CostEngine` speaks ints; labels only appear
at the public API boundary.  The mapping is immutable for the lifetime of the
engine, so cached rows indexed by int stay meaningful across profile changes.

**The version-stamp contract.**  A :class:`CostEngine` carries a
monotonically increasing ``version``.  :meth:`CostEngine.sync` diffs the
incoming profile against the engine's snapshot and:

* *no node changed* — the version is unchanged and every cache
  (environment-distance rows ``d_{G-u}(a, ·)``, the all-costs table) remains
  valid, so an equilibrium check immediately after a walk, or repeated stable
  probes within a walk, re-use every SSSP already paid for;
* *exactly one node ``u`` changed* — the version is bumped, ``u``'s own
  environment rows are re-stamped (``G - u`` never contained ``u``'s links,
  so a local change by ``u`` cannot invalidate ``u``'s own deviation
  geometry), and the step — ``u`` plus its arcs before the step — is
  appended to a bounded **edit log** instead of dropping the other nodes'
  rows;
* *more than one node changed* — the version is bumped, all caches are
  dropped, and the edit log is cleared.

**The repair contract** (new in PR 4).  A cached row whose stamp is behind
the engine's version is not discarded on touch: the engine collapses the
edit log since the row's stamp into net per-mover arc diffs (a node that
moved away and back contributes nothing; the masked node's own steps never
matter) and *repairs* the row in place with the dynamic-SSSP kernels
:func:`repro.graphs.int_kernels.repair_hops_csr` /
:func:`repro.graphs.int_kernels.repair_dijkstra_csr` — bounded
re-relaxation of only the region the arc changes can reach, seeded from the
region's intact in-boundary (the engine maintains the reverse adjacency for
this).  Hop rows repair in exact int space before rescaling, so repaired
rows are **bit-identical** to recomputation; derived rows (through rows,
penalty-substituted slices, batched combination cost vectors) are patched at
the touched indices only.  When repair would not pay — more pending net
movers than ``_repair_edit_limit`` (the affected region would approach the
whole row), a row older than the ``REPAIR_LOG_LIMIT``-entry log, tiny games
where a fresh BFS is cheaper, or ``incremental=False`` (the PR 3 baseline
behaviour) — the engine falls back to drop-and-recompute, which remains the
reference semantics.  ``tests/test_engine_parity.py`` pins repaired rows,
costs, and walk traces against full recomputation across randomized
single-node edit sequences.

Consumers never invalidate caches themselves; they call ``sync`` (directly
or through the routed entry points :func:`repro.core.best_response`,
:func:`repro.core.equilibrium_report`, :meth:`repro.core.BBCGame.all_costs`)
and trust the stamp.  Anything holding a pre-``sync`` artefact — e.g. a
:class:`~repro.engine.cost_engine.StrategyScorer` — checks the stamp and
refuses to run stale.

**The traversal backend.**  The SSSP kernels behind every row come in two
interchangeable implementations: the list kernels of
:mod:`repro.graphs.int_kernels` (the reference — plain deques and binary
heaps over list CSR) and the array kernels of
:mod:`repro.graphs.int_kernels_np` (level-synchronous frontier BFS,
frontier-relaxation Dijkstra, and vectorised repair sweeps over int64 numpy
CSR views of the same snapshot).  ``CostEngine(game, backend=...)`` selects
between them with the usual tri-state idiom: ``None``/``"auto"`` picks numpy
when it is importable and the game has at least
:data:`~repro.engine.cost_engine.NUMPY_BACKEND_MIN_N` nodes, ``"python"`` or
``"numpy"`` pin a side (:class:`SweepEvaluator` forwards a ``backend=``
kwarg the same way; uniform-length games cross over at
:data:`~repro.engine.cost_engine.NUMPY_BACKEND_MIN_N_UNIFORM` because the
deque BFS is leaner than the heap Dijkstra).  Hop counts and integer-valued
lengths traverse in exact int space; non-integer lengths traverse in IEEE
float64, whose frontier relaxation converges to the heap Dijkstra's labels
bit for bit.  Batched entry points (the probe prefetch in
:func:`repro.core.best_response._resolve_scorer` and `score_combinations`,
plus ``all_costs``) pull every row a probe can touch out of one multi-source
traversal.  The numpy backend stores cached rows as float64/int64 arrays
(the python backend keeps lists), but derived results — through rows, costs,
regrets — stay plain Python floats, so every scorer fast path, cache
contract, and result type above the kernels is shared;
``tests/test_backend_parity.py`` pins kernel-level and end-to-end parity
and ``scripts/bench_speed.py --backend`` records the python-vs-numpy
trajectory at n in {64, 256, 1024} (>=3x on Dijkstra-backed equilibrium
checks at n=1024, floor enforced).

**The giant-batch contract** (new in PR 6).  Both kernel families'
multi-source forms additionally take a *per-row* forbidden mask — row ``i``
of one call computes ``d_{G-u_i}(s_i, ·)`` — so a whole-profile report is
one giant sweep instead of n small per-node batches.  Entry points that
probe every node against one profile (:func:`repro.core.equilibrium_report`,
:func:`repro.core.swap_stability_report`) stage the full row working set up
front via :meth:`CostEngine.plan_report_prefetch`; the engine splits the
plan into contiguous chunks of roughly
:data:`~repro.engine.cost_engine.GIANT_CHUNK_TARGET_BYTES` and drains one
chunk per masked multi-source traversal, lazily, as probes first touch a
planned node.  The short-circuiting checkers (``is_pure_nash``,
``first_unstable_node``) deliberately do not plan — rows staged for nodes
never probed would be wasted.  Planning changes only *when* rows are
computed, never their values: every giant-batch result is bit-identical to
the per-node path and to the dict reference, pinned by
``tests/test_backend_parity.py``.

**The memory-budget contract** (new in PR 6, replacing the PR 5 row-count
cap).  ``CostEngine(game, memory_budget_bytes=...)`` bounds the byte
footprint of every row cache (environment, hop, derived, and combination
rows), defaulting to :func:`~repro.engine.cost_engine.default_memory_budget`
— 16 MiB floored, 256 MiB capped.  A
:class:`~repro.engine.row_store.ChunkLedger` accounts bytes per node and
groups the nodes filled by one giant traversal into one LRU *chunk* (rows
from one sweep are views into one allocation, so only dropping the whole
group actually releases memory).  Eviction is node-granular within the
evicted chunk — a node's environment row and everything derived from it
leave together, so the repair contract above never patches a derived row
whose base was dropped — and never silent: ``stats["rows_evicted"]`` /
``stats["chunks_evicted"]`` count it, ``stats["evicted_recomputes"]`` counts
rows that re-entered by recomputation, and :meth:`CostEngine.cache_bytes` /
:meth:`CostEngine.snapshot_stats` expose the live footprint.  An evicted row
re-enters only through full recomputation (its version stamp is gone with
it), so eviction composes with repair without a staleness hazard;
``tests/test_row_cache.py`` drives a long budget-starved walk at n = 1024
and pins bytes <= budget throughout with bit-identical results.

**The vectorised scoring spec.**  When numpy is importable (optional — every
path degrades to the original loops without it), scoring of SUM-objective
unit-weight nodes whose disconnection penalty dominates every finite
distance keeps per-first-hop *penalty-substituted target slices* and reduces
them at C level; on games whose lengths and penalty are integer-valued
(:attr:`IndexedGame.exact_sums` — every default game) whole strategy sets
are scored in one vectorised pass
(:meth:`~repro.engine.cost_engine.StrategyScorer.score_combinations`), with
the per-environment cost vector cached and patched through repairs.
Exactness of integer float sums below ``2**53`` is what makes the reordered
reductions bit-identical to the reference's left-to-right loops; games
failing any gate (MAX objective, non-unit weights, small penalties,
non-integer lengths, fewer than 16 targets) stay on the original code path.

**The sweep contract.**  Multi-profile workloads (exhaustive / sampled
equilibrium search, the Figure 4 completion scan) go through
:mod:`repro.engine.sweep`: :func:`gray_code_profiles` enumerates a cartesian
product of per-node strategy sets so that consecutive profiles differ in
exactly one node — every ``sync`` along the sweep is then the cheap
single-node case above — and :class:`SweepEvaluator` layers environment-keyed
memoisation on top: a node's deviation check depends only on its
*environment* (everyone else's strategies), so the evaluator caches the
node's minimum achievable cost and its stability verdicts per environment
and never re-probes a node whose environment rows are still valid.
``sync`` reports which nodes a profile step changed (its return value) so
sweep layers know exactly which memo entries survived.  Verdicts stay
bit-identical to the reference path; ``tests/test_sweep.py`` pins it.

**Snapshot ownership and lifetime** (new in PR 9).  Everything a traversal
or sweep *reads* — the CSR of the bought graph, aligned edge lengths, the
synced strategies, the static tables and licence flags — lives in a frozen
:class:`~repro.engine.snapshot.EngineSnapshot`, separable from the engine's
mutable cache/repair machinery.  The ownership rules:

* **One writer.**  ``CostEngine._rebuild_csr`` (reached only through
  ``sync``) is the sole producer: it builds a *fresh* snapshot for each
  profile version and publishes it atomically; a published snapshot is never
  mutated.  Readers obtain it via :meth:`CostEngine.snapshot` and may hold
  it across syncs — its lists and array views stay exactly as published.
* **Version rules.**  Each snapshot carries the engine ``version`` it was
  built at.  A reader caching state derived from a snapshot compares
  ``snapshot().version`` instead of re-diffing strategies; equal versions
  guarantee bit-identical reads.
* **Cross-process lifetime.**  Sharded sweeps export the *static* half (the
  game spec, candidate sets, and :func:`~repro.engine.snapshot
  .export_tables` output) into one ``multiprocessing.shared_memory`` segment
  via :class:`~repro.experiments.parallel.SharedPayload`.  The **parent
  creates** the segment and is the only process that **unlinks** it — in a
  ``finally`` around the pool run, backstopped by a module atexit hook.
  **Workers attach** read-only (:func:`~repro.experiments.parallel
  .attach_payload`, zero-copy numpy views on the full leg; the minimal leg
  ships pickled lists) and never unlink; their attachments die with the
  worker process, so crashes and pool restarts cannot leak segments.  The
  shared payload is immutable by construction — workers rebuild their own
  mutable engines (adopting the exported tables through
  ``CostEngine(game, tables=...)``) and write nothing back.  Allocation
  failure degrades to shipping the same packed bytes inline with each task;
  the ``parallel.shm-create`` / ``parallel.shm-attach`` fault sites pin both
  halves under injection.

**The parallel-map spec.**  For process-level fan-out,
:mod:`repro.experiments.parallel` ships a compact picklable
:class:`~repro.experiments.parallel.GameSpec` — ``("uniform", (n, k,
objective, penalty))`` or ``("general", (nodes, sparse tables, defaults))`` —
from which each worker rebuilds the game and its :class:`IndexedGame`/
:class:`CostEngine` locally instead of pickling engine state;
``parallel_map(fn, items, processes=...)`` preserves item order and falls
back to a deterministic serial loop when ``processes == 1``.  The fan-out is
crash-safe: per-task timeouts, bounded deterministic retries, dead-pool
detection with resubmission of only the lost cells on fresh pools, and a
final serial rung mean results are bit-identical at any process count, retry
count, or crash schedule (``tests/test_reliability.py`` pins it across all
three axes).

**Failure semantics.**  Every entry point above either returns a result
bit-identical to its fault-free run or raises a *documented typed error* —
never a wrong answer, never an unhandled ``multiprocessing``/scipy
traceback.  The contract, enforced under the deterministic fault-injection
harness of :mod:`repro.reliability` (seeded :class:`~repro.reliability
.FaultPlan` rules firing at named ``fault_point`` sites):

* ``parallel_map`` — a worker exception is retried in-pool up to ``retries``
  times with deterministic backoff; a dead pool (``BrokenProcessPool`` or a
  task that outlives its ``timeout``) is rebuilt up to ``max_pool_restarts``
  times with only the lost cells resubmitted, then the remaining cells run
  serially under a ``RuntimeWarning`` naming the cell count and cause.
  ``on_error`` picks the terminal policy: ``"raise"`` (the default — the
  first failing cell's exception propagates), ``"retry-serial"`` (one serial
  re-run per failed cell), or ``"skip"`` (failed cells yield ``None`` under
  a warning).  ``last_run_stats()`` reports the crashed / retried /
  journal-hit / fallback counters of the latest run.
* ``CostEngine(verify_every=N)`` — every ``N``-th environment-row cache hit
  is recomputed and compared; a poisoned row warns, is counted in
  ``stats["row_verify_failures"]``, and is rebuilt — never served silently.
  A failed giant-chunk build degrades to per-node fills
  (``stats["chunk_build_failures"]``); an unavailable numpy at resolve time
  degrades ``backend="auto"`` to the list kernels.
* ``FractionalEngine.best_response`` — a failed LP solve is retried once
  from a fresh assembly (``stats["lp_retries"]``), then falls back to the
  reference FlowNetwork path for that call under a ``RuntimeWarning``
  (``stats["lp_fallbacks"]``).
* Long sweeps — ``exhaustive_equilibrium_search(journal=...)`` and the
  ``journal=`` kwarg of ``parallel_map`` and the study grids checkpoint
  completed profile blocks / grid cells through an atomic-write
  :class:`~repro.reliability.CheckpointJournal`; a killed run resumes
  without recomputing journalled work and returns the identical summary.
  A corrupt or mismatched journal raises
  :class:`~repro.reliability.CheckpointError`.

**Invariants.**  The contracts above are cross-cutting conventions — easy to
hold in one PR, easy to erode over twenty.  Each one is therefore enforced
twice: statically by a rule of the in-repo AST linter
(``python -m repro.tooling.lint``, run by CI on both dependency legs) and
dynamically by the parity/fault suite.  The mapping:

* *Optional-stack degradation* — numpy/scipy only ever imported behind a
  module-level ``try/except ImportError`` gate, so the minimal CI leg
  imports everything.  Lint rule **RPR001**; runtime proof: the whole suite
  on the minimal leg plus the live ``engine.numpy-import`` degradation check.
* *Determinism* — no interpreter-global RNG state, no wall-clock seeds;
  every stochastic entry point threads a ``SeedLike`` through
  :func:`repro.rng.as_rng`.  Lint rule **RPR002**; runtime proof: the
  replay/identical-summary pins in ``tests/test_reliability.py`` and the
  seeded-walk traces in ``tests/test_engine_parity.py``.
* *Engine threading* — a routed entry point that accepts the tri-state
  ``engine=`` kwarg passes it down to every engine-aware callee, else a walk
  silently mixes shared-engine and reference paths.  Lint rule **RPR003**;
  runtime proof: ``tests/test_engine_parity.py`` pins both paths
  bit-identical, so a dropped kwarg is a perf bug before it is a wrong one.
* *Fault-site registry* — every ``fault_point`` site literal is declared in
  :mod:`repro.reliability.sites` (tests use the reserved ``test.``
  namespace), so a typo'd :class:`~repro.reliability.FaultRule` cannot
  silently never fire.  Lint rule **RPR004**; runtime proof:
  :class:`~repro.reliability.UnknownFaultSiteWarning` warns once per unknown
  site at plan construction.
* *Cost comparison* — cost-typed floats never compared with ``==``/``!=``
  in ``core``/``engine``; the documented tolerance is ``1e-9``.  Lint rule
  **RPR005**; runtime proof: the parity suites compare exact where exactness
  is guaranteed (int space, sums below ``2**53``) and within tolerance
  elsewhere.
* *Cache aliasing* — public engine methods return cached rows only as
  copies or under an explicit ``# repro: readonly`` annotation with a
  docstring contract.  Lint rule **RPR006**; runtime proof:
  ``verify_every`` recomputation catches a caller that mutated a shared row.

**The fractional contract.**  The fractional relaxation
(:mod:`repro.core.fractional`) has its own engine,
:class:`~repro.engine.fractional_engine.FractionalEngine`, built on the same
:class:`IndexedGame` mapping and the same version-stamp discipline: the
profile's edge list is materialised once per version, per-``(version, node)``
*environment* flow networks (everyone else's purchases) serve every
destination through ``min_cost_flow(..., overflow_cost=M)``, a single-mover
sync preserves the mover's environment network, and best-response LPs are
assembled sparse once per node and only patched while the environment's edge
structure holds.  ``get_fractional_engine`` / ``resolve_fractional_engine``
mirror the integral registry and tri-state ``engine`` kwarg.

The dict-based :class:`~repro.core.best_response.DeviationOracle` remains in
the tree as the reference implementation; ``tests/test_engine_parity.py``
asserts bit-identical costs and regrets between the two, and
``scripts/bench_speed.py`` (``--sweep`` for the sweep scenarios,
``--fractional`` for the fractional ones) tracks the speedup.
"""

from weakref import WeakKeyDictionary

from .cost_engine import (
    NUMPY_BACKEND_MIN_N,
    CostEngine,
    StrategyScorer,
    resolve_backend,
)
from .fractional_engine import (
    FractionalEngine,
    get_fractional_engine,
    resolve_fractional_engine,
)
from .indexed import IndexedGame
from .snapshot import EngineSnapshot, SnapshotTables, export_tables, restore_tables
from .sweep import SweepEvaluator, gray_code_profiles, profile_at

#: One shared engine per live game object; weak keys so games can be GC'd.
_ENGINES: "WeakKeyDictionary" = WeakKeyDictionary()


def get_engine(game) -> CostEngine:
    """Return the shared :class:`CostEngine` for ``game``, creating it on first use.

    Sharing one engine per game is what lets independently written call sites
    (a best-response walk followed by an equilibrium check, say) reuse each
    other's cached distance rows whenever the profile version still matches.
    """
    engine = _ENGINES.get(game)
    if engine is None:
        engine = CostEngine(game)
        _ENGINES[game] = engine
    return engine


def resolve_engine(game, engine) -> "CostEngine | None":
    """Resolve the tri-state ``engine`` argument shared by routed entry points.

    ``False`` means "use the dict-based reference path" and resolves to
    ``None``; ``None`` resolves to the shared per-game engine; an explicit
    :class:`CostEngine` is validated against ``game`` (see
    :meth:`CostEngine.check_game`) and returned as-is.  Call sites fall back
    to their own reference implementation when this returns ``None``.
    """
    if engine is False:
        return None
    if engine is None:
        return get_engine(game)
    engine.check_game(game)
    return engine


__all__ = [
    "CostEngine",
    "EngineSnapshot",
    "NUMPY_BACKEND_MIN_N",
    "SnapshotTables",
    "StrategyScorer",
    "FractionalEngine",
    "IndexedGame",
    "SweepEvaluator",
    "export_tables",
    "gray_code_profiles",
    "get_engine",
    "get_fractional_engine",
    "profile_at",
    "resolve_backend",
    "resolve_engine",
    "resolve_fractional_engine",
    "restore_tables",
]
