"""Engine-backed evaluation of fractional BBC games.

The reference path in :mod:`repro.core.fractional` rebuilds a
:class:`~repro.graphs.FlowNetwork` per ``(source, destination)`` query and
reassembles a dense LP per best response, which caps iterated fractional
dynamics at a handful of nodes.  :class:`FractionalEngine` amortises the
fixed structure across solves, mirroring the integral
:class:`~repro.engine.cost_engine.CostEngine` contract:

* **Index contract** — the engine keys on :class:`~repro.engine.indexed
  .IndexedGame`'s dense int mapping; profiles are canonicalised once per sync
  into per-node ``(head_int, amount)`` rows and every cache below speaks ints.
* **Version stamps** — :meth:`sync` diffs the incoming
  :class:`~repro.core.fractional.FractionalProfile` against the engine's
  snapshot and bumps a monotonically increasing ``version`` only when
  something changed.  The profile edge list is materialised once per version.
  Each node additionally carries an *environment version* — the version at
  which any **other** node last changed — because everything a best response
  needs besides the node's own purchases depends only on that environment.
* **Per-``(version, node)`` environment flow networks** — ``node_cost`` and
  ``destination_cost`` evaluate min-cost unit flows on a cached
  :class:`~repro.graphs.FlowNetwork` holding everyone *else's* edges; the
  probing node's own edges are appended behind an arc mark and rolled back
  with :meth:`~repro.graphs.FlowNetwork.truncate`, and the disconnection
  penalty is applied by ``min_cost_flow(..., overflow_cost=M)`` instead of a
  per-pair penalty edge, so the same network serves every destination.  A
  single-mover sync preserves the mover's own environment network (its
  environment is untouched), the exact analogue of ``CostEngine``'s
  ``d_{G-u}`` row preservation.  ``destination_cost`` results are cached per
  version.
* **Sparse, patched best-response LPs** — the LP of
  :func:`~repro.core.fractional.fractional_best_response` is assembled once
  per node from COO triplets (``scipy.sparse``), keyed on the environment's
  edge *structure*; while the structure holds, later profiles only patch the
  capacity entries of ``b_ub``.  Solved best responses are cached against the
  node's environment version, so a probe whose environment is unchanged —
  every node during the equilibrium report that follows converged dynamics —
  skips the LP entirely.

The reference FlowNetwork/LP path stays available through ``engine=False`` on
every routed entry point; ``tests/test_fractional_engine.py`` pins costs and
regrets between the two within ``1e-9``.
"""

from __future__ import annotations

import warnings
import weakref
from typing import Dict, Hashable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

try:  # The engine is numpy/scipy-backed end to end; without them the
    # resolver below degrades to the reference FlowNetwork/LP path.
    import numpy as np
    from scipy import sparse
    from scipy.optimize import linprog
except ImportError:  # pragma: no cover - exercised on the minimal CI leg
    np = None
    sparse = None
    linprog = None

from ..core.errors import BBCError, InvalidProfile
from ..graphs.flow import FlowNetwork
from ..reliability.faults import fault_point
from .indexed import IndexedGame

Node = Hashable

#: Mirrors ``repro.core.fractional._EPS``: the threshold below which a
#: purchased capacity is treated as zero.
_AMOUNT_EPS = 1e-7
#: Mirrors the reference best response's fixed improvement threshold.
_IMPROVEMENT_EPS = 1e-6


class _NodeLP:
    """Assembled LP skeleton for one node's best response.

    Everything except the environment-capacity entries of ``b_ub`` is fixed
    while the environment's edge *structure* (which ``(tail, head)`` pairs
    carry positive capacity) is unchanged, so re-solves only patch those
    right-hand sides.
    """

    __slots__ = (
        "structure",
        "c",
        "A_ub",
        "A_eq",
        "b_eq",
        "b_ub_template",
        "bounds",
        "candidates",
        "num_env",
        "num_targets",
    )

    def __init__(self, structure, c, A_ub, A_eq, b_eq, b_ub_template, bounds, candidates, num_env, num_targets):
        self.structure = structure
        self.c = c
        self.A_ub = A_ub
        self.A_eq = A_eq
        self.b_eq = b_eq
        self.b_ub_template = b_ub_template
        self.bounds = bounds
        self.candidates = candidates
        self.num_env = num_env
        self.num_targets = num_targets


class FractionalEngine:
    """Shared-structure evaluator bound to one fractional game.

    The engine is stateful: :meth:`sync` points it at a profile (diffing
    against the previous one), after which :meth:`destination_cost`,
    :meth:`node_cost`, :meth:`all_costs`, and :meth:`best_response` evaluate
    against the cached snapshot.  Costs and regrets match the reference
    FlowNetwork/LP path within ``1e-9``.
    """

    def __init__(self, game) -> None:
        if np is None:
            raise RuntimeError(
                "FractionalEngine requires numpy and scipy; install them or "
                "use the reference path (engine=False)"
            )
        # Weak back-reference for check_game (a strong one would pin the
        # per-game registry entry); the base integral game is held strongly —
        # it does not key any registry and the LP assembly reads its link
        # costs and budgets.
        self._game_ref = weakref.ref(game)
        self._base = game.base
        self.indexed = IndexedGame(game.base)
        #: Bumped on every observed profile change; per-version caches key on it.
        self.version = 0
        # Per-node canonical strategies: tuple of (head_int, amount) pairs in
        # the profile row's insertion order (kept aligned with the reference
        # path's iteration order so LP variable layouts coincide).
        self._strategies: Optional[List[Tuple[Tuple[int, float], ...]]] = None
        #: Version at which node u's *environment* (everyone else) last changed.
        self._env_version: List[int] = [0] * self.indexed.n
        # Current version's full edge list [(tail, head, amount, length)].
        self._edges: Optional[List[Tuple[int, int, float, float]]] = None
        # node u -> (env_version at build, FlowNetwork of everyone else's edges)
        self._env_nets: Dict[int, Tuple[int, FlowNetwork]] = {}
        # (source, dest) -> min-cost unit-flow cost; valid for current version.
        self._dest_cache: Dict[Tuple[int, int], float] = {}
        self._node_cost_cache: Dict[int, float] = {}
        # node u -> (env_version at solve, best_cost, best_strategy labels)
        self._br_cache: Dict[int, Tuple[int, float, Dict[Node, float]]] = {}
        # node u -> assembled LP skeleton, reused while the structure matches.
        self._lp_cache: Dict[int, _NodeLP] = {}
        #: Cache observability, mirroring ``CostEngine.stats``.
        self.stats: Dict[str, int] = {
            "flow_solves": 0,
            "dest_cached": 0,
            "lp_solved": 0,
            "lp_skipped": 0,
            "lp_patched": 0,
            "lp_assembled": 0,
            "lp_retries": 0,
            "lp_fallbacks": 0,
            "noop_syncs": 0,
            "local_syncs": 0,
            "full_syncs": 0,
        }

    def check_game(self, game) -> None:
        """Raise ``ValueError`` when this engine was built for a different game."""
        if self._game_ref() is not game:
            raise ValueError(
                "this FractionalEngine was built for a different game instance; "
                "create one with FractionalEngine(game) or use "
                "repro.engine.get_fractional_engine(game)"
            )

    # ------------------------------------------------------------------ #
    # Profile synchronisation
    # ------------------------------------------------------------------ #
    def sync(self, profile) -> Optional[Tuple[int, ...]]:
        """Point the engine at ``profile``, invalidating as little as possible.

        Returns the dense int ids of the nodes whose purchase rows changed —
        ``()`` for a no-op sync — or ``None`` on the first sync.  A
        single-mover change preserves the mover's environment network, its
        environment version, and therefore its cached best response.
        """
        indexed = self.indexed
        index = indexed.index
        try:
            raw = [profile[label] for label in indexed.labels]
        except KeyError as exc:
            raise InvalidProfile(f"profile is missing node {exc.args[0]!r}") from None
        try:
            canonical = [
                tuple((index[head], float(amount)) for head, amount in row.items())
                for row in raw
            ]
        except KeyError as exc:
            raise InvalidProfile(
                f"profile buys capacity towards unknown node {exc.args[0]!r}"
            ) from None

        old = self._strategies
        if old is not None:
            changed = [u for u in range(indexed.n) if canonical[u] != old[u]]
            if not changed:
                self.stats["noop_syncs"] += 1
                return ()
        else:
            changed = None

        self._strategies = canonical
        self.version += 1
        self._edges = None
        self._dest_cache.clear()
        self._node_cost_cache.clear()
        if changed is not None and len(changed) == 1:
            self.stats["local_syncs"] += 1
            mover = changed[0]
            for v in range(indexed.n):
                if v != mover:
                    self._env_version[v] = self.version
            # The mover's environment never contained its own edges, so its
            # network (and anything stamped with its env version) survives.
            kept = self._env_nets.get(mover)
            self._env_nets.clear()
            if kept is not None and kept[0] == self._env_version[mover]:
                self._env_nets[mover] = kept
        else:
            self.stats["full_syncs"] += 1
            for v in range(indexed.n):
                self._env_version[v] = self.version
            self._env_nets.clear()
        return tuple(changed) if changed is not None else None

    def _require_sync(self) -> None:
        if self._strategies is None:
            raise InvalidProfile("FractionalEngine.sync(profile) must be called first")

    # ------------------------------------------------------------------ #
    # Flow evaluation
    # ------------------------------------------------------------------ #
    def _edge_list(self) -> List[Tuple[int, int, float, float]]:
        """Materialise the profile's positive-capacity edges once per version."""
        edges = self._edges
        if edges is None:
            edges = []
            length_rows = self.indexed.length_rows
            for tail, row in enumerate(self._strategies):
                lengths = length_rows[tail]
                for head, amount in row:
                    if amount > _AMOUNT_EPS:
                        edges.append((tail, head, amount, lengths[head]))
            self._edges = edges
        return edges

    def _env_network(self, u: int) -> FlowNetwork:
        """Return the cached flow network of everyone's edges except ``u``'s."""
        stamp = self._env_version[u]
        entry = self._env_nets.get(u)
        if entry is not None and entry[0] == stamp:
            return entry[1]
        net = FlowNetwork()
        for v in range(self.indexed.n):
            net.add_node(v)
        for tail, head, amount, length in self._edge_list():
            if tail != u:
                net.add_edge(tail, head, amount, length)
        self._env_nets[u] = (stamp, net)
        return net

    def _costs_with_own(
        self, u: int, own_row: Sequence[Tuple[int, float]], targets: Sequence[int]
    ) -> List[float]:
        """Unit-flow costs from ``u`` to each target given ``u``'s own edges.

        The own edges ride on the cached environment network behind an arc
        mark and are rolled back afterwards, so the network stays exactly the
        environment for the next caller.
        """
        net = self._env_network(u)
        mark = net.arc_count()
        lengths = self.indexed.length_rows[u]
        penalty = self.indexed.penalty
        costs: List[float] = []
        try:
            for head, amount in own_row:
                if amount > _AMOUNT_EPS:
                    net.add_edge(u, head, amount, lengths[head])
            for t in targets:
                cost, _ = net.min_cost_flow(u, t, 1.0, overflow_cost=penalty)
                self.stats["flow_solves"] += 1
                costs.append(cost)
        finally:
            net.truncate(mark)
        return costs

    def _to_int(self, label: Node) -> int:
        try:
            return self.indexed.index[label]
        except KeyError:
            raise InvalidProfile(f"node {label!r} is not part of this game") from None

    def destination_cost(self, profile, source: Node, destination: Node) -> float:
        """Return the min-cost unit-flow cost from ``source`` to ``destination``."""
        self.sync(profile)
        s = self._to_int(source)
        d = self._to_int(destination)
        key = (s, d)
        cached = self._dest_cache.get(key)
        if cached is not None:
            self.stats["dest_cached"] += 1
            return cached  # repro: readonly — an immutable float, aliasing is harmless
        cost = self._costs_with_own(s, self._strategies[s], (d,))[0]
        self._dest_cache[key] = cost
        return cost

    def _node_cost_int(self, u: int) -> float:
        cached = self._node_cost_cache.get(u)
        if cached is not None:
            return cached
        indexed = self.indexed
        targets = indexed.target_rows[u]
        weights = indexed.target_weight_rows[u]
        dest_cache = self._dest_cache
        missing = [t for t in targets if (u, t) not in dest_cache]
        if missing:
            costs = self._costs_with_own(u, self._strategies[u], missing)
            for t, cost in zip(missing, costs):
                dest_cache[(u, t)] = cost
        else:
            self.stats["dest_cached"] += len(targets)
        total = 0.0
        for t, w in zip(targets, weights):
            total += w * dest_cache[(u, t)]
        self._node_cost_cache[u] = total
        return total

    def node_cost(self, profile, node: Node) -> float:
        """Return the preference-weighted sum of unit-flow costs for ``node``."""
        self.sync(profile)
        return self._node_cost_int(self._to_int(node))

    def all_costs(self, profile) -> Dict[Node, float]:
        """Return the cost of every node under ``profile``."""
        self.sync(profile)
        return {
            label: self._node_cost_int(u)
            for u, label in enumerate(self.indexed.labels)
        }

    def social_cost(self, profile) -> float:
        """Return the total cost over all nodes."""
        return sum(self.all_costs(profile).values())

    # ------------------------------------------------------------------ #
    # Best responses
    # ------------------------------------------------------------------ #
    def best_response(self, profile, node: Node):
        """Return the exact LP best response for ``node`` (cached by environment).

        Produces the same :class:`~repro.core.fractional
        .FractionalBestResponse` record as the reference path.  The LP is
        skipped when a cached solve against an identical environment already
        proves the achievable minimum — in particular the equilibrium report
        right after converged dynamics solves no LPs at all.

        A failed solve (solver failure, or the ``fractional.lp-solve`` fault
        site) is retried once from a freshly assembled LP
        (``stats["lp_retries"]``); a second failure falls back to the
        reference FlowNetwork path for this call with a ``RuntimeWarning``
        (``stats["lp_fallbacks"]``) — never a wrong answer, never an
        unhandled scipy traceback.
        """
        from ..core.fractional import FractionalBestResponse

        self.sync(profile)
        u = self._to_int(node)
        current_cost = self._node_cost_int(u)
        if not self.indexed.target_rows[u]:
            return FractionalBestResponse(
                node=node,
                current_cost=current_cost,
                best_cost=current_cost,
                best_strategy=profile.strategy(node),
                improved=False,
            )
        stamp = self._env_version[u]
        cached = self._br_cache.get(u)
        if cached is not None and cached[0] == stamp:
            self.stats["lp_skipped"] += 1
            best_cost, best_strategy = cached[1], dict(cached[2])
        else:
            try:
                best_cost, best_strategy = self._solve_lp(u)
            except (BBCError, ValueError):
                # Graceful degradation, step 1: a failed solve may be a stale
                # patched skeleton — drop it and retry once from a fresh
                # assembly.
                self.stats["lp_retries"] += 1
                self._lp_cache.pop(u, None)
                try:
                    best_cost, best_strategy = self._solve_lp(u)
                except (BBCError, ValueError) as exc:
                    # Step 2: fall back to the reference FlowNetwork/LP path
                    # for this call only (nothing is cached, so a healthy
                    # later solve resumes the fast path).  Never silent,
                    # never an unhandled scipy traceback.
                    self.stats["lp_fallbacks"] += 1
                    warnings.warn(
                        f"fractional best-response LP for node {node!r} failed "
                        f"twice ({exc}); falling back to the reference "
                        "FlowNetwork path for this call",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    from ..core.fractional import fractional_best_response

                    return fractional_best_response(
                        self._game_ref(), profile, node, engine=False
                    )
            self._br_cache[u] = (stamp, best_cost, dict(best_strategy))
        if best_cost < current_cost - _IMPROVEMENT_EPS:
            return FractionalBestResponse(
                node=node,
                current_cost=current_cost,
                best_cost=best_cost,
                best_strategy=best_strategy,
                improved=True,
            )
        return FractionalBestResponse(
            node=node,
            current_cost=current_cost,
            best_cost=min(best_cost, current_cost),
            best_strategy=profile.strategy(node),
            improved=False,
        )

    # ------------------------------------------------------------------ #
    # LP assembly
    # ------------------------------------------------------------------ #
    def _env_structure(self, u: int):
        """Return the environment's edge pairs and capacities in LP order."""
        pairs: List[Tuple[int, int]] = []
        caps: List[float] = []
        for tail in range(self.indexed.n):
            if tail == u:
                continue
            for head, amount in self._strategies[tail]:
                if amount > _AMOUNT_EPS:
                    pairs.append((tail, head))
                    caps.append(amount)
        return tuple(pairs), caps

    def _solve_lp(self, u: int) -> Tuple[float, Dict[Node, float]]:
        structure, caps = self._env_structure(u)
        lp = self._lp_cache.get(u)
        if lp is None or lp.structure != structure:
            lp = self._assemble_lp(u, structure)
            self._lp_cache[u] = lp
            self.stats["lp_assembled"] += 1
        else:
            self.stats["lp_patched"] += 1

        num_env = lp.num_env
        num_own = len(lp.candidates)
        b_ub = lp.b_ub_template.copy()
        if num_env:
            caps_arr = np.asarray(caps)
            per_block = num_env + num_own
            for d in range(lp.num_targets):
                start = 1 + d * per_block
                b_ub[start : start + num_env] = caps_arr

        fault_point("fractional.lp-solve", key=u)
        result = linprog(
            c=lp.c,
            A_ub=lp.A_ub,
            b_ub=b_ub,
            A_eq=lp.A_eq,
            b_eq=lp.b_eq,
            bounds=lp.bounds,
            method="highs",
        )
        if not result.success:
            raise BBCError(f"fractional best-response LP failed: {result.message}")
        self.stats["lp_solved"] += 1
        labels = self.indexed.labels
        best_strategy = {
            labels[x]: float(result.x[j])
            for j, x in enumerate(lp.candidates)
            if result.x[j] > _AMOUNT_EPS
        }
        return float(result.fun), best_strategy

    def _assemble_lp(self, u: int, structure) -> _NodeLP:
        """Assemble the node's LP from COO triplets for the given structure.

        Variable layout matches the reference dense assembly exactly:
        ``num_own`` capacity variables (one per candidate target, in label
        order), then per preferred destination a block of environment flows,
        own flows, and one penalty flow.
        """
        indexed = self.indexed
        base = self._base
        labels = indexed.labels
        n = indexed.n
        candidates = [v for v in range(n) if v != u]
        targets = indexed.target_rows[u]
        weights = indexed.target_weight_rows[u]
        length_row = indexed.length_rows[u]
        penalty = indexed.penalty

        num_own = len(candidates)
        num_env = len(structure)
        num_targets = len(targets)
        per_dest = num_env + num_own + 1
        num_vars = num_own + num_targets * per_dest
        env_lengths = [indexed.length_rows[tail][head] for tail, head in structure]

        def flow_var(dest_index: int, edge_index: int) -> int:
            return num_own + dest_index * per_dest + edge_index

        c = np.zeros(num_vars)
        for d, _ in enumerate(targets):
            w = weights[d]
            for e, length in enumerate(env_lengths):
                c[flow_var(d, e)] = w * length
            for o, x in enumerate(candidates):
                c[flow_var(d, num_env + o)] = w * length_row[x]
            c[flow_var(d, per_dest - 1)] = w * penalty

        # Inequalities: one budget row, then per destination the environment
        # capacity rows (rhs patched per profile) and the own-capacity
        # coupling rows.
        rows_ub: List[int] = []
        cols_ub: List[int] = []
        vals_ub: List[float] = []
        num_rows_ub = 1 + num_targets * (num_env + num_own)
        b_ub_template = np.zeros(num_rows_ub)
        for j, x in enumerate(candidates):
            price = base.link_cost(labels[u], labels[x])
            if price:
                rows_ub.append(0)
                cols_ub.append(j)
                vals_ub.append(price)
        b_ub_template[0] = base.budget(labels[u])
        for d in range(num_targets):
            block = 1 + d * (num_env + num_own)
            for e in range(num_env):
                rows_ub.append(block + e)
                cols_ub.append(flow_var(d, e))
                vals_ub.append(1.0)
            for o in range(num_own):
                row = block + num_env + o
                rows_ub.append(row)
                cols_ub.append(flow_var(d, num_env + o))
                vals_ub.append(1.0)
                rows_ub.append(row)
                cols_ub.append(o)
                vals_ub.append(-1.0)

        # Equalities: per destination, flow conservation at every vertex.
        rows_eq: List[int] = []
        cols_eq: List[int] = []
        vals_eq: List[float] = []
        num_rows_eq = num_targets * n
        b_eq = np.zeros(num_rows_eq)
        for d, destination in enumerate(targets):
            offset = d * n
            for e, (tail, head) in enumerate(structure):
                var = flow_var(d, e)
                rows_eq.append(offset + tail)
                cols_eq.append(var)
                vals_eq.append(1.0)
                rows_eq.append(offset + head)
                cols_eq.append(var)
                vals_eq.append(-1.0)
            for o, x in enumerate(candidates):
                var = flow_var(d, num_env + o)
                rows_eq.append(offset + u)
                cols_eq.append(var)
                vals_eq.append(1.0)
                rows_eq.append(offset + x)
                cols_eq.append(var)
                vals_eq.append(-1.0)
            penalty_var = flow_var(d, per_dest - 1)
            rows_eq.append(offset + u)
            cols_eq.append(penalty_var)
            vals_eq.append(1.0)
            rows_eq.append(offset + destination)
            cols_eq.append(penalty_var)
            vals_eq.append(-1.0)
            b_eq[offset + u] = 1.0
            b_eq[offset + destination] = -1.0

        A_ub = sparse.coo_matrix(
            (vals_ub, (rows_ub, cols_ub)), shape=(num_rows_ub, num_vars)
        ).tocsc()
        A_eq = sparse.coo_matrix(
            (vals_eq, (rows_eq, cols_eq)), shape=(num_rows_eq, num_vars)
        ).tocsc()
        # More than one unit of capacity is never useful for unit flows.
        bounds = [(0.0, 1.0)] * num_own + [(0.0, None)] * (num_vars - num_own)
        return _NodeLP(
            structure=structure,
            c=c,
            A_ub=A_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            b_ub_template=b_ub_template,
            bounds=bounds,
            candidates=candidates,
            num_env=num_env,
            num_targets=num_targets,
        )


#: One shared engine per live fractional game object; weak keys so games can
#: be GC'd.
_FRACTIONAL_ENGINES: "WeakKeyDictionary" = WeakKeyDictionary()


def get_fractional_engine(game) -> FractionalEngine:
    """Return the shared :class:`FractionalEngine` for ``game`` (created on first use)."""
    engine = _FRACTIONAL_ENGINES.get(game)
    if engine is None:
        engine = FractionalEngine(game)
        _FRACTIONAL_ENGINES[game] = engine
    return engine


def resolve_fractional_engine(game, engine) -> "FractionalEngine | None":
    """Resolve the tri-state ``engine`` argument of the fractional entry points.

    Mirrors :func:`repro.engine.resolve_engine`: ``False`` selects the
    reference FlowNetwork/LP path (returns ``None``), ``None`` the shared
    per-game engine, and an explicit :class:`FractionalEngine` is validated
    against ``game`` and returned as-is.  Without numpy/scipy the default
    resolves to ``None`` — cost evaluation then runs on the dependency-free
    FlowNetwork reference, and only explicit engine requests fail.
    """
    if engine is False:
        return None
    if engine is None:
        if np is None:
            return None
        return get_fractional_engine(game)
    engine.check_game(game)
    return engine


__all__ = [
    "FractionalEngine",
    "get_fractional_engine",
    "resolve_fractional_engine",
]
