"""Profile-versioned flat-array cost engine with incremental row repair.

:class:`CostEngine` owns one int-indexed CSR snapshot of the current
profile's edge set, stamped with a monotonically increasing ``version``.
Every distance the game loop needs — environment rows ``d_{G-u}(a, ·)`` for
deviation scoring, full-graph rows for ``all_costs`` — is computed by the
selected traversal backend (the list kernels of
:mod:`repro.graphs.int_kernels` or, via ``backend=``/auto-selection, the
vectorised kernels of :mod:`repro.graphs.int_kernels_np`) and cached against
that version stamp, so repeated probes of an unchanged profile (equilibrium
checks, the stable tail of a best-response walk) pay for each SSSP at most
once.

Invalidation exploits locality twice over.  When :meth:`sync` observes that
exactly one node ``u`` changed its strategy, the environment ``G - u`` is by
definition untouched (it never contained ``u``'s links), so ``u``'s cached
rows are re-stamped to the new version instead of recomputed.  Every *other*
node's rows are no longer dropped either: the engine appends the step to a
bounded edit log and, on the row's next touch, **repairs** it in place with
the dynamic-SSSP kernels (:func:`~repro.graphs.int_kernels.repair_hops_csr`
/ :func:`~repro.graphs.int_kernels.repair_dijkstra_csr`) — bounded
re-relaxation of only the region the arc changes could have reached, instead
of a fresh traversal.  A multi-node change, or a row that has fallen behind
the edit log, resets to a full recompute.  Pass ``incremental=False`` to get
the PR 3 drop-everything-but-the-mover behaviour (the baseline of
``scripts/bench_speed.py --incremental``).

Memory is bounded in *bytes*, not rows: every cached row is charged to a
:class:`~repro.engine.row_store.ChunkLedger` and whole LRU chunks are
evicted once ``memory_budget_bytes`` is exceeded (see
:meth:`CostEngine._evict_over_budget`).  On top of the cache sits the
*giant-batch* plan: :meth:`CostEngine.plan_report_prefetch` records the
whole working set of an equilibrium report up front, and the first probe of
any planned node materialises its entire chunk — potentially hundreds of
masked rows for dozens of nodes — in **one** multi-source, per-row-masked
traversal instead of one small batch per node.
"""

from __future__ import annotations

import math
import time
import warnings
import weakref
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..core.errors import InvalidProfile
from ..reliability.faults import InjectedFault, fault_fires, fault_point
from ..core.objectives import Objective
from ..core.profile import StrategyProfile
from ..graphs.int_kernels import (
    bfs_hops_csr,
    bfs_hops_csr_multi,
    build_csr,
    dijkstra_csr,
    dijkstra_csr_multi,
    repair_dijkstra_csr,
    repair_hops_csr,
    scaled_float_row,
)
from .indexed import IndexedGame
from .row_store import ChunkLedger
from .snapshot import EngineSnapshot, csr_arrays_of, csr_of

try:  # Optional vectorised backend; every path below degrades gracefully.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the minimal CI leg
    _np = None

if _np is not None:
    from ..graphs import int_kernels_np as _npk
else:  # pragma: no cover - exercised on the minimal CI leg
    _npk = None

Node = Hashable
Row = List[float]

#: How many single-node sync steps the engine remembers for lazy row repair.
#: A cached row more than this many versions behind the snapshot is dropped
#: and recomputed instead (repairing across that many edits would approach a
#: fresh traversal anyway).
REPAIR_LOG_LIMIT = 128

#: Auto backend selection thresholds: below these node counts the list
#: kernels' lower fixed overhead beats the vectorised traversals (each numpy
#: frontier round costs a handful of array dispatches regardless of size);
#: above them the per-edge Python bytecode dominates and the array sweeps
#: win, growing past 3x/5x at n=1024 (``scripts/bench_speed.py --backend``).
#: Uniform-length games cross over later because the deque BFS is leaner
#: than the binary-heap Dijkstra the weighted games are up against.
NUMPY_BACKEND_MIN_N = 128
NUMPY_BACKEND_MIN_N_UNIFORM = 256

#: Default memory budget bounds for the row cache (see
#: :func:`default_memory_budget`).
DEFAULT_BUDGET_FLOOR_BYTES = 16 * 2**20
DEFAULT_BUDGET_CAP_BYTES = 256 * 2**20

#: Target size of one giant-batch chunk: big enough to amortise the numpy
#: per-round dispatch across dozens of nodes' rows, small enough that a
#: chunk (and the traversal's transient frontier state) stays cache- and
#: budget-friendly.  Chunks are additionally capped at a quarter of the
#: engine's byte budget so the in-flight chunk can never crowd out the rest
#: of the cache.
GIANT_CHUNK_TARGET_BYTES = 64 * 2**20

#: A report plan larger than this many masked rows (an unrestricted report
#: at n ≈ 1500+ wants all n·(n-1) of them) is not planned at all — the
#: per-node prefetch path handles it and the cache budget bounds the rest.
PLAN_ROW_LIMIT = 2_000_000


def default_memory_budget(n: int) -> int:
    """Default row-cache budget in bytes for an ``n``-node game.

    Re-expresses the PR 5 row-count cap (``max(8n, 2e6/n)`` rows of ``8n``
    bytes each) in bytes, clamped to
    [:data:`DEFAULT_BUDGET_FLOOR_BYTES`, :data:`DEFAULT_BUDGET_CAP_BYTES`].
    The cap is what changes the large-``n`` story: at n = 16384 the row-count
    cap admitted ~17 GB of rows, while 256 MiB holds a giant-batch report's
    rolling working set with room to spare.
    """
    rows = max(8 * n, 2_000_000 // max(n, 1))
    return min(max(rows * n * 8, DEFAULT_BUDGET_FLOOR_BYTES), DEFAULT_BUDGET_CAP_BYTES)


def _payload_nbytes(row) -> int:
    """Byte charge of one cached row (numpy's real nbytes, 8/entry for lists)."""
    nbytes = getattr(row, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return 8 * len(row)


def resolve_backend(backend, n: int, uniform_lengths: bool = False) -> str:
    """Resolve the tri-state traversal ``backend`` selector to a concrete name.

    ``None`` / ``"auto"`` picks ``"numpy"`` when numpy is importable and the
    game has at least :data:`NUMPY_BACKEND_MIN_N` nodes
    (:data:`NUMPY_BACKEND_MIN_N_UNIFORM` for uniform-length games), else
    ``"python"``; ``"python"`` pins the list kernels (the reference);
    ``"numpy"`` insists on the array kernels and raises when numpy is
    unavailable.  Both backends produce bit-identical rows, costs, and
    traces — the selector only trades constant factors
    (``tests/test_backend_parity.py`` pins the parity).

    The ``engine.numpy-import`` fault site simulates an unavailable numpy
    without uninstalling it: an armed rule makes ``auto`` degrade to the
    list kernels and an explicit ``"numpy"`` raise the same ``ValueError``
    as a genuinely missing import.
    """
    numpy_available = _np is not None and fault_fires("engine.numpy-import") is None
    if backend is None or backend == "auto":
        threshold = NUMPY_BACKEND_MIN_N_UNIFORM if uniform_lengths else NUMPY_BACKEND_MIN_N
        if numpy_available and n >= threshold:
            return "numpy"
        return "python"
    if backend == "python":
        return "python"
    if backend == "numpy":
        if not numpy_available:
            raise ValueError(
                "backend='numpy' requires numpy, which is not installed; "
                "install numpy or pass backend='python'"
            )
        return "numpy"
    raise ValueError(
        f"unknown traversal backend {backend!r}: expected 'auto', 'numpy', or 'python'"
    )

#: Cached ``numpy.triu_indices`` pairs keyed by candidate count — shared by
#: every engine because they only depend on the count.
_TRIU_CACHE: Dict[int, tuple] = {}


def _readonly_view(array):
    """Return a write-protected view of a cached numpy vector.

    The cache keeps the writable base (repairs patch it in place via
    :meth:`CostEngine._update_combo`), so the view shares the scorer's
    staleness contract: it is only meaningful until the engine's next sync.
    Freezing it keeps caller writes from poisoning the cache.
    """
    view = array.view()
    view.setflags(write=False)
    return view


def _triu_pairs(count: int):
    pairs = _TRIU_CACHE.get(count)
    if pairs is None:
        pairs = _np.triu_indices(count, 1)
        if len(_TRIU_CACHE) > 32:  # a handful of game sizes per process
            _TRIU_CACHE.clear()
        _TRIU_CACHE[count] = pairs
    return pairs


class CostEngine:
    """Flat-array distance/cost engine bound to one game.

    The engine is stateful: :meth:`sync` points it at a profile (diffing
    against the previous one), after which :meth:`cost_of`,
    :meth:`all_costs`, and :meth:`scorer` evaluate costs against the cached
    snapshot.  All results are bit-identical to the reference
    :class:`~repro.core.best_response.DeviationOracle` / dict-BFS path; the
    parity tests in ``tests/test_engine_parity.py`` enforce this.

    ``incremental`` (default ``True``) enables lazy in-place repair of
    cached distance rows across single-node profile steps; ``False``
    restores the PR 3 behaviour of dropping every non-mover row on each
    local sync.  ``vectorized`` (default ``True``) enables the numpy-backed
    scoring fast paths; ``False`` keeps the original per-element loops.
    ``CostEngine(game, incremental=False, vectorized=False)`` therefore
    reconstructs the PR 3 engine, which is the baseline of
    ``scripts/bench_speed.py --incremental``.

    ``backend`` selects the traversal kernels (independently of the scoring
    ``vectorized`` flag): ``"python"`` pins the list kernels of
    :mod:`repro.graphs.int_kernels`, ``"numpy"`` the array kernels of
    :mod:`repro.graphs.int_kernels_np`, and ``None`` / ``"auto"`` (the
    default) picks numpy when it is importable and the game is at or above
    the size crossover (:data:`NUMPY_BACKEND_MIN_N`, or
    :data:`NUMPY_BACKEND_MIN_N_UNIFORM` for uniform-length games).  On the
    numpy backend cached rows are float64/int64 arrays instead of lists;
    every cost, regret, and trace stays bit-identical across backends, and
    results keep plain Python float types.

    ``memory_budget_bytes`` bounds the total bytes of cached rows
    (:func:`default_memory_budget` when ``None``); crossing it evicts whole
    least-recently-used chunks of nodes (:meth:`cache_bytes` /
    ``stats["chunks_evicted"]`` observe it).  ``giant_batch`` (default
    ``True``) enables :meth:`plan_report_prefetch`'s chunked giant
    traversals; ``False`` keeps the PR 5 one-batch-per-node behaviour (the
    baseline of ``scripts/bench_speed.py --backend``'s giant floors).
    Neither knob changes any computed value — both paths are bit-identical
    to the references.

    ``verify_every`` (default ``None`` = off) arms self-verification: every
    ``verify_every``-th cache *hit* recomputes the served environment row
    from scratch and compares elementwise.  A mismatch — a row corrupted
    after it was filled — is never served silently: the engine emits a
    ``RuntimeWarning``, counts it in ``stats["row_verify_failures"]``, drops
    the node's cached rows, and rebuilds from the fresh recompute
    (``stats["rows_verified"]`` counts the probes).  The engine also carries
    the ``engine.row-poison``, ``engine.forced-evict``, ``engine.chunk-build``
    and ``engine.numpy-import`` fault sites of :mod:`repro.reliability` for
    exercising these paths deterministically.
    """

    def __init__(
        self,
        game,
        incremental: bool = True,
        vectorized: bool = True,
        backend: Optional[str] = None,
        memory_budget_bytes: Optional[int] = None,
        giant_batch: bool = True,
        verify_every: Optional[int] = None,
        tables=None,
    ) -> None:
        # Only a weak back-reference to `game`: a strong one would pin the
        # WeakKeyDictionary entry in the per-game engine registry forever.
        self._game_ref = weakref.ref(game)
        # ``tables`` forwards exported static tables (see
        # repro.engine.snapshot.SnapshotTables) so pool workers skip the
        # O(n^2) probing pass; None constructs normally.
        self.indexed = IndexedGame(game, tables=tables)
        self.incremental = bool(incremental)
        self.vectorized = bool(vectorized)
        self.backend = resolve_backend(
            backend, self.indexed.n, self.indexed.uniform_lengths
        )
        # The numpy traversal state (int64 CSR views plus aligned edge
        # lengths — exact int64 when the licence holds, float64 otherwise)
        # lives inside the published EngineSnapshot; only the lazily built
        # reverse CSR the repair kernels seed from stays an engine-side
        # cache, reset by _rebuild_csr per profile version.
        self._np_traversal = self.backend == "numpy"
        self._rev_csr_np = None
        # Repair beats recompute only while the pending edits reach a small
        # part of the graph: past this many distinct net movers the affected
        # region approaches the whole row and a fresh traversal is cheaper,
        # so _ensure_current drops the rows instead.  Below n=16 a fresh BFS
        # over the tiny row is already cheaper than the kernel's bookkeeping,
        # so only edits that net out to nothing are worth replaying (limit 0).
        # Tests raise the limit to pin repair-vs-recompute parity on long
        # edit sequences.
        n = self.indexed.n
        self._repair_edit_limit = n // 8 if n >= 16 else 0
        #: Bumped on every observed profile change; all caches key on it.
        self.version = 0
        # The exact profile object of the last successful sync (profiles are
        # immutable repo-wide), for the identity no-op fast path.
        self._synced_profile: Optional[StrategyProfile] = None
        self._strategies: Optional[List[frozenset]] = None
        # The same strategies in label space (what profiles carry), kept so
        # sync can diff by frozenset equality and only re-map the nodes that
        # actually changed; and the per-node sorted CSR rows, updated the
        # same incremental way.
        self._label_strategies: Optional[List[frozenset]] = None
        self._sorted_rows: List[List[int]] = []
        # The frozen read-view of the current profile version: everything a
        # traversal consumes (CSR, lengths, synced strategies, static
        # tables).  _rebuild_csr publishes a *fresh* snapshot per sync and
        # never mutates an old one, so readers holding a snapshot are safe
        # across engine syncs; _indptr/_indices/_edge_lengths and the _np
        # mirrors below are read-through properties over it.
        self._snapshot = EngineSnapshot(
            version=0,
            indexed=self.indexed,
            indptr=[0] * (self.indexed.n + 1),
            indices=[],
            edge_lengths=None,
        )
        # In-neighbour sets of the current snapshot, maintained alongside the
        # CSR; the repair kernels seed orphaned nodes from their intact
        # in-boundary, which a forward-only CSR cannot answer.
        self._rev_rows: List[set] = [set() for _ in range(self.indexed.n)]
        # version -> (mover, mover's arcs *before* that step), for lazy
        # repair of rows that are several single-node steps behind.
        self._edits: Dict[int, Tuple[int, frozenset]] = {}
        # masked node u -> (version, {first hop a -> distance row})
        self._env_cache: Dict[int, Tuple[int, Dict[int, Row]]] = {}
        # masked node u -> (version, {first hop a -> l(u,a) + env row}); same
        # lifecycle as _env_cache, so same-version probes of a node skip even
        # the O(n)-per-hop through-row materialisation.
        self._through_cache: Dict[int, Tuple[int, Dict[int, Row]]] = {}
        # masked node u -> (version, {first hop a -> penalty-substituted
        # target slice of the through row}); the C-level scoring fast path
        # (see StrategyScorer) reduces over these directly.
        self._sub_cache: Dict[int, Tuple[int, Dict[int, Row]]] = {}
        # masked node u -> (version, {first hop a -> raw BFS hop row}); kept
        # for uniform games only, because hop repair must happen in exact int
        # space before rescaling to floats.
        self._hop_cache: Dict[int, Tuple[int, Dict[int, List[int]]]] = {}
        # node u -> {target node -> position in u's target row} (lazy), for
        # patching substituted slices after a repair.
        self._target_pos: Dict[int, Dict[int, int]] = {}
        # masked node u -> (version, (size, candidates), cost vector): the
        # batched costs of *every* candidate strategy of u against its
        # environment.  The vector depends only on the environment, so it
        # survives u's own strategy changes, and a repair that touches
        # nothing re-stamps it — an equilibrium recheck after one deviation
        # then skips almost all scoring work.
        self._combo_cache: Dict[int, Tuple[int, tuple, object]] = {}
        # Byte budget for cached rows (environment rows plus the derived
        # through / substituted / hop rows and combination vectors): a full
        # equilibrium check wants all rows live (total reuse), but at large n
        # that is O(n^2) bytes per dozen nodes, so every cached payload is
        # charged to the chunk ledger and whole least-recently-used chunks
        # are evicted once the budget is crossed.  Nodes filled together by
        # one giant-batch traversal share a chunk and are evicted together
        # (their rows are views into one backing matrix, so only a full-chunk
        # drop actually releases memory).
        self.memory_budget_bytes = (
            int(memory_budget_bytes)
            if memory_budget_bytes is not None
            else default_memory_budget(self.indexed.n)
        )
        self.giant_batch = bool(giant_batch)
        # Self-verification sampling: every `verify_every`-th cache *hit*
        # recomputes the served row from scratch and compares elementwise.
        # A mismatch means the cached copy was corrupted after it was filled
        # (a "poisoned" row); the engine warns, drops the node's caches, and
        # rebuilds — it never silently serves the bad row again.
        if verify_every is not None and verify_every < 1:
            raise ValueError(
                f"verify_every must be at least 1 (got {verify_every})"
            )
        self.verify_every = verify_every
        self._verify_probes = 0
        self._ledger = ChunkLedger()
        # Nodes that lost cached rows to *budget* eviction (not staleness):
        # their next fill is a recompute the repair path could not have
        # served, surfaced as stats["evicted_recomputes"].
        self._evicted_nodes: Set[int] = set()
        # Giant-batch report plan: valid only while _plan_version matches the
        # snapshot version.  _plan_chunks holds (node, wanted first hops)
        # groups sized against GIANT_CHUNK_TARGET_BYTES; _plan_chunk_of maps
        # each planned node to its chunk index until the chunk runs.
        self._plan_version = -1
        self._plan_chunks: List[List[Tuple[int, List[int]]]] = []
        self._plan_chunk_of: Dict[int, int] = {}
        # Nodes whose warm through dict was already counted into rows_reused
        # at the current version (so repeated probes do not inflate the stat).
        self._reuse_counted: set = set()
        # (version, {label: cost}) for the whole profile
        self._all_costs_cache: Optional[Tuple[int, Dict[Node, float]]] = None
        #: Cache observability: how many environment rows were computed,
        #: served from cache, or repaired in place, and how each sync
        #: classified its diff.
        self.stats: Dict[str, int] = {
            "rows_computed": 0,
            "rows_reused": 0,
            "rows_repaired": 0,
            "rows_evicted": 0,
            "chunks_evicted": 0,
            "giant_batch_traversals": 0,
            "giant_batch_rows": 0,
            "evicted_recomputes": 0,
            "noop_syncs": 0,
            "local_syncs": 0,
            "full_syncs": 0,
            "rows_verified": 0,
            "row_verify_failures": 0,
            "chunk_build_failures": 0,
        }
        #: Wall-clock seconds spent inside batched traversal kernels (giant
        #: chunks, per-node prefetch, all_costs sweeps) — the bench profile's
        #: traversal-vs-scoring split reads this.
        self.timings: Dict[str, float] = {"traversal_seconds": 0.0}

    def cache_bytes(self) -> int:
        """Current bytes of cached rows charged against the memory budget."""
        return self._ledger.bytes

    def snapshot_stats(self) -> Dict[str, float]:
        """Return the counters plus the live cache/budget/timing gauges.

        ``stats`` itself stays a plain mutable dict (call sites index and
        reset it); this adds the point-in-time gauges the bench prints:
        ``cache_bytes``, ``memory_budget_bytes``, and ``traversal_seconds``.
        """
        snapshot: Dict[str, float] = dict(self.stats)
        snapshot["cache_bytes"] = self.cache_bytes()
        snapshot["memory_budget_bytes"] = self.memory_budget_bytes
        snapshot["traversal_seconds"] = self.timings["traversal_seconds"]
        return snapshot

    def check_game(self, game) -> None:
        """Raise ``ValueError`` when this engine was built for a different game.

        Two games with the same node count but different weights or lengths
        would otherwise sync successfully and score against the wrong
        snapshot; call sites that accept an explicit engine guard with this.
        """
        if self._game_ref() is not game:
            raise ValueError(
                "this CostEngine was built for a different game instance; "
                "create one with CostEngine(game) or use repro.engine.get_engine(game)"
            )

    # ------------------------------------------------------------------ #
    # Profile synchronisation
    # ------------------------------------------------------------------ #
    def sync(self, profile: StrategyProfile) -> Optional[Tuple[int, ...]]:
        """Point the engine at ``profile``, invalidating as little as possible.

        Diffs the profile against the current snapshot: no change keeps the
        version (full cache reuse); a single-node change bumps the version,
        preserves the mover's own environment rows (``G - u`` does not
        contain ``u``'s links) and, in incremental mode, records the step in
        the edit log so every other node's still-cached rows can be repaired
        in place on their next touch; anything larger resets all caches.

        Returns the dense int ids of the nodes whose strategies changed —
        ``()`` for a no-op sync — or ``None`` on the first sync, when there
        is no previous snapshot to diff against, so callers and
        instrumentation can see how a profile step was classified.  (The
        sweep layer diffs against :meth:`snapshot_strategies` instead: its
        memo validity depends on *its* last profile, and a shared engine may
        have been synced elsewhere in between.)
        """
        indexed = self.indexed
        # Identity fast path: profiles are immutable throughout the repo, so
        # re-syncing the very object the snapshot came from cannot change
        # anything — and it is the overwhelmingly common case (equilibrium
        # checks sync the same profile once per node).
        if profile is self._synced_profile:
            self.stats["noop_syncs"] += 1
            return ()
        if len(profile) != indexed.n:
            raise InvalidProfile("profile nodes do not match the game's node set")
        index = indexed.index
        raw = [profile.strategy(label) for label in indexed.labels]

        old_raw = self._label_strategies
        if old_raw is not None:
            # Diff in label space: distinct labels map to distinct ints, so
            # frozenset equality agrees with the int view and only the
            # changed nodes need the label->int remap below.  The C-level
            # list comparison decides the (very common) no-op case without a
            # Python-loop diff — equilibrium checks sync once per node.
            if raw == old_raw:
                self.stats["noop_syncs"] += 1
                self._synced_profile = profile
                return ()
            changed = [u for u in range(indexed.n) if raw[u] != old_raw[u]]
            if not changed:
                self.stats["noop_syncs"] += 1
                self._synced_profile = profile
                return ()
        else:
            changed = None

        old_arcs: List[frozenset] = []
        try:
            if changed is None:
                self._strategies = [
                    frozenset(index[target] for target in targets) for targets in raw
                ]
            else:
                # Remap fully before mutating so an unknown-target failure
                # leaves the engine exactly on its previous snapshot.
                remapped = [
                    frozenset(index[target] for target in raw[u]) for u in changed
                ]
                old_arcs = [self._strategies[u] for u in changed]
                for u, strategy in zip(changed, remapped):
                    self._strategies[u] = strategy
        except KeyError as exc:
            raise InvalidProfile(
                f"profile buys a link to unknown node {exc.args[0]!r}"
            ) from exc

        self._label_strategies = raw
        self.version += 1
        # Any real profile change invalidates an outstanding report plan:
        # its wanted rows were computed against the previous snapshot.
        self._clear_plan()
        if changed is not None:
            # Keep the in-neighbour view in lockstep with the CSR: only the
            # changed nodes' arcs moved.
            rev = self._rev_rows
            for u, old in zip(changed, old_arcs):
                new = self._strategies[u]
                for a in old - new:
                    rev[a].discard(u)
                for a in new - old:
                    rev[a].add(u)
        self._rebuild_csr(changed)
        self._all_costs_cache = None
        self._reuse_counted.clear()
        if changed is not None and len(changed) == 1:
            self.stats["local_syncs"] += 1
            changed_node = changed[0]
            if self.incremental:
                self._edits[self.version] = (changed_node, old_arcs[0])
                if len(self._edits) > REPAIR_LOG_LIMIT:
                    del self._edits[min(self._edits)]
                # The mover's masked rows never contained its own arcs: when
                # they were current a moment ago, re-stamp them eagerly so
                # sweep-style probes of the mover stay entirely free.  Rows
                # further behind are left stale for lazy repair (the edit log
                # replay skips the mover's own steps anyway).
                for cache in self._row_caches():
                    entry = cache.get(changed_node)
                    if entry is not None and entry[0] == self.version - 1:
                        cache[changed_node] = (self.version, entry[1])
                combo = self._combo_cache.get(changed_node)
                if combo is not None and combo[0] == self.version - 1:
                    self._combo_cache[changed_node] = (
                        self.version, combo[1], combo[2]
                    )
            else:
                kept = [
                    (cache, cache.get(changed_node)) for cache in self._row_caches()
                ]
                kept_combo = self._combo_cache.get(changed_node)
                self._clear_row_caches()
                for cache, entry in kept:
                    if entry is not None:
                        cache[changed_node] = (self.version, entry[1])
                        for row in entry[1].values():
                            self._ledger.add(changed_node, _payload_nbytes(row))
                if kept_combo is not None:
                    self._combo_cache[changed_node] = (
                        self.version, kept_combo[1], kept_combo[2]
                    )
                    self._ledger.add(changed_node, _payload_nbytes(kept_combo[2]))
        else:
            self.stats["full_syncs"] += 1
            self._clear_row_caches()
            self._edits.clear()
        self._synced_profile = profile
        return tuple(changed) if changed is not None else None

    def _clear_row_caches(self) -> None:
        self._env_cache.clear()
        self._through_cache.clear()
        self._sub_cache.clear()
        self._hop_cache.clear()
        self._combo_cache.clear()
        self._ledger.clear()
        self._evicted_nodes.clear()

    def _rebuild_csr(self, changed: Optional[List[int]] = None) -> None:
        indexed = self.indexed
        strategies = self._strategies
        if changed is None:
            self._sorted_rows = [sorted(strategies[u]) for u in range(indexed.n)]
            rev: List[set] = [set() for _ in range(indexed.n)]
            for u, row in enumerate(self._sorted_rows):
                for v in row:
                    rev[v].add(u)
            self._rev_rows = rev
        else:
            for u in changed:
                self._sorted_rows[u] = sorted(strategies[u])
        rows = self._sorted_rows
        indptr, indices = build_csr(rows)
        edge_lengths: Optional[List[float]] = None
        if not indexed.uniform_lengths:
            lengths: List[float] = []
            for u, row in enumerate(rows):
                length_row = indexed.length_rows[u]
                lengths.extend(length_row[v] for v in row)
            edge_lengths = lengths
        indptr_np = indices_np = edge_lengths_np = edge_lengths_exact_np = None
        if self._np_traversal:
            indptr_np, indices_np = _npk.csr_arrays(indptr, indices)
            if not indexed.uniform_lengths:
                edge_lengths_np = _np.asarray(edge_lengths, dtype=_np.float64)
                # Integer-valued lengths run the fresh traversals in exact
                # int64 space; repairs patch the float rows directly (their
                # entries are those same integers in float form).
                edge_lengths_exact_np = (
                    edge_lengths_np.astype(_np.int64)
                    if indexed.integral_lengths
                    else None
                )
            self._rev_csr_np = None
        # Publish the new read-view atomically: one fresh frozen object per
        # version, never a mutation of the previous one — snapshots handed
        # out earlier stay internally consistent forever.
        strategies = self._strategies
        label_strategies = self._label_strategies
        self._snapshot = EngineSnapshot(
            version=self.version,
            indexed=indexed,
            indptr=indptr,
            indices=indices,
            edge_lengths=edge_lengths,
            indptr_np=indptr_np,
            indices_np=indices_np,
            edge_lengths_np=edge_lengths_np,
            edge_lengths_exact_np=edge_lengths_exact_np,
            strategies=None if strategies is None else tuple(strategies),
            label_strategies=(
                None if label_strategies is None else tuple(label_strategies)
            ),
        )

    # ------------------------------------------------------------------ #
    # Snapshot read-throughs
    # ------------------------------------------------------------------ #
    def snapshot(self) -> EngineSnapshot:
        """Return the frozen read-view of the current profile version.

        The returned object is immutable and remains valid (and internally
        consistent) after further :meth:`sync` calls — later syncs publish
        *new* snapshots rather than mutating this one.  It is the only
        engine state the kernels and the sweep layer consume.
        """
        return self._snapshot

    @property
    def _indptr(self) -> List[int]:
        return self._snapshot.indptr

    @property
    def _indices(self) -> List[int]:
        return self._snapshot.indices

    @property
    def _edge_lengths(self) -> Optional[List[float]]:
        return self._snapshot.edge_lengths

    @property
    def _indptr_np(self):
        return self._snapshot.indptr_np

    @property
    def _indices_np(self):
        return self._snapshot.indices_np

    @property
    def _edge_lengths_np(self):
        return self._snapshot.edge_lengths_np

    @property
    def _edge_lengths_exact_np(self):
        return self._snapshot.edge_lengths_exact_np

    def _rev_csr(self):
        """Return the current snapshot's reverse CSR (numpy backend, lazy).

        Built at most once per profile version and shared by every row repair
        at that version; ``_rebuild_csr`` resets it on each sync.
        """
        if self._rev_csr_np is None:
            indptr_np, indices_np, _, _ = csr_arrays_of(self._snapshot)
            self._rev_csr_np = _npk.reverse_csr(indptr_np, indices_np, self.indexed.n)
        return self._rev_csr_np

    def _require_sync(self) -> None:
        if self._strategies is None:
            raise InvalidProfile("CostEngine.sync(profile) must be called first")

    def snapshot_strategies(self) -> Optional[List[frozenset]]:
        """Return the synced profile's per-node strategies in label space.

        ``None`` before the first sync; indexed by dense node id, in the
        same order as :attr:`IndexedGame.labels`.  This is the snapshot the
        sweep layer compares against to decide whether a node's masked
        ``d_{G-u}`` rows are still valid without forcing a sync.  Readers
        that also want the CSR should take :meth:`snapshot` instead — the
        frozen view carries the same strategies plus everything else.
        """
        return self._label_strategies

    # ------------------------------------------------------------------ #
    # Lazy repair
    # ------------------------------------------------------------------ #
    def _row_caches(self) -> Tuple[Dict[int, Tuple[int, dict]], ...]:
        return (self._env_cache, self._through_cache, self._sub_cache, self._hop_cache)

    def _drop_node(self, u: int) -> int:
        """Remove every cached row of masked node ``u``; returns rows dropped.

        Eviction is always node-granular: a node loses its environment rows
        and every derived (through / substituted / hop / combination) row in
        one stroke.  That is what keeps eviction repair-compatible — the
        engine never holds a derived row whose environment base is gone, so
        a later :meth:`_repair_node` can never patch values whose base row
        was silently recomputed from a different version.
        """
        dropped = 0
        for cache in self._row_caches():
            entry = cache.pop(u, None)
            if entry is not None:
                dropped += len(entry[1])
        if self._combo_cache.pop(u, None) is not None:
            dropped += 1
        self._ledger.remove(u)
        return dropped

    def _evict_over_budget(self, keep: Optional[Set[int]] = None) -> None:
        """Evict whole least-recently-used chunks until back under budget.

        The chunk(s) containing nodes in ``keep`` — the caller's in-flight
        working set, typically the node being probed or the giant-batch
        chunk just filled — are exempt, so the cache may transiently exceed
        the budget by at most that working set (chunk sizing caps it at a
        quarter of the budget).  Evicted nodes are remembered so their next
        fill is surfaced as an eviction-forced recompute.
        """
        ledger = self._ledger
        budget = self.memory_budget_bytes
        while ledger.bytes > budget:
            victims = ledger.lru_nodes(exempt=keep)
            if victims is None:
                break
            for node in victims:
                self.stats["rows_evicted"] += self._drop_node(node)
                self._evicted_nodes.add(node)
            self.stats["chunks_evicted"] += 1

    def _repairable(self, entry_version: int) -> bool:
        if not self.incremental:
            return False
        edits = self._edits
        if self.version - entry_version > len(edits):
            return False
        return all(v in edits for v in range(entry_version + 1, self.version + 1))

    def _ensure_current(self, u: int) -> None:
        """Bring masked node ``u``'s cached rows up to the current version.

        Still-current entries are untouched; stale entries within the edit
        log are repaired in place (the invalidation contract's repair step);
        anything older is dropped so the normal compute path refills it.
        """
        entry = self._env_cache.get(u)
        if entry is not None:
            if entry[0] == self.version:
                self._ledger.touch(u)
                return
            if self._repairable(entry[0]):
                edits = self._pending_edits(u, entry[0])
                if edits is not None:
                    self._repair_node(u, entry, edits)
                    self._ledger.touch(u)
                    return
            self.stats["rows_evicted"] += self._drop_node(u)
            return
        # No environment rows: any stale derived rows are unusable on their
        # own (they cannot be repaired without the env rows they came from).
        dropped = 0
        freed = 0
        for cache in (self._through_cache, self._sub_cache, self._hop_cache):
            stale = cache.get(u)
            if stale is not None and stale[0] != self.version:
                del cache[u]
                dropped += len(stale[1])
                freed += sum(_payload_nbytes(row) for row in stale[1].values())
        combo = self._combo_cache.get(u)
        if combo is not None and combo[0] != self.version:
            del self._combo_cache[u]
            dropped += 1
            freed += _payload_nbytes(combo[2])
        self._ledger.deduct(u, freed)
        self.stats["rows_evicted"] += dropped

    def _pending_edits(
        self, u: int, entry_version: int
    ) -> Optional[List[Tuple[int, tuple, tuple]]]:
        """Collapse the edit log since ``entry_version`` into net per-mover diffs.

        Replaying in one shot (rather than edit by edit) is what makes
        multi-step repair correct: each intermediate graph only existed
        transiently, but the kernels compare the row's *origin* graph with
        the *current* one directly.  A node that moved away and back nets
        out to nothing; the masked node ``u``'s own steps are skipped
        because ``G - u`` never contained its arcs.

        Returns ``None`` once the distinct movers exceed the repair budget —
        the affected region would approach the whole row, so the caller
        recomputes instead.
        """
        cap = self._repair_edit_limit + 1  # u's own steps are free to skip
        origin: Dict[int, frozenset] = {}
        for version in range(entry_version + 1, self.version + 1):
            mover, arcs_before = self._edits[version]
            if mover not in origin:
                if len(origin) >= cap:
                    return None
                origin[mover] = arcs_before
        edits: List[Tuple[int, tuple, tuple]] = []
        for mover, arcs_before in origin.items():
            if mover == u:
                continue
            arcs_now = self._strategies[mover]
            if arcs_now != arcs_before:
                edits.append(
                    (mover, tuple(arcs_before - arcs_now), tuple(arcs_now - arcs_before))
                )
        if len(edits) > self._repair_edit_limit:
            return None
        return edits

    def _repair_node(
        self,
        u: int,
        entry: Tuple[int, Dict[int, Row]],
        edits: List[Tuple[int, tuple, tuple]],
    ) -> None:
        version = self.version
        entry_version, env_rows = entry
        indexed = self.indexed

        def live(cache):
            stale = cache.get(u)
            if stale is None:
                return None
            if stale[0] != entry_version:  # pragma: no cover - defensive
                del cache[u]
                self._ledger.deduct(
                    u, sum(_payload_nbytes(row) for row in stale[1].values())
                )
                return None
            return stale[1]

        through_rows = live(self._through_cache)
        sub_rows = live(self._sub_cache)
        hop_rows = live(self._hop_cache)

        rows_changed = False
        changed_hops: List[int] = []
        if edits:
            n = indexed.n
            snap = self._snapshot
            indptr, indices, edge_lengths = csr_of(snap)
            rev = self._rev_rows
            uniform = indexed.uniform_lengths
            unit = indexed.unit_length
            penalty = indexed.penalty
            length_row_u = indexed.length_rows[u]
            inf = math.inf
            use_np = self._np_traversal
            if use_np:
                indptr_np, indices_np, edge_lengths_np, _ = csr_arrays_of(snap)
                rev_indptr, rev_tails = self._rev_csr()
                length_matrix = None if uniform else indexed.length_matrix()
            positions: Optional[Dict[int, int]] = None
            for first_hop, row in env_rows.items():
                hop_row = hop_rows.get(first_hop) if hop_rows is not None else None
                if uniform and hop_row is None:  # pragma: no cover - defensive
                    hop_row = bfs_hops_csr(indptr, indices, n, first_hop, u)
                    touched = range(n)
                    row[:] = scaled_float_row(hop_row, unit)
                    if hop_rows is not None:
                        hop_rows[first_hop] = hop_row
                elif uniform:
                    if use_np:
                        touched = _npk.repair_hops_csr_np(
                            indptr_np, indices_np, hop_row,
                            first_hop, edits, rev_indptr, rev_tails, u,
                        )
                    else:
                        touched = repair_hops_csr(
                            indptr, indices, hop_row, first_hop, edits, rev, u
                        )
                    for t in touched:
                        h = hop_row[t]
                        row[t] = float(h) * unit if h >= 0 else inf
                elif use_np:
                    touched = _npk.repair_dijkstra_csr_np(
                        indptr_np, indices_np, edge_lengths_np,
                        row, first_hop, edits, rev_indptr, rev_tails,
                        length_matrix, u,
                    )
                else:
                    touched = repair_dijkstra_csr(
                        indptr,
                        indices,
                        edge_lengths,
                        row,
                        first_hop,
                        edits,
                        rev,
                        indexed.length_rows,
                        u,
                    )
                self.stats["rows_repaired"] += 1
                if not touched:
                    continue
                rows_changed = True
                changed_hops.append(first_hop)
                hop_length = length_row_u[first_hop]
                through_row = (
                    through_rows.get(first_hop) if through_rows is not None else None
                )
                if through_row is not None:
                    # float() keeps list-backed through rows plain Python
                    # floats when `row` is a numpy-backend float64 array
                    # (same bits, different box).
                    for t in touched:
                        through_row[t] = float(hop_length + row[t])
                # Substituted slices are patched straight from the repaired
                # env row (the numpy sub fast path never materialises a
                # through row, so a sub row may exist without one).
                sub_row = sub_rows.get(first_hop) if sub_rows is not None else None
                if sub_row is not None:
                    if positions is None:
                        positions = self._target_positions(u)
                    for t in touched:
                        i = positions.get(t)
                        if i is not None:
                            d = float(hop_length + row[t])
                            sub_row[i] = d if d < inf else penalty

        for cache in self._row_caches():
            stale = cache.get(u)
            if stale is not None:
                cache[u] = (version, stale[1])
        combo = self._combo_cache.get(u)
        if combo is not None:
            if not rows_changed:
                # No row value moved, so the batched cost vector of every
                # candidate strategy against u's environment is still exact.
                self._combo_cache[u] = (version, combo[1], combo[2])
            elif sub_rows is not None and self._update_combo(
                combo, changed_hops, sub_rows
            ):
                self._combo_cache[u] = (version, combo[1], combo[2])
            else:
                del self._combo_cache[u]
                self._ledger.deduct(u, _payload_nbytes(combo[2]))

    def _update_combo(
        self,
        combo: Tuple[int, tuple, object],
        changed_hops: List[int],
        sub_rows: Dict[int, Row],
    ) -> bool:
        """Patch a cached combination cost vector after a row repair, in place.

        Only the combinations containing a changed first hop can have moved,
        so their entries are re-reduced from the (already patched)
        substituted rows — bit-identical to a full rebuild, at a cost
        proportional to the changed hops.  Returns ``False`` when patching
        would not pay off (too many hops moved, or a needed row is gone), in
        which case the caller drops the vector instead.
        """
        size, candidates = combo[1]
        vector = combo[2]
        count = len(candidates)
        if 3 * len(changed_hops) > count:
            return False
        index_of = {c: i for i, c in enumerate(candidates)}
        if size == 1:
            for hop in changed_hops:
                i = index_of.get(hop)
                if i is None:
                    continue
                row = sub_rows.get(hop)
                if row is None:
                    return False
                vector[i] = row.sum()
            return True
        rows = []
        for c in candidates:
            row = sub_rows.get(c)
            if row is None:
                return False
            rows.append(row)
        matrix = _np.stack(rows)
        left, right = _triu_pairs(count)
        for hop in changed_hops:
            i = index_of.get(hop)
            if i is None:
                continue
            mask = (left == i) | (right == i)
            partners = _np.where(left[mask] == i, right[mask], left[mask])
            vector[mask] = _np.minimum(matrix[i], matrix[partners]).sum(axis=1)
        return True

    def _target_positions(self, u: int) -> Dict[int, int]:
        positions = self._target_pos.get(u)
        if positions is None:
            positions = {t: i for i, t in enumerate(self.indexed.target_rows[u])}
            self._target_pos[u] = positions
        return positions

    # ------------------------------------------------------------------ #
    # Giant-batch report plan
    # ------------------------------------------------------------------ #
    def _clear_plan(self) -> None:
        self._plan_version = -1
        self._plan_chunks = []
        self._plan_chunk_of = {}

    def plan_report_prefetch(self, profile: StrategyProfile, candidates=None) -> int:
        """Plan one report's whole row working set for giant-batch execution.

        ``candidates`` mirrors :func:`repro.core.equilibrium
        .equilibrium_report`'s restriction dict ``{label: candidate
        labels}``; ``None`` (or a missing node) means every other node.  Per
        node the wanted first hops are its candidates plus its current arcs
        — exactly the set the per-node prefetch in ``_resolve_scorer`` would
        request — grouped into byte-bounded chunks.  The first subsequent
        probe of any planned node (via :meth:`env_row` or
        :meth:`prefetch_env_rows`, on either backend) computes its entire
        chunk in one multi-source per-row-masked traversal.

        Returns the number of planned rows; 0 when planning is off
        (``giant_batch=False``), the plan would exceed
        :data:`PLAN_ROW_LIMIT`, or there is nothing to plan.  Rows, costs,
        and traces are bit-identical with or without a plan — only *when*
        rows are computed changes.  The plan dies with the snapshot: any
        profile change clears it.
        """
        self.sync(profile)
        self._clear_plan()
        if not self.giant_batch:
            return 0
        indexed = self.indexed
        index = indexed.index
        n = indexed.n
        strategies = self._strategies
        pairs: List[Tuple[int, List[int]]] = []
        total = 0
        for u, label in enumerate(indexed.labels):
            raw = candidates.get(label) if candidates is not None else None
            if raw is None:
                wanted = [a for a in range(n) if a != u]
            else:
                wanted = []
                for target in raw:
                    a = index.get(target)
                    if a is not None and a != u:
                        wanted.append(a)
            for a in strategies[u]:
                wanted.append(a)
            hops = list(dict.fromkeys(wanted))
            if not hops:
                continue
            total += len(hops)
            if total > PLAN_ROW_LIMIT:
                self._clear_plan()
                return 0
            pairs.append((u, hops))
        self._install_plan(pairs)
        return total

    def _install_plan(self, pairs: List[Tuple[int, List[int]]]) -> None:
        """Group the planned ``(node, hops)`` pairs into byte-bounded chunks.

        A chunk targets :data:`GIANT_CHUNK_TARGET_BYTES` of stored rows
        (capped at a quarter of the byte budget so a just-filled chunk never
        forces the rest of the cache out); weighted games additionally cap
        the rows per traversal so the Dijkstra kernel's transient per-round
        ``(rows, edges)`` candidate matrix stays bounded.  A single node's
        rows never split across chunks, so one oversized node simply gets a
        chunk to itself.
        """
        indexed = self.indexed
        n = indexed.n
        uniform = indexed.uniform_lengths
        # Stored bytes per row: env float row, plus the hop row kept for
        # repair on uniform games (int16 from the fused numpy kernel, list
        # ints on the python fallback — the estimate only shapes chunks; the
        # ledger charges actual payload bytes).
        if uniform:
            per_row = 10 * n if self._np_traversal else 16 * n
        else:
            per_row = 8 * n
        limit = max(
            per_row, min(GIANT_CHUNK_TARGET_BYTES, self.memory_budget_bytes // 4)
        )
        row_cap = None
        if not uniform:
            # The Dijkstra kernel's per-round cost is dominated by the
            # (rows, frontier edges) candidate matrix, and converged rows
            # keep paying it until the whole chunk settles — so unlike BFS
            # (bit-parallel, flat per-row cost in the chunk size), weighted
            # chunks get *cheaper* per row as they shrink, down to dispatch
            # overhead.  Measured on 2-out-degree games at n in {1k, 4k},
            # 32-48 rows per traversal is the sweet spot (at or below the
            # per-node batch cost); scale down as the edge count grows.
            edges = max(1, len(self._indices))
            row_cap = max(12, min(48, (1 << 19) // edges))
        chunks: List[List[Tuple[int, List[int]]]] = []
        current: List[Tuple[int, List[int]]] = []
        current_bytes = 0
        current_rows = 0
        for u, hops in pairs:
            nbytes = len(hops) * per_row
            if current and (
                current_bytes + nbytes > limit
                or (row_cap is not None and current_rows + len(hops) > row_cap)
            ):
                chunks.append(current)
                current, current_bytes, current_rows = [], 0, 0
            current.append((u, hops))
            current_bytes += nbytes
            current_rows += len(hops)
        if current:
            chunks.append(current)
        self._plan_chunks = chunks
        self._plan_chunk_of = {
            u: i for i, chunk in enumerate(chunks) for u, _ in chunk
        }
        self._plan_version = self.version

    def _maybe_run_plan(self, u: int) -> None:
        """Run ``u``'s planned chunk now, if a current-version plan holds one."""
        if self._plan_version != self.version:
            return
        chunk_index = self._plan_chunk_of.get(u)
        if chunk_index is None:
            return
        chunk = self._plan_chunks[chunk_index]
        self._plan_chunks[chunk_index] = []
        for member, _ in chunk:
            self._plan_chunk_of.pop(member, None)
        try:
            self._run_plan_chunk(u, chunk)
        except InjectedFault:
            # Graceful degradation: a failed giant-chunk build (the
            # `engine.chunk-build` fault site) is absorbed here — the chunk's
            # bookkeeping is already cleared above, so every member simply
            # falls through to the per-node fill path, which is bit-identical
            # to the batched one.
            self.stats["chunk_build_failures"] += 1

    def _run_plan_chunk(self, u: int, chunk: List[Tuple[int, List[int]]]) -> None:
        """Fill every missing planned row of ``chunk`` in one giant traversal.

        All members' missing ``(mask, source)`` pairs go through a single
        multi-source per-row-masked kernel call; the members are then
        grouped into one ledger chunk so they age and evict together.  Rows
        already cached (or repaired current by :meth:`_ensure_current`) are
        left untouched, which keeps the fill bit-identical to the per-row
        path.
        """
        fault_point("engine.chunk-build", key=u)
        indexed = self.indexed
        n = indexed.n
        uniform = indexed.uniform_lengths
        version = self.version
        row_dicts: Dict[int, Dict[int, Row]] = {}
        hop_dicts: Dict[int, Dict[int, List[int]]] = {}
        work: List[Tuple[int, int]] = []
        for member, hops in chunk:
            self._ensure_current(member)
            entry = self._env_cache.get(member)
            if entry is None:
                rows: Dict[int, Row] = {}
                self._env_cache[member] = (version, rows)
            else:
                rows = entry[1]
            row_dicts[member] = rows
            if uniform:
                hop_entry = self._hop_cache.get(member)
                if hop_entry is None:
                    hop_rows: Dict[int, List[int]] = {}
                    self._hop_cache[member] = (version, hop_rows)
                else:
                    hop_rows = hop_entry[1]
                hop_dicts[member] = hop_rows
            for a in hops:
                if a not in rows:
                    work.append((member, a))
        members = [member for member, _ in chunk]
        if work:
            sources = [a for _, a in work]
            masks = [member for member, _ in work]
            start = time.perf_counter()
            scaled = None
            snap = self._snapshot
            if self._np_traversal:
                indptr_np, indices_np, lengths_np, exact = csr_arrays_of(snap)
                if uniform:
                    # Fused form: the kernel assembles the scaled float rows
                    # from its narrow internal counter, saving a full pass
                    # over the int64 hop matrix per giant chunk.
                    matrix, scaled = _npk.bfs_hops_csr_multi(
                        indptr_np, indices_np, n, sources, masks,
                        scale_unit=indexed.unit_length,
                    )
                else:
                    lengths = exact if exact is not None else lengths_np
                    matrix = _npk.dijkstra_csr_multi(
                        indptr_np, indices_np, lengths, n, sources, masks
                    )
                    if exact is not None:
                        matrix = _npk.int_to_float_rows(matrix)
            elif uniform:
                indptr, indices, _ = csr_of(snap)
                matrix = bfs_hops_csr_multi(indptr, indices, n, sources, masks)
                scaled = [
                    scaled_float_row(hop_row, indexed.unit_length)
                    for hop_row in matrix
                ]
            else:
                indptr, indices, edge_lengths = csr_of(snap)
                matrix = dijkstra_csr_multi(
                    indptr, indices, edge_lengths, n, sources, masks
                )
            self.timings["traversal_seconds"] += time.perf_counter() - start
            per_node_bytes: Dict[int, int] = {}
            refilled = set()
            # Every stored row has length n, so the per-row byte cost is one
            # computation, not one per row.
            if uniform:
                nbytes = _payload_nbytes(matrix[0]) + _payload_nbytes(scaled[0])
            else:
                nbytes = _payload_nbytes(matrix[0])
            for i, (member, a) in enumerate(work):
                if uniform:
                    hop_dicts[member][a] = matrix[i]
                    row = scaled[i]
                else:
                    row = matrix[i]
                row_dicts[member][a] = row
                per_node_bytes[member] = per_node_bytes.get(member, 0) + nbytes
                if member in self._evicted_nodes:
                    refilled.add(member)
                    self.stats["evicted_recomputes"] += 1
            self._evicted_nodes.difference_update(refilled)
            for member, nbytes in per_node_bytes.items():
                self._ledger.add(member, nbytes)
            self.stats["rows_computed"] += len(work)
            self.stats["giant_batch_traversals"] += 1
            self.stats["giant_batch_rows"] += len(work)
        # One ledger chunk for the whole batch, exempt from the eviction its
        # own bytes may trigger.
        self._ledger.group(members)
        if self._ledger.bytes > self.memory_budget_bytes:
            self._evict_over_budget(keep=set(members))

    # ------------------------------------------------------------------ #
    # Distance rows
    # ------------------------------------------------------------------ #
    def _compute_row(self, source: int, forbidden: int) -> Row:
        indexed = self.indexed
        snap = self._snapshot
        if indexed.uniform_lengths:
            if self._np_traversal:
                indptr_np, indices_np, _, _ = csr_arrays_of(snap)
                hops_np = _npk.bfs_hops_csr_np(
                    indptr_np, indices_np, indexed.n, source, forbidden
                )
                return _npk.scaled_float_rows(hops_np, indexed.unit_length)
            indptr, indices, _ = csr_of(snap)
            hops = bfs_hops_csr(indptr, indices, indexed.n, source, forbidden)
            return scaled_float_row(hops, indexed.unit_length)
        if self._np_traversal:
            return self._dijkstra_row_np(source, forbidden)
        indptr, indices, edge_lengths = csr_of(snap)
        return dijkstra_csr(
            indptr,
            indices,
            edge_lengths,
            indexed.n,
            source,
            forbidden,
        )

    def _dijkstra_row_np(self, source: int, forbidden: int):
        """One weighted row via the frontier kernel, as a float64 array.

        Integer-valued lengths traverse in exact int64 space and convert once
        at the end (``float(int)`` is exact under the
        :attr:`IndexedGame.integral_lengths` gate); other lengths traverse in
        float64, which reproduces the heap kernel's labels bit for bit.
        """
        indptr_np, indices_np, lengths_np, exact = csr_arrays_of(self._snapshot)
        if exact is not None:
            dist = _npk.dijkstra_csr_np(
                indptr_np, indices_np, exact,
                self.indexed.n, source, forbidden,
            )
            return _npk.int_to_float_rows(dist)
        return _npk.dijkstra_csr_np(
            indptr_np, indices_np, lengths_np,
            self.indexed.n, source, forbidden,
        )

    def env_row(self, u: int, first_hop: int) -> Row:
        """Return ``d_{G-u}(first_hop, ·)`` as a dense float row (``inf`` = unreachable).

        Rows are cached per ``(version, u)``; within one version each first
        hop costs at most one SSSP no matter how many strategies probe it,
        and rows stranded at an older version by single-node syncs are
        repaired in place before use.

        The returned row is the *cached object itself* — shared read-only by
        contract (lint rule RPR006).  Callers never mutate it: scorers copy
        before patching (see :meth:`StrategyScorer._through_row`), and a
        mutated return would corrupt every later read at this version.
        """
        self._require_sync()
        self._maybe_run_plan(u)
        if fault_fires("engine.forced-evict", key=u) is not None:
            # Adversarial-eviction fault site: drop the least-recently-used
            # chunk right under the probe (the probed node's own chunk is
            # exempt).  Costs stay bit-identical — evicted rows recompute.
            self._force_evict_chunk(keep={u})
        self._ensure_current(u)
        entry = self._env_cache.get(u)
        if entry is None:
            rows: Dict[int, Row] = {}
            self._env_cache[u] = (self.version, rows)
        else:
            # _ensure_current repaired or dropped anything stale, so an entry
            # here always carries the current version.
            rows = entry[1]
        row = rows.get(first_hop)
        if row is None:
            indexed = self.indexed
            if indexed.uniform_lengths:
                hop_entry = self._hop_cache.get(u)
                if hop_entry is None:
                    hop_rows: Dict[int, List[int]] = {}
                    self._hop_cache[u] = (self.version, hop_rows)
                else:
                    hop_rows = hop_entry[1]
                if self._np_traversal:
                    indptr_np, indices_np, _, _ = csr_arrays_of(self._snapshot)
                    hop_row = _npk.bfs_hops_csr_np(
                        indptr_np, indices_np, indexed.n, first_hop, u
                    )
                    row = _npk.scaled_float_rows(hop_row, indexed.unit_length)
                else:
                    indptr, indices, _ = csr_of(self._snapshot)
                    hop_row = bfs_hops_csr(indptr, indices, indexed.n, first_hop, u)
                    row = scaled_float_row(hop_row, indexed.unit_length)
                hop_rows[first_hop] = hop_row
                added = _payload_nbytes(row) + _payload_nbytes(hop_row)
            else:
                if self._np_traversal:
                    row = self._dijkstra_row_np(first_hop, u)
                else:
                    indptr, indices, edge_lengths = csr_of(self._snapshot)
                    row = dijkstra_csr(
                        indptr,
                        indices,
                        edge_lengths,
                        indexed.n,
                        first_hop,
                        u,
                    )
                added = _payload_nbytes(row)
            if fault_fires("engine.row-poison", key=(u, first_hop)) is not None:
                # Corruption fault site: cache a subtly-wrong copy while this
                # call still returns the correct row — modelling a row that
                # goes bad *after* it was filled.  Only verify_every sampling
                # can catch it on a later cache hit.
                rows[first_hop] = self._poisoned_copy(row)
            else:
                rows[first_hop] = row
            self.stats["rows_computed"] += 1
            if u in self._evicted_nodes:
                self._evicted_nodes.discard(u)
                self.stats["evicted_recomputes"] += 1
            self._ledger.add(u, added)
            if self._ledger.bytes > self.memory_budget_bytes:
                self._evict_over_budget(keep={u})
        else:
            self.stats["rows_reused"] += 1
            if self.verify_every is not None:
                self._verify_probes += 1
                if self._verify_probes >= self.verify_every:
                    self._verify_probes = 0
                    row = self._verify_row(u, first_hop, row)
        return row  # repro: readonly — the cached row itself, never mutated by callers

    def _poisoned_copy(self, row: Row) -> Row:
        """A copy of ``row`` with its first finite entry nudged by ``+1.0``."""
        poisoned = row.copy() if hasattr(row, "copy") else list(row)
        for i in range(len(poisoned)):
            value = float(poisoned[i])
            if value != math.inf:
                poisoned[i] = value + 1.0
                break
        return poisoned

    def _force_evict_chunk(self, keep: Optional[Set[int]] = None) -> None:
        """Drop one least-recently-used chunk regardless of the byte budget."""
        victims = self._ledger.lru_nodes(exempt=keep)
        if victims is None:
            return
        for node in victims:
            self.stats["rows_evicted"] += self._drop_node(node)
            self._evicted_nodes.add(node)
        self.stats["chunks_evicted"] += 1

    def _verify_row(self, u: int, first_hop: int, row: Row) -> Row:
        """Recompute a served cache hit from scratch and compare elementwise.

        A mismatch means the cached copy was corrupted after it was filled.
        The engine never serves the bad row silently: it warns, counts the
        failure in ``stats["row_verify_failures"]``, drops every cached row
        of ``u`` (plus the whole-profile cost cache, which may have been
        built from the bad row), re-inserts the fresh row, and returns it.
        """
        self.stats["rows_verified"] += 1
        fresh = self._compute_row(first_hop, u)
        n = len(row)
        clean = n == len(fresh) and all(
            float(row[i]) == float(fresh[i]) for i in range(n)
        )
        if clean:
            return row
        self.stats["row_verify_failures"] += 1
        warnings.warn(
            f"CostEngine self-verification: cached row (node {u}, first hop "
            f"{first_hop}) does not match a fresh recompute; rebuilding the "
            "node's caches",
            RuntimeWarning,
            stacklevel=3,
        )
        self.stats["rows_evicted"] += self._drop_node(u)
        self._all_costs_cache = None
        self._env_cache[u] = (self.version, {first_hop: fresh})
        self._ledger.add(u, _payload_nbytes(fresh))
        return fresh

    def prefetch_env_rows(self, u: int, first_hops) -> None:
        """Compute every missing ``d_{G-u}`` row of ``first_hops`` in one batch.

        A no-op on the python backend and for fewer than two missing rows;
        on the numpy backend the missing rows come from one multi-source
        frontier traversal (:func:`~repro.graphs.int_kernels_np
        .bfs_hops_csr_multi` / :func:`~repro.graphs.int_kernels_np
        .dijkstra_csr_multi`), which amortises the per-round dispatch
        overhead that makes single-source array traversals lose to the list
        kernels on sparse graphs.  Cached rows are byte-identical to the
        one-at-a-time path, so this only changes *when* rows are computed.

        When a giant-batch report plan covers ``u``, the node's whole
        planned chunk runs first (on either backend); the per-node batch
        below then only mops up hops the plan did not cover.
        """
        self._require_sync()
        self._maybe_run_plan(u)
        if not self._np_traversal:
            return
        self._ensure_current(u)
        entry = self._env_cache.get(u)
        if entry is None:
            rows: Dict[int, Row] = {}
            self._env_cache[u] = (self.version, rows)
        else:
            rows = entry[1]
        missing = [a for a in dict.fromkeys(first_hops) if a not in rows]
        if len(missing) < 2:
            return
        indexed = self.indexed
        added = 0
        start = time.perf_counter()
        indptr_np, indices_np, lengths_np, exact = csr_arrays_of(self._snapshot)
        if indexed.uniform_lengths:
            hop_entry = self._hop_cache.get(u)
            if hop_entry is None:
                hop_rows: Dict[int, List[int]] = {}
                self._hop_cache[u] = (self.version, hop_rows)
            else:
                hop_rows = hop_entry[1]
            matrix = _npk.bfs_hops_csr_multi(
                indptr_np, indices_np, indexed.n, missing, u
            )
            scaled = _npk.scaled_float_rows(matrix, indexed.unit_length)
            for i, a in enumerate(missing):
                hop_rows[a] = matrix[i]
                rows[a] = scaled[i]
                added += _payload_nbytes(matrix[i]) + _payload_nbytes(scaled[i])
        else:
            lengths = exact if exact is not None else lengths_np
            matrix = _npk.dijkstra_csr_multi(
                indptr_np, indices_np, lengths, indexed.n, missing, u
            )
            if exact is not None:
                matrix = _npk.int_to_float_rows(matrix)
            for i, a in enumerate(missing):
                rows[a] = matrix[i]
                added += _payload_nbytes(matrix[i])
        self.timings["traversal_seconds"] += time.perf_counter() - start
        self.stats["rows_computed"] += len(missing)
        if u in self._evicted_nodes:
            self._evicted_nodes.discard(u)
            self.stats["evicted_recomputes"] += len(missing)
        self._ledger.add(u, added)
        if self._ledger.bytes > self.memory_budget_bytes:
            self._evict_over_budget(keep={u})

    def through_rows(self, u: int) -> Dict[int, Row]:
        """Return the current-version through-row dict for masked node ``u``.

        A through row is ``l(u, a) + d_{G-u}(a, ·)`` for one first hop ``a``;
        scorers fill the dict lazily and, because it lives on the engine, a
        later probe of the same node at the same version starts warm (after
        any pending in-place repair).
        """
        self._ensure_current(u)
        entry = self._through_cache.get(u)
        if entry is None:
            rows: Dict[int, Row] = {}
            self._through_cache[u] = (self.version, rows)
        else:
            rows = entry[1]
            if rows and u not in self._reuse_counted:
                # Warm start: a later probe inherits rows a same-version
                # predecessor already paid for.  Counted once per node per
                # version so repeated probes do not inflate the stat.
                self._reuse_counted.add(u)
                self.stats["rows_reused"] += len(rows)
        return rows  # repro: readonly — live cache dict, filled lazily by scorers

    def sub_rows(self, u: int) -> Dict[int, Row]:
        """Return the penalty-substituted target slices for masked node ``u``.

        One slice per first hop: the through row sampled at ``u``'s positive
        targets, with unreachable entries replaced by the disconnection
        penalty.  Only valid (and only built) when the penalty dominates
        every finite distance — see :attr:`IndexedGame.penalty_dominates` —
        which is what lets the scoring fast path reduce over the slices with
        C-level ``min``/``sum``.
        """
        self._ensure_current(u)
        entry = self._sub_cache.get(u)
        if entry is None:
            rows: Dict[int, Row] = {}
            self._sub_cache[u] = (self.version, rows)
        else:
            rows = entry[1]
        return rows  # repro: readonly — live cache dict, filled lazily by scorers

    def _note_derived_row(
        self, u: int, cache_name: str, rows: Dict[int, Row], row
    ) -> None:
        """Charge one newly materialised derived row against the byte budget.

        ``rows`` is the scorer's dict; if eviction already detached it from
        the engine cache the row lives outside the cache (garbage once the
        scorer dies) and must not be charged, or the ledger would drift above
        the caches' real contents and thrash eviction for the whole version.
        """
        cache = self._through_cache if cache_name == "through" else self._sub_cache
        entry = cache.get(u)
        if entry is None or entry[1] is not rows:
            return
        self._ledger.add(u, _payload_nbytes(row))
        if self._ledger.bytes > self.memory_budget_bytes:
            self._evict_over_budget(keep={u})

    def _note_derived_batch(
        self, u: int, cache_name: str, rows: Dict[int, Row], nbytes: int
    ) -> None:
        """Batch form of :meth:`_note_derived_row`: one ledger charge and one
        budget check for a whole batch of equal-shaped rows."""
        cache = self._through_cache if cache_name == "through" else self._sub_cache
        entry = cache.get(u)
        if entry is None or entry[1] is not rows:
            return
        self._ledger.add(u, nbytes)
        if self._ledger.bytes > self.memory_budget_bytes:
            self._evict_over_budget(keep={u})

    def full_row(self, u: int) -> Row:
        """Return full-graph distances from int node ``u`` (no masking)."""
        self._require_sync()
        return self._compute_row(u, forbidden=-1)

    # ------------------------------------------------------------------ #
    # Cost evaluation
    # ------------------------------------------------------------------ #
    def scorer(self, node: Node) -> "StrategyScorer":
        """Return a :class:`StrategyScorer` bound to ``node`` at the current version."""
        self._require_sync()
        try:
            u = self.indexed.index[node]
        except KeyError:
            raise InvalidProfile(f"node {node!r} is not part of this game") from None
        return StrategyScorer(self, u)

    def cost_of(self, node: Node, strategy: Iterable[Node]) -> float:
        """Return ``node``'s cost when it plays ``strategy`` (labels) against the synced profile."""
        scorer = self.scorer(node)
        return scorer.score(strategy)

    def all_costs(self, profile: StrategyProfile) -> Dict[Node, float]:
        """Return every node's cost under ``profile`` (cached per version)."""
        self.sync(profile)
        cached = self._all_costs_cache
        if cached is not None and cached[0] == self.version:
            return dict(cached[1])
        indexed = self.indexed
        if self._np_traversal:
            # Batched traversals for all n unmasked rows, sliced so one
            # slice's row matrix stays around GIANT_CHUNK_TARGET_BYTES (a
            # single n-source batch at n = 16384 would be a 2 GiB matrix);
            # each row is converted back to the list form _aggregate_row
            # expects, so the costs (and their plain-float types) match the
            # per-row path — multi-kernel rows do not depend on how the
            # sources are batched.
            n = indexed.n
            uniform = indexed.uniform_lengths
            snap = self._snapshot
            indptr_np, indices_np, lengths_np, exact = csr_arrays_of(snap)
            per_row = 16 * n if uniform else 8 * n
            chunk_rows = max(1, min(n, GIANT_CHUNK_TARGET_BYTES // per_row))
            if not uniform:
                edges = max(1, len(snap.indices))
                chunk_rows = min(
                    chunk_rows, max(16, GIANT_CHUNK_TARGET_BYTES // (8 * edges))
                )
            labels = indexed.labels
            costs = {}
            for lo in range(0, n, chunk_rows):
                sources = list(range(lo, min(n, lo + chunk_rows)))
                start = time.perf_counter()
                if uniform:
                    matrix = _npk.scaled_float_rows(
                        _npk.bfs_hops_csr_multi(indptr_np, indices_np, n, sources),
                        indexed.unit_length,
                    )
                else:
                    lengths = exact if exact is not None else lengths_np
                    matrix = _npk.dijkstra_csr_multi(
                        indptr_np, indices_np, lengths, n, sources
                    )
                    if exact is not None:
                        matrix = _npk.int_to_float_rows(matrix)
                self.timings["traversal_seconds"] += time.perf_counter() - start
                for j, u in enumerate(sources):
                    costs[labels[u]] = self._aggregate_row(u, matrix[j].tolist())
        else:
            costs = {
                label: self._aggregate_row(u, self.full_row(u))
                for u, label in enumerate(indexed.labels)
            }
        self._all_costs_cache = (self.version, costs)
        return dict(costs)

    def social_cost(self, profile: StrategyProfile) -> float:
        """Return the total cost over all nodes under ``profile``."""
        return sum(self.all_costs(profile).values())

    def _aggregate_row(self, u: int, row: Row) -> float:
        indexed = self.indexed
        targets = indexed.target_rows[u]
        weights = indexed.target_weight_rows[u]
        penalty = indexed.penalty
        inf = math.inf
        if indexed.objective is Objective.SUM:
            total = 0.0
            for t, w in zip(targets, weights):
                d = row[t]
                total += w * (d if d < inf else penalty)
            return total
        if not targets:
            return 0.0
        worst = -inf
        for t, w in zip(targets, weights):
            d = row[t]
            value = w * (d if d < inf else penalty)
            if value > worst:
                worst = value
        return float(worst)


class StrategyScorer:
    """Fast repeated scoring of candidate strategies for one node.

    Bound to one ``(engine, version, node)``; per candidate first hop ``a``
    it lazily materialises the *through* row ``l(u, a) + d_{G-u}(a, ·)`` so
    that scoring a strategy is nothing but elementwise mins over cached
    lists.  For SUM-objective, unit-weight nodes of games whose
    disconnection penalty dominates every finite distance (every default
    game), it additionally keeps per-hop penalty-substituted target slices
    and reduces them with C-level ``sum(map(min, ...))`` — value-identical
    to the reference loop because substituting the penalty for ``inf``
    commutes with ``min`` exactly when the penalty is at least every finite
    distance.  Invalid to use after the engine syncs to a different profile.
    """

    __slots__ = (
        "engine",
        "u",
        "index",
        "targets",
        "weights",
        "penalty",
        "is_sum",
        "unit_weights",
        "fast_sum",
        "fast_batch",
        "identity_labels",
        "_length_row",
        "_through",
        "_sub",
        "_target_idx",
        "_version",
    )

    def __init__(self, engine: CostEngine, u: int) -> None:
        self.engine = engine
        self.u = u
        indexed = engine.indexed
        self.index = indexed.index
        self.targets = indexed.target_rows[u]
        self.weights = indexed.target_weight_rows[u]
        self.penalty = indexed.penalty
        self.is_sum = indexed.objective is Objective.SUM
        # Multiplying by an exact 1.0 weight is the identity, so the unit-weight
        # fast path below stays bit-identical to the reference oracle.
        self.unit_weights = indexed.unit_weight_nodes[u]
        # Below ~16 targets the fixed per-call overhead of the substituted-row
        # machinery (and of numpy) loses to the plain loops, so small games
        # stay on the original code path end to end.
        self.fast_sum = (
            engine.vectorized
            and self.is_sum
            and self.unit_weights
            and indexed.penalty_dominates
            and len(self.targets) >= 16
        )
        # The batch path sums in vectorised (pairwise) order, which is only
        # bit-identical to the reference's left-to-right loop when every sum
        # is exact — see IndexedGame.exact_sums.
        self.fast_batch = self.fast_sum and indexed.exact_sums and _np is not None
        self.identity_labels = indexed.identity_labels
        self._length_row = indexed.length_rows[u]
        self._through = engine.through_rows(u)
        self._sub = engine.sub_rows(u) if self.fast_sum else None
        self._target_idx = None  # int64 target indices, built on first use
        self._version = engine.version

    def _through_row(self, first_hop: int) -> Row:
        row = self._through.get(first_hop)
        if row is None:
            hop_length = self._length_row[first_hop]
            env = self.engine.env_row(self.u, first_hop)
            if self.engine._np_traversal:
                # Numpy-backend env rows are float64 arrays; the vectorised
                # sum is the same one IEEE addition per entry, and tolist()
                # keeps through rows (and everything scored off them) plain
                # Python floats on every backend.
                row = (hop_length + env).tolist()
            else:
                row = [hop_length + d for d in env]
            self._through[first_hop] = row
            self.engine._note_derived_row(self.u, "through", self._through, row)
        return row

    def _target_index(self) -> "_np.ndarray":
        if self._target_idx is None:
            targets = self.targets
            if len(targets) == self.engine.indexed.n - 1:
                # Complete target set: targets are exactly every node but
                # u, in increasing id order (IndexedGame builds target
                # rows sorted), so the index vector is an arange with a
                # gap at u — O(n) with no per-element Python boxing,
                # which matters when n is in the tens of thousands.
                idx = _np.arange(len(targets), dtype=_np.int64)
                idx[self.u:] += 1
                self._target_idx = idx
            else:
                self._target_idx = _np.asarray(targets, dtype=_np.int64)
        return self._target_idx

    def _build_sub_rows(self, missing: List[int]):
        """Build and cache every ``missing`` sub row in one broadcast.

        Numpy fast-batch path only (returns ``None`` otherwise): each entry
        is the same single IEEE sum and the same penalty test as
        :meth:`_sub_row`'s, so the rows (stored as views of the returned
        ``(len(missing), targets)`` batch) are bit-identical — only the
        numpy dispatch count changes.
        """
        engine = self.engine
        if not missing or not self.fast_batch or not engine._np_traversal:
            return None
        u = self.u
        targets = self.targets
        # One sync/plan/version check for the whole batch; the prefetch that
        # preceded this call left every row resident, so the per-row work is
        # a dict hit (env_row stays the fallback for anything evicted in
        # between).
        engine._require_sync()
        engine._maybe_run_plan(u)
        engine._ensure_current(u)
        entry = engine._env_cache.get(u)
        cached = entry[1] if entry is not None else {}
        hits = 0

        def env_for(a):
            nonlocal hits
            env = cached.get(a)
            if env is None:
                return engine.env_row(u, a)
            hits += 1
            return env

        envs = _np.stack([env_for(a) for a in missing])
        if len(targets) == engine.indexed.n - 1:
            # Complete target set: dropping column u is two contiguous
            # block copies, far cheaper than a fancy-index gather of
            # 99.9% of the matrix.
            batch = _np.concatenate((envs[:, :u], envs[:, u + 1:]), axis=1)
        else:
            batch = envs[:, self._target_index()]
        engine.stats["rows_reused"] += hits
        hop_lengths = _np.array(
            [self._length_row[a] for a in missing], dtype=_np.float64
        )
        batch += hop_lengths[:, None]
        batch[_np.isinf(batch)] = self.penalty
        sub = self._sub
        for j, a in enumerate(missing):
            sub[a] = batch[j]
        engine._note_derived_batch(
            self.u, "sub", sub, len(missing) * _payload_nbytes(batch[0])
        )
        return batch

    def _sub_row(self, first_hop: int) -> Row:
        engine = self.engine
        if self.fast_batch and engine._np_traversal:
            # Build the penalty-substituted target slice straight from the
            # env row, skipping the O(n) through-row list entirely: the
            # through value of each target is the same single IEEE sum
            # (`l(u, a) + d`), and the penalty substitution the same
            # elementwise test, so the slice is bit-identical to the list
            # path.  (Repairs patch sub rows from the env row directly too.)
            env = engine.env_row(self.u, first_hop)
            row = self._length_row[first_hop] + env[self._target_index()]
            row[_np.isinf(row)] = self.penalty
            self._sub[first_hop] = row
            engine._note_derived_row(self.u, "sub", self._sub, row)
            return row
        through = self._through_row(first_hop)
        penalty = self.penalty
        inf = math.inf
        row = [d if d < inf else penalty for d in map(through.__getitem__, self.targets)]
        if self.fast_batch:
            row = _np.array(row)
        self._sub[first_hop] = row
        self.engine._note_derived_row(self.u, "sub", self._sub, row)
        return row

    def score_combinations(self, candidates: List[int], size: int):
        """Score every size-``size`` combination of ``candidates`` (dense ints).

        Returns a read-only numpy vector of costs in ``itertools.combinations``
        order — the exact order :meth:`BBCGame.feasible_strategies` enumerates
        when :meth:`BBCGame.combination_plan` applies.  Only valid on
        ``fast_batch`` scorers (exact integer-valued sums), where the
        vectorised reduction is bit-identical to scoring one by one.  Like the
        scorer itself, the returned vector is only valid until the engine
        syncs to another profile: it views the engine's cached buffer, which
        later repairs patch in place (copy it to keep a snapshot).
        """
        engine = self.engine
        if self._version != engine.version:
            raise InvalidProfile("scorer is stale: the engine synced to a new profile")
        key = (size, tuple(candidates))
        cached = engine._combo_cache.get(self.u)
        if cached is not None and cached[0] == self._version and cached[1] == key:
            return _readonly_view(cached[2])
        sub = self._sub
        missing = [a for a in candidates if a not in sub]
        engine.prefetch_env_rows(self.u, iter(missing))
        batch = self._build_sub_rows(missing)
        if batch is not None and len(missing) == len(candidates):
            # Every candidate was missing, so the batch rows are already the
            # combination matrix in candidate order — no re-stack.
            matrix = batch
        else:
            rows = []
            for a in candidates:
                row = sub.get(a)
                if row is None:
                    row = self._sub_row(a)
                rows.append(row)
            if not rows:
                return _np.empty(0)
            matrix = _np.stack(rows)
        if size == 1:
            costs = matrix.sum(axis=1)
        else:
            left, right = _triu_pairs(len(candidates))
            costs = _np.minimum(matrix[left], matrix[right]).sum(axis=1)
        previous = engine._combo_cache.get(self.u)
        if previous is not None:
            engine._ledger.deduct(self.u, _payload_nbytes(previous[2]))
        engine._combo_cache[self.u] = (self._version, key, costs)
        engine._ledger.add(self.u, _payload_nbytes(costs))
        if engine._ledger.bytes > engine.memory_budget_bytes:
            engine._evict_over_budget(keep={self.u})
        return _readonly_view(costs)

    def score(self, strategy: Iterable[Node]) -> float:
        """Return the node's cost for a strategy given as node *labels*."""
        if self.identity_labels:
            return self.score_ints(strategy)
        index = self.index
        return self.score_ints([index[target] for target in strategy])

    def score_ints(self, strategy: Iterable[int]) -> float:
        """Return the node's cost for a strategy given as dense int ids."""
        if self._version != self.engine.version:
            raise InvalidProfile("scorer is stale: the engine synced to a new profile")
        if self.fast_sum:
            sub = self._sub
            strategy = list(strategy)
            if self.engine._np_traversal:
                missing = list(
                    dict.fromkeys(a for a in strategy if a not in sub)
                )
                self.engine.prefetch_env_rows(self.u, iter(missing))
                self._build_sub_rows(missing)
            rows = []
            for a in strategy:
                row = sub.get(a)
                if row is None:
                    row = self._sub_row(a)
                rows.append(row)
            num_rows = len(rows)
            if num_rows == 0:
                total = 0.0
                for w in self.weights:
                    total += w * self.penalty
                return total
            if self.fast_batch:
                if num_rows == 2:
                    return float(_np.minimum(rows[0], rows[1]).sum())
                if num_rows == 1:
                    return float(rows[0].sum())
                return float(_np.minimum.reduce(rows).sum())
            if num_rows == 2:
                return sum(map(min, rows[0], rows[1]))
            if num_rows == 1:
                return sum(rows[0])
            return sum(map(min, *rows))
        through = self._through
        rows = []
        for a in strategy:
            row = through.get(a)
            if row is None:
                row = self._through_row(a)
            rows.append(row)
        targets = self.targets
        weights = self.weights
        penalty = self.penalty
        inf = math.inf
        num_rows = len(rows)
        if self.is_sum:
            total = 0.0
            if num_rows == 2:
                row_a, row_b = rows
                if self.unit_weights:
                    for t in targets:
                        da = row_a[t]
                        db = row_b[t]
                        d = da if da < db else db
                        total += d if d < inf else penalty
                else:
                    for t, w in zip(targets, weights):
                        da = row_a[t]
                        db = row_b[t]
                        d = da if da < db else db
                        total += w * (d if d < inf else penalty)
            elif num_rows == 1:
                row = rows[0]
                if self.unit_weights:
                    for t in targets:
                        d = row[t]
                        total += d if d < inf else penalty
                else:
                    for t, w in zip(targets, weights):
                        d = row[t]
                        total += w * (d if d < inf else penalty)
            elif num_rows == 0:
                for w in weights:
                    total += w * penalty
            else:
                for t, w in zip(targets, weights):
                    best = inf
                    for row in rows:
                        d = row[t]
                        if d < best:
                            best = d
                    total += w * (best if best < inf else penalty)
            return total
        # MAX objective.
        if not targets:
            return 0.0
        worst = -inf
        for t, w in zip(targets, weights):
            best = inf
            for row in rows:
                d = row[t]
                if d < best:
                    best = d
            value = w * (best if best < inf else penalty)
            if value > worst:
                worst = value
        return float(worst)
