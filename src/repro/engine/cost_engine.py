"""Profile-versioned flat-array cost engine.

:class:`CostEngine` owns one int-indexed CSR snapshot of the current
profile's edge set, stamped with a monotonically increasing ``version``.
Every distance the game loop needs — environment rows ``d_{G-u}(a, ·)`` for
deviation scoring, full-graph rows for ``all_costs`` — is computed by the
flat kernels in :mod:`repro.graphs.int_kernels` and cached against that
version stamp, so repeated probes of an unchanged profile (equilibrium
checks, the stable tail of a best-response walk) pay for each SSSP at most
once.

The invalidation rule exploits locality: when :meth:`sync` observes that
exactly one node ``u`` changed its strategy, the environment ``G - u`` is by
definition untouched (it never contained ``u``'s links), so ``u``'s cached
rows are re-stamped to the new version instead of recomputed, while every
other node's rows are dropped.  A multi-node change resets everything.
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.errors import InvalidProfile
from ..core.objectives import Objective
from ..core.profile import StrategyProfile
from ..graphs.int_kernels import bfs_hops_csr, build_csr, dijkstra_csr, scaled_float_row
from .indexed import IndexedGame

Node = Hashable
Row = List[float]


class CostEngine:
    """Flat-array distance/cost engine bound to one game.

    The engine is stateful: :meth:`sync` points it at a profile (diffing
    against the previous one), after which :meth:`cost_of`,
    :meth:`all_costs`, and :meth:`scorer` evaluate costs against the cached
    snapshot.  All results are bit-identical to the reference
    :class:`~repro.core.best_response.DeviationOracle` / dict-BFS path; the
    parity tests in ``tests/test_engine_parity.py`` enforce this.
    """

    def __init__(self, game) -> None:
        # Only a weak back-reference to `game`: a strong one would pin the
        # WeakKeyDictionary entry in the per-game engine registry forever.
        self._game_ref = weakref.ref(game)
        self.indexed = IndexedGame(game)
        #: Bumped on every observed profile change; all caches key on it.
        self.version = 0
        self._strategies: Optional[List[frozenset]] = None
        # The same strategies in label space (what profiles carry), kept so
        # sync can diff by frozenset equality and only re-map the nodes that
        # actually changed; and the per-node sorted CSR rows, updated the
        # same incremental way.
        self._label_strategies: Optional[List[frozenset]] = None
        self._sorted_rows: List[List[int]] = []
        self._indptr: List[int] = [0] * (self.indexed.n + 1)
        self._indices: List[int] = []
        self._edge_lengths: Optional[List[float]] = None
        # masked node u -> (version, {first hop a -> distance row})
        self._env_cache: Dict[int, Tuple[int, Dict[int, Row]]] = {}
        # masked node u -> (version, {first hop a -> l(u,a) + env row}); same
        # lifecycle as _env_cache, so same-version probes of a node skip even
        # the O(n)-per-hop through-row materialisation.
        self._through_cache: Dict[int, Tuple[int, Dict[int, Row]]] = {}
        # Bound on cached rows (environment rows plus derived through rows,
        # which are the same size): a full equilibrium check wants all
        # n*(n-1) rows live (total reuse), but at n in the hundreds that is
        # O(n^3) floats, so cap the total and evict whole node entries
        # oldest-first once exceeded.  The floor of 4n keeps any single
        # probe's working set (n-1 env rows + n-1 through rows) cacheable.
        n = self.indexed.n
        self._max_env_rows = max(4 * n, 1_000_000 // max(n, 1))
        self._env_rows_cached = 0
        # Nodes whose warm through dict was already counted into rows_reused
        # at the current version (so repeated probes do not inflate the stat).
        self._reuse_counted: set = set()
        # (version, {label: cost}) for the whole profile
        self._all_costs_cache: Optional[Tuple[int, Dict[Node, float]]] = None
        #: Cache observability: how many environment rows were computed vs
        #: served from cache, and how each sync classified its diff.
        self.stats: Dict[str, int] = {
            "rows_computed": 0,
            "rows_reused": 0,
            "rows_evicted": 0,
            "noop_syncs": 0,
            "local_syncs": 0,
            "full_syncs": 0,
        }

    def check_game(self, game) -> None:
        """Raise ``ValueError`` when this engine was built for a different game.

        Two games with the same node count but different weights or lengths
        would otherwise sync successfully and score against the wrong
        snapshot; call sites that accept an explicit engine guard with this.
        """
        if self._game_ref() is not game:
            raise ValueError(
                "this CostEngine was built for a different game instance; "
                "create one with CostEngine(game) or use repro.engine.get_engine(game)"
            )

    # ------------------------------------------------------------------ #
    # Profile synchronisation
    # ------------------------------------------------------------------ #
    def sync(self, profile: StrategyProfile) -> Optional[Tuple[int, ...]]:
        """Point the engine at ``profile``, invalidating as little as possible.

        Diffs the profile against the current snapshot: no change keeps the
        version (full cache reuse); a single-node change bumps the version
        but preserves that node's own environment rows (``G - u`` does not
        contain ``u``'s links); anything larger resets all caches.

        Returns the dense int ids of the nodes whose strategies changed —
        ``()`` for a no-op sync — or ``None`` on the first sync, when there
        is no previous snapshot to diff against, so callers and
        instrumentation can see how a profile step was classified.  (The
        sweep layer diffs against :meth:`snapshot_strategies` instead: its
        memo validity depends on *its* last profile, and a shared engine may
        have been synced elsewhere in between.)
        """
        indexed = self.indexed
        if len(profile) != indexed.n:
            raise InvalidProfile("profile nodes do not match the game's node set")
        index = indexed.index
        raw = [profile.strategy(label) for label in indexed.labels]

        old_raw = self._label_strategies
        if old_raw is not None:
            # Diff in label space: distinct labels map to distinct ints, so
            # frozenset equality agrees with the int view and only the
            # changed nodes need the label->int remap below.
            changed = [u for u in range(indexed.n) if raw[u] != old_raw[u]]
            if not changed:
                self.stats["noop_syncs"] += 1
                return ()
        else:
            changed = None

        try:
            if changed is None:
                self._strategies = [
                    frozenset(index[target] for target in targets) for targets in raw
                ]
            else:
                # Remap fully before mutating so an unknown-target failure
                # leaves the engine exactly on its previous snapshot.
                remapped = [
                    frozenset(index[target] for target in raw[u]) for u in changed
                ]
                for u, strategy in zip(changed, remapped):
                    self._strategies[u] = strategy
        except KeyError as exc:
            raise InvalidProfile(
                f"profile buys a link to unknown node {exc.args[0]!r}"
            ) from exc

        self._label_strategies = raw
        self.version += 1
        self._rebuild_csr(changed)
        self._all_costs_cache = None
        if changed is not None and len(changed) == 1:
            self.stats["local_syncs"] += 1
            changed_node = changed[0]
            kept = self._env_cache.get(changed_node)
            kept_through = self._through_cache.get(changed_node)
            self._env_cache.clear()
            self._through_cache.clear()
            self._env_rows_cached = 0
            self._reuse_counted.clear()
            if kept is not None:
                self._env_cache[changed_node] = (self.version, kept[1])
                self._env_rows_cached += len(kept[1])
            if kept_through is not None:
                self._through_cache[changed_node] = (self.version, kept_through[1])
                self._env_rows_cached += len(kept_through[1])
        else:
            self.stats["full_syncs"] += 1
            self._env_cache.clear()
            self._through_cache.clear()
            self._env_rows_cached = 0
            self._reuse_counted.clear()
        return tuple(changed) if changed is not None else None

    def _rebuild_csr(self, changed: Optional[List[int]] = None) -> None:
        indexed = self.indexed
        strategies = self._strategies
        if changed is None:
            self._sorted_rows = [sorted(strategies[u]) for u in range(indexed.n)]
        else:
            for u in changed:
                self._sorted_rows[u] = sorted(strategies[u])
        rows = self._sorted_rows
        self._indptr, self._indices = build_csr(rows)
        if indexed.uniform_lengths:
            self._edge_lengths = None
        else:
            lengths: List[float] = []
            for u, row in enumerate(rows):
                length_row = indexed.length_rows[u]
                lengths.extend(length_row[v] for v in row)
            self._edge_lengths = lengths

    def _require_sync(self) -> None:
        if self._strategies is None:
            raise InvalidProfile("CostEngine.sync(profile) must be called first")

    def snapshot_strategies(self) -> Optional[List[frozenset]]:
        """Return the synced profile's per-node strategies in label space.

        ``None`` before the first sync; indexed by dense node id, in the
        same order as :attr:`IndexedGame.labels`.  This is the snapshot the
        sweep layer compares against to decide whether a node's masked
        ``d_{G-u}`` rows are still valid without forcing a sync.
        """
        return self._label_strategies

    # ------------------------------------------------------------------ #
    # Distance rows
    # ------------------------------------------------------------------ #
    def _compute_row(self, source: int, forbidden: int) -> Row:
        indexed = self.indexed
        if indexed.uniform_lengths:
            hops = bfs_hops_csr(
                self._indptr, self._indices, indexed.n, source, forbidden
            )
            return scaled_float_row(hops, indexed.unit_length)
        return dijkstra_csr(
            self._indptr,
            self._indices,
            self._edge_lengths,
            indexed.n,
            source,
            forbidden,
        )

    def env_row(self, u: int, first_hop: int) -> Row:
        """Return ``d_{G-u}(first_hop, ·)`` as a dense float row (``inf`` = unreachable).

        Rows are cached per ``(version, u)``; within one version each first
        hop costs at most one SSSP no matter how many strategies probe it.
        """
        self._require_sync()
        entry = self._env_cache.get(u)
        if entry is None:
            rows: Dict[int, Row] = {}
            self._env_cache[u] = (self.version, rows)
        else:
            # sync() clears or re-stamps every entry, so anything still in the
            # cache always carries the current version.
            rows = entry[1]
        row = rows.get(first_hop)
        if row is None:
            row = self._compute_row(first_hop, forbidden=u)
            rows[first_hop] = row
            self.stats["rows_computed"] += 1
            self._env_rows_cached += 1
            if self._env_rows_cached > self._max_env_rows:
                self._evict_env_rows(keep=u)
        else:
            self.stats["rows_reused"] += 1
        return row

    def _evict_env_rows(self, keep: int) -> None:
        """Drop whole node entries, oldest-inserted first, until under the cap.

        The entry for ``keep`` (the node currently being probed) is exempt so
        an in-flight probe never evicts its own working set.
        """
        for node in list(self._env_cache):
            if self._env_rows_cached <= self._max_env_rows:
                break
            if node == keep:
                continue
            _, rows = self._env_cache.pop(node)
            through_entry = self._through_cache.pop(node, None)
            dropped = len(rows) + (len(through_entry[1]) if through_entry else 0)
            self._env_rows_cached -= dropped
            self.stats["rows_evicted"] += dropped

    def through_rows(self, u: int) -> Dict[int, Row]:
        """Return the current-version through-row dict for masked node ``u``.

        A through row is ``l(u, a) + d_{G-u}(a, ·)`` for one first hop ``a``;
        scorers fill the dict lazily and, because it lives on the engine, a
        later probe of the same node at the same version starts warm.
        """
        entry = self._through_cache.get(u)
        if entry is None:
            rows: Dict[int, Row] = {}
            self._through_cache[u] = (self.version, rows)
        else:
            rows = entry[1]
            if rows and u not in self._reuse_counted:
                # Warm start: a later probe inherits rows a same-version
                # predecessor already paid for.  Counted once per node per
                # version so repeated probes do not inflate the stat.
                self._reuse_counted.add(u)
                self.stats["rows_reused"] += len(rows)
        return rows

    def _note_through_row(self, u: int, rows: Dict[int, Row]) -> None:
        """Account one newly materialised through row against the memory cap.

        ``rows`` is the scorer's dict; if eviction already detached it from
        ``_through_cache`` the row lives outside the cache (garbage once the
        scorer dies) and must not be counted, or the counter would drift above
        the caches' real contents and thrash eviction for the whole version.
        """
        entry = self._through_cache.get(u)
        if entry is None or entry[1] is not rows:
            return
        self._env_rows_cached += 1
        if self._env_rows_cached > self._max_env_rows:
            self._evict_env_rows(keep=u)

    def full_row(self, u: int) -> Row:
        """Return full-graph distances from int node ``u`` (no masking)."""
        self._require_sync()
        return self._compute_row(u, forbidden=-1)

    # ------------------------------------------------------------------ #
    # Cost evaluation
    # ------------------------------------------------------------------ #
    def scorer(self, node: Node) -> "StrategyScorer":
        """Return a :class:`StrategyScorer` bound to ``node`` at the current version."""
        self._require_sync()
        try:
            u = self.indexed.index[node]
        except KeyError:
            raise InvalidProfile(f"node {node!r} is not part of this game") from None
        return StrategyScorer(self, u)

    def cost_of(self, node: Node, strategy: Iterable[Node]) -> float:
        """Return ``node``'s cost when it plays ``strategy`` (labels) against the synced profile."""
        scorer = self.scorer(node)
        return scorer.score(strategy)

    def all_costs(self, profile: StrategyProfile) -> Dict[Node, float]:
        """Return every node's cost under ``profile`` (cached per version)."""
        self.sync(profile)
        cached = self._all_costs_cache
        if cached is not None and cached[0] == self.version:
            return dict(cached[1])
        indexed = self.indexed
        costs = {
            label: self._aggregate_row(u, self.full_row(u))
            for u, label in enumerate(indexed.labels)
        }
        self._all_costs_cache = (self.version, costs)
        return dict(costs)

    def social_cost(self, profile: StrategyProfile) -> float:
        """Return the total cost over all nodes under ``profile``."""
        return sum(self.all_costs(profile).values())

    def _aggregate_row(self, u: int, row: Row) -> float:
        indexed = self.indexed
        targets = indexed.target_rows[u]
        weights = indexed.target_weight_rows[u]
        penalty = indexed.penalty
        inf = math.inf
        if indexed.objective is Objective.SUM:
            total = 0.0
            for t, w in zip(targets, weights):
                d = row[t]
                total += w * (d if d < inf else penalty)
            return total
        if not targets:
            return 0.0
        worst = -inf
        for t, w in zip(targets, weights):
            d = row[t]
            value = w * (d if d < inf else penalty)
            if value > worst:
                worst = value
        return float(worst)


class StrategyScorer:
    """Fast repeated scoring of candidate strategies for one node.

    Bound to one ``(engine, version, node)``; per candidate first hop ``a``
    it lazily materialises the *through* row ``l(u, a) + d_{G-u}(a, ·)`` so
    that scoring a strategy is nothing but elementwise mins over cached
    lists.  Invalid to use after the engine syncs to a different profile.
    """

    __slots__ = (
        "engine",
        "u",
        "index",
        "targets",
        "weights",
        "penalty",
        "is_sum",
        "unit_weights",
        "identity_labels",
        "_length_row",
        "_through",
        "_version",
    )

    def __init__(self, engine: CostEngine, u: int) -> None:
        self.engine = engine
        self.u = u
        indexed = engine.indexed
        self.index = indexed.index
        self.targets = indexed.target_rows[u]
        self.weights = indexed.target_weight_rows[u]
        self.penalty = indexed.penalty
        self.is_sum = indexed.objective is Objective.SUM
        # Multiplying by an exact 1.0 weight is the identity, so the unit-weight
        # fast path below stays bit-identical to the reference oracle.
        self.unit_weights = all(w == 1.0 for w in self.weights)
        self.identity_labels = indexed.identity_labels
        self._length_row = indexed.length_rows[u]
        self._through = engine.through_rows(u)
        self._version = engine.version

    def _through_row(self, first_hop: int) -> Row:
        row = self._through.get(first_hop)
        if row is None:
            hop_length = self._length_row[first_hop]
            env = self.engine.env_row(self.u, first_hop)
            row = [hop_length + d for d in env]
            self._through[first_hop] = row
            self.engine._note_through_row(self.u, self._through)
        return row

    def score(self, strategy: Iterable[Node]) -> float:
        """Return the node's cost for a strategy given as node *labels*."""
        if self.identity_labels:
            return self.score_ints(strategy)
        index = self.index
        return self.score_ints([index[target] for target in strategy])

    def score_ints(self, strategy: Iterable[int]) -> float:
        """Return the node's cost for a strategy given as dense int ids."""
        if self._version != self.engine.version:
            raise InvalidProfile("scorer is stale: the engine synced to a new profile")
        through = self._through
        rows = []
        for a in strategy:
            row = through.get(a)
            if row is None:
                row = self._through_row(a)
            rows.append(row)
        targets = self.targets
        weights = self.weights
        penalty = self.penalty
        inf = math.inf
        num_rows = len(rows)
        if self.is_sum:
            total = 0.0
            if num_rows == 2:
                row_a, row_b = rows
                if self.unit_weights:
                    for t in targets:
                        da = row_a[t]
                        db = row_b[t]
                        d = da if da < db else db
                        total += d if d < inf else penalty
                else:
                    for t, w in zip(targets, weights):
                        da = row_a[t]
                        db = row_b[t]
                        d = da if da < db else db
                        total += w * (d if d < inf else penalty)
            elif num_rows == 1:
                row = rows[0]
                if self.unit_weights:
                    for t in targets:
                        d = row[t]
                        total += d if d < inf else penalty
                else:
                    for t, w in zip(targets, weights):
                        d = row[t]
                        total += w * (d if d < inf else penalty)
            elif num_rows == 0:
                for w in weights:
                    total += w * penalty
            else:
                for t, w in zip(targets, weights):
                    best = inf
                    for row in rows:
                        d = row[t]
                        if d < best:
                            best = d
                    total += w * (best if best < inf else penalty)
            return total
        # MAX objective.
        if not targets:
            return 0.0
        worst = -inf
        for t, w in zip(targets, weights):
            best = inf
            for row in rows:
                d = row[t]
                if d < best:
                    best = d
            value = w * (best if best < inf else penalty)
            if value > worst:
                worst = value
        return float(worst)
