"""Chunk-granular, byte-accounted LRU ledger for the engine's row caches.

The :class:`~repro.engine.cost_engine.CostEngine` keeps every cached
``d_{G-u}`` row (and the float/through/sub/combination rows derived from it)
keyed by the masked node ``u``.  PR 5 bounded that cache by *row count*,
which at n = 16k is the wrong unit: one env row is ``8 * n`` bytes, so the
same cap that is generous at n = 256 silently admits gigabytes at n = 16384.

``ChunkLedger`` replaces the count with bytes and groups nodes into
*chunks* — the unit of both giant-batch computation and LRU eviction,
mirroring the vertex-range work partitioning of the flat-CSR idiom the
numpy backend is built around.  Rows that were filled by one giant batched
traversal live and die together: they were materialised as views into one
contiguous matrix, so evicting the whole chunk actually releases the
backing allocation, whereas evicting a single member row would keep the
full matrix alive through the surviving views.

The ledger tracks *accounting* only (which node sits in which chunk and
how many payload bytes it owns); the engine keeps the rows themselves in
its per-kind dict caches.  Eviction is node-granular from the engine's
point of view — a victim node loses its env row and every derived row at
once — which is what keeps eviction repair-compatible: the engine never
holds a derived row whose env row is gone, so the PR 4 repair path can
never patch a value whose base was recomputed behind its back.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["ChunkLedger"]


class ChunkLedger:
    """Byte accounting for cached rows, with LRU ordering over node chunks.

    Every tracked node belongs to exactly one chunk.  Nodes enter as
    singleton chunks (:meth:`add`) and can later be coalesced into a shared
    chunk by a giant-batch fill (:meth:`group`).  ``bytes`` is the ledger's
    running total of payload bytes across all tracked nodes.
    """

    __slots__ = ("bytes", "_chunks", "_node_chunk", "_node_bytes", "_next_id")

    def __init__(self) -> None:
        self.bytes = 0
        # chunk id -> member nodes, in least-recently-used-first order.
        self._chunks: "OrderedDict[int, Set[int]]" = OrderedDict()
        self._node_chunk: Dict[int, int] = {}
        self._node_bytes: Dict[int, int] = {}
        self._next_id = 0

    def __contains__(self, u: int) -> bool:
        return u in self._node_chunk

    def __len__(self) -> int:
        return len(self._node_chunk)

    def node_bytes(self, u: int) -> int:
        return self._node_bytes.get(u, 0)

    def add(self, u: int, nbytes: int) -> None:
        """Charge ``nbytes`` to node ``u``, tracking it if new.

        A node not yet in the ledger is placed in a fresh singleton chunk at
        the most-recently-used end; a tracked node keeps its chunk (which is
        touched) and simply accrues the extra bytes.
        """
        if nbytes <= 0 and u in self._node_chunk:
            self.touch(u)
            return
        chunk = self._node_chunk.get(u)
        if chunk is None:
            chunk = self._next_id
            self._next_id += 1
            self._chunks[chunk] = {u}
            self._node_chunk[u] = chunk
            self._node_bytes[u] = 0
        else:
            self._chunks.move_to_end(chunk)
        self._node_bytes[u] += nbytes
        self.bytes += nbytes

    def group(self, nodes: Iterable[int]) -> None:
        """Coalesce ``nodes`` into one fresh chunk at the MRU end.

        Nodes keep their byte charges; untracked nodes are skipped (they own
        no bytes yet and will be added when their rows are charged).  Chunks
        that lose all members disappear.
        """
        members = [u for u in nodes if u in self._node_chunk]
        if not members:
            return
        chunk = self._next_id
        self._next_id += 1
        for u in members:
            old = self._node_chunk[u]
            old_members = self._chunks[old]
            old_members.discard(u)
            if not old_members:
                del self._chunks[old]
            self._node_chunk[u] = chunk
        self._chunks[chunk] = set(members)

    def touch(self, u: int) -> None:
        """Mark ``u``'s chunk as most recently used."""
        chunk = self._node_chunk.get(u)
        if chunk is not None:
            self._chunks.move_to_end(chunk)

    def remove(self, u: int) -> int:
        """Stop tracking ``u``; returns the bytes freed."""
        chunk = self._node_chunk.pop(u, None)
        if chunk is None:
            return 0
        members = self._chunks[chunk]
        members.discard(u)
        if not members:
            del self._chunks[chunk]
        freed = self._node_bytes.pop(u, 0)
        self.bytes -= freed
        return freed

    def deduct(self, u: int, nbytes: int) -> None:
        """Release ``nbytes`` of ``u``'s charge (e.g. one derived row dropped).

        Deducting a node's full charge removes it from the ledger.
        """
        if u not in self._node_chunk or nbytes <= 0:
            return
        remaining = self._node_bytes[u] - nbytes
        if remaining <= 0:
            self.remove(u)
        else:
            self._node_bytes[u] = remaining
            self.bytes -= nbytes

    def lru_nodes(self, exempt: Optional[Set[int]] = None) -> Optional[List[int]]:
        """Members of the least-recently-used chunk, skipping exempt chunks.

        A chunk containing any node in ``exempt`` is skipped (it is the
        caller's in-flight working set).  Returns ``None`` when every chunk
        is exempt or the ledger is empty.
        """
        for members in self._chunks.values():
            if exempt and not exempt.isdisjoint(members):
                continue
            return list(members)
        return None

    def clear(self) -> None:
        self.bytes = 0
        self._chunks.clear()
        self._node_chunk.clear()
        self._node_bytes.clear()
