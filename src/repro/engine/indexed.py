"""Dense int-indexed view of a :class:`~repro.core.game.BBCGame`.

Game parameters live in sparse ``{(label, label): value}`` dicts with default
fallbacks, which is the right representation for *defining* games but makes
every hot-loop access a tuple construction plus a dict probe.
:class:`IndexedGame` materialises what the hot loops actually read — link
lengths plus each node's positive-preference targets and their weights — once
into flat per-node rows indexed by dense ints, so the cost engine's inner
loops are plain list lookups.

The mapping is fixed at construction: ``labels[i]`` is the label of int node
``i`` and ``index[label]`` inverts it.  Declaration order is preserved, which
keeps engine results deterministic and aligned with the reference
:class:`~repro.core.best_response.DeviationOracle`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..core.game import BBCGame
from ..core.objectives import Objective

try:  # Optional array backend; list materialisations below never need it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the minimal CI leg
    _np = None

Node = Hashable


class IndexedGame:
    """Flat-array snapshot of a game's parameters (labels mapped to ints)."""

    __slots__ = (
        "labels",
        "index",
        "n",
        "length_rows",
        "target_rows",
        "target_weight_rows",
        "penalty",
        "objective",
        "uniform_lengths",
        "unit_length",
        "penalty_dominates",
        "exact_sums",
        "integral_lengths",
        "identity_labels",
        "unit_weight_nodes",
        "_length_matrix",
    )

    def __init__(self, game: BBCGame, *, tables=None) -> None:
        # Deliberately no back-reference to `game`: the engine registry keys a
        # WeakKeyDictionary by the game object, and holding it here would keep
        # the key alive forever.
        #
        # ``tables`` (a rehydrated repro.engine.snapshot.SnapshotTables, or
        # None) lets pool workers adopt a parent process's already-probed
        # static rows instead of re-running the O(n^2) probing loop below;
        # a ``compact`` marker means "construct normally" (uniform games
        # rebuild in O(n) anyway).  Adopted rows are installed as-is — they
        # are read-only repo-wide, and export/restore round-trips floats
        # bit-exactly, so an adopting IndexedGame is indistinguishable from
        # one probed locally.
        self.labels: Tuple[Node, ...] = game.nodes
        self.index: Dict[Node, int] = {label: i for i, label in enumerate(self.labels)}
        self.n = len(self.labels)
        self.penalty = game.disconnection_penalty
        self.objective: Objective = game.objective
        self.uniform_lengths = game.has_uniform_lengths
        # For uniform-length games every length equals the maximum, which is
        # exactly the scale factor DeviationOracle applies to BFS hop counts.
        self.unit_length = game.max_link_length()
        # A simple path has at most n-1 edges, so every finite distance is at
        # most (n-1) * max length.  When the disconnection penalty is at least
        # that (every default game: M = 10 n * max length), substituting the
        # penalty for `inf` commutes with `min` exactly — the licence for the
        # scorer's C-level fast path over penalty-substituted rows.
        self.penalty_dominates = self.penalty >= (self.n - 1) * self.unit_length

        self.length_rows: List[List[float]] = []
        self.target_rows: List[List[int]] = []
        self.target_weight_rows: List[List[float]] = []
        adopt = tables is not None and not tables.compact
        if adopt:
            if tuple(tables.labels) != self.labels:
                raise ValueError(
                    "SnapshotTables were exported for a different node set"
                )
            self.length_rows = tables.length_rows
            self.target_rows = tables.target_rows
            self.target_weight_rows = tables.target_weight_rows
            self.unit_weight_nodes = list(tables.unit_weight_nodes)
            lengths_integral = False  # unused: licence flags adopted below
        elif self.n >= 2 and game.has_uniform_weights and game.has_uniform_lengths:
            # O(n) snapshot for constant-parameter games (every uniform game):
            # all rows are known without probing the n^2 node pairs, and the
            # constant length/weight rows can be *shared* across nodes — the
            # rows are read-only everywhere downstream, so aliasing one list n
            # times is safe and drops the snapshot from the gigabyte scale
            # that made n ~ 16k games unconstructible.  Only `target_rows`
            # differ per node (each excludes its own index) and stay distinct.
            length = self.unit_length
            shared_lengths = [length] * self.n
            self.length_rows = [shared_lengths] * self.n
            weight = game.weight(self.labels[0], self.labels[1])
            if weight > 0:
                base = list(range(self.n))
                self.target_rows = [base[:u] + base[u + 1 :] for u in range(self.n)]
                shared_weights = [weight] * (self.n - 1)
                self.target_weight_rows = [shared_weights] * self.n
            else:
                empty: List[int] = []
                self.target_rows = [empty] * self.n
                self.target_weight_rows = [empty] * self.n
            self.unit_weight_nodes: List[bool] = [weight == 1.0 or weight <= 0] * self.n
            lengths_integral = float(length).is_integer()
        else:
            for u, source in enumerate(self.labels):
                weights = [game.weight(source, target) for target in self.labels]
                weights[u] = 0.0
                self.length_rows.append(
                    [game.link_length(source, target) for target in self.labels]
                )
                targets = [v for v, w in enumerate(weights) if v != u and w > 0]
                self.target_rows.append(targets)
                self.target_weight_rows.append([weights[v] for v in targets])
            # Whether each node's positive weights are all exactly 1.0, computed
            # once here so per-probe scorer construction is O(1) in n.
            self.unit_weight_nodes = [
                all(w == 1.0 for w in row) for row in self.target_weight_rows
            ]
            lengths_integral = all(
                float(length).is_integer() for row in self.length_rows for length in row
            )
        # When labels already are 0..n-1 (every uniform game), label->int
        # translation is the identity and scorers can skip it entirely.  The
        # type check matters: floats/bools numerically equal to 0..n-1 would
        # pass the == test but cannot index the flat rows.
        self.identity_labels = all(
            type(label) is int for label in self.labels
        ) and self.labels == tuple(range(self.n))
        # With integer-valued lengths every shortest distance is an exact
        # integer; as long as the largest one ((n-1) arcs of the maximum
        # length) stays below 2**53, int64 and float64 agree bit for bit.
        # That is the licence for the numpy backend's exact-int traversal
        # space (hop rows always qualify — hops are plain counts).
        if adopt:
            # Licence flags travel verbatim with the exported tables: the
            # exporter computed them from these exact rows, so recomputing
            # here could only agree (or waste an O(n^2) rescan).  An
            # array-mode export also donates its dense length matrix — a
            # read-only view over the shared segment, which the repair
            # kernels only ever index.
            self.integral_lengths = tables.integral_lengths
            self.exact_sums = tables.exact_sums
            self._length_matrix = tables.length_matrix
            return
        self.integral_lengths = (
            lengths_integral and (self.n - 1) * self.unit_length <= 2.0**53
        )
        # With integer-valued lengths and penalty, every distance, penalty
        # substitution, and cost sum is an exact integer, and as long as the
        # largest possible sum (n addends, each at most the dominating
        # penalty) stays below 2**53, float addition never rounds — so *any*
        # summation order gives the same bits.  That is the licence for
        # vectorised (pairwise-summing) reductions in the scorer's batch path.
        self.exact_sums = (
            float(self.penalty).is_integer()
            and self.n * max(self.penalty, (self.n - 1) * self.unit_length) <= 2.0**53
            and lengths_integral
        )
        # Dense float64 view of `length_rows`, materialised on first use by
        # the numpy repair kernels (old-row reconstruction and boundary
        # in-edges index it as `matrix[p, v]`).
        self._length_matrix = None

    def length_matrix(self):
        """Return the dense ``n x n`` float64 link-length matrix (lazy, cached).

        The numpy traversal backend's repair kernels read static arc lengths
        by fancy indexing; the matrix is one ``np.asarray`` over the list
        rows, built at most once per game.  Raises ``RuntimeError`` without
        numpy — callers gate on the backend, which already requires it.
        """
        if _np is None:  # pragma: no cover - numpy-backend callers only
            raise RuntimeError("IndexedGame.length_matrix requires numpy")
        if self._length_matrix is None:
            self._length_matrix = _np.asarray(self.length_rows, dtype=_np.float64)
        return self._length_matrix

    def to_ints(self, labels) -> List[int]:
        """Map an iterable of node labels to their dense int ids."""
        index = self.index
        return [index[label] for label in labels]

    def to_labels(self, ints) -> List[Node]:
        """Map dense int ids back to node labels."""
        labels = self.labels
        return [labels[i] for i in ints]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedGame(n={self.n}, objective={self.objective.value})"
