"""Dense int-indexed view of a :class:`~repro.core.game.BBCGame`.

Game parameters live in sparse ``{(label, label): value}`` dicts with default
fallbacks, which is the right representation for *defining* games but makes
every hot-loop access a tuple construction plus a dict probe.
:class:`IndexedGame` materialises what the hot loops actually read — link
lengths plus each node's positive-preference targets and their weights — once
into flat per-node rows indexed by dense ints, so the cost engine's inner
loops are plain list lookups.

The mapping is fixed at construction: ``labels[i]`` is the label of int node
``i`` and ``index[label]`` inverts it.  Declaration order is preserved, which
keeps engine results deterministic and aligned with the reference
:class:`~repro.core.best_response.DeviationOracle`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..core.game import BBCGame
from ..core.objectives import Objective

Node = Hashable


class IndexedGame:
    """Flat-array snapshot of a game's parameters (labels mapped to ints)."""

    __slots__ = (
        "labels",
        "index",
        "n",
        "length_rows",
        "target_rows",
        "target_weight_rows",
        "penalty",
        "objective",
        "uniform_lengths",
        "unit_length",
        "penalty_dominates",
        "exact_sums",
        "identity_labels",
    )

    def __init__(self, game: BBCGame) -> None:
        # Deliberately no back-reference to `game`: the engine registry keys a
        # WeakKeyDictionary by the game object, and holding it here would keep
        # the key alive forever.
        self.labels: Tuple[Node, ...] = game.nodes
        self.index: Dict[Node, int] = {label: i for i, label in enumerate(self.labels)}
        self.n = len(self.labels)
        self.penalty = game.disconnection_penalty
        self.objective: Objective = game.objective
        self.uniform_lengths = game.has_uniform_lengths
        # For uniform-length games every length equals the maximum, which is
        # exactly the scale factor DeviationOracle applies to BFS hop counts.
        self.unit_length = game.max_link_length()
        # A simple path has at most n-1 edges, so every finite distance is at
        # most (n-1) * max length.  When the disconnection penalty is at least
        # that (every default game: M = 10 n * max length), substituting the
        # penalty for `inf` commutes with `min` exactly — the licence for the
        # scorer's C-level fast path over penalty-substituted rows.
        self.penalty_dominates = self.penalty >= (self.n - 1) * self.unit_length

        self.length_rows: List[List[float]] = []
        self.target_rows: List[List[int]] = []
        self.target_weight_rows: List[List[float]] = []
        for u, source in enumerate(self.labels):
            weights = [game.weight(source, target) for target in self.labels]
            weights[u] = 0.0
            self.length_rows.append(
                [game.link_length(source, target) for target in self.labels]
            )
            targets = [v for v, w in enumerate(weights) if v != u and w > 0]
            self.target_rows.append(targets)
            self.target_weight_rows.append([weights[v] for v in targets])
        # When labels already are 0..n-1 (every uniform game), label->int
        # translation is the identity and scorers can skip it entirely.  The
        # type check matters: floats/bools numerically equal to 0..n-1 would
        # pass the == test but cannot index the flat rows.
        self.identity_labels = all(
            type(label) is int for label in self.labels
        ) and self.labels == tuple(range(self.n))
        # With integer-valued lengths and penalty, every distance, penalty
        # substitution, and cost sum is an exact integer, and as long as the
        # largest possible sum (n addends, each at most the dominating
        # penalty) stays below 2**53, float addition never rounds — so *any*
        # summation order gives the same bits.  That is the licence for
        # vectorised (pairwise-summing) reductions in the scorer's batch path.
        self.exact_sums = (
            float(self.penalty).is_integer()
            and self.n * max(self.penalty, (self.n - 1) * self.unit_length) <= 2.0**53
            and all(
                float(length).is_integer()
                for row in self.length_rows
                for length in row
            )
        )

    def to_ints(self, labels) -> List[int]:
        """Map an iterable of node labels to their dense int ids."""
        index = self.index
        return [index[label] for label in labels]

    def to_labels(self, ints) -> List[Node]:
        """Map dense int ids back to node labels."""
        labels = self.labels
        return [labels[i] for i in ints]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedGame(n={self.n}, objective={self.objective.value})"
