"""The single registry of named fault-injection sites.

Every ``fault_point("name", ...)`` / ``fault_fires("name", ...)`` literal in
the runtime must appear here, and every :class:`~repro.reliability.faults
.FaultRule` key in tests and docs must name a registered site — otherwise a
typo'd site *silently never fires* and a fault-injection test asserts
nothing.  The contract is enforced twice:

* statically, by lint rule RPR004 (``python -m repro.tooling.lint``), which
  parses this module's AST for the registered names;
* at runtime, by :class:`~repro.reliability.faults.FaultPlan`, which warns
  (:class:`UnknownFaultSiteWarning`, once per site per process) when a rule
  targets an unregistered site.

The ``test.`` namespace is reserved for abstract sites in unit tests of the
plan machinery itself (coin determinism, occurrence windows, …); both
enforcement layers skip it.  Downstream extensions register their sites via
:func:`register_fault_site` at import time of the module that hosts the new
``fault_point``.
"""

from __future__ import annotations

from typing import Dict

#: Site-name prefix exempt from registration, for plan-machinery unit tests.
TEST_SITE_NAMESPACE = "test."

#: Every compiled-in fault site: name -> where it fires and what it models.
REGISTERED_FAULT_SITES: Dict[str, str] = {
    "engine.chunk-build": (
        "CostEngine giant-chunk row build; a failure degrades to per-node "
        "fills (stats['chunk_build_failures'])"
    ),
    "engine.forced-evict": (
        "CostEngine.env_row probe; fires an adversarial LRU chunk eviction "
        "under the probe (the probed node's chunk is exempt)"
    ),
    "engine.numpy-import": (
        "resolve_backend's numpy availability check; models numpy missing "
        "or broken at engine-construction time (auto -> python)"
    ),
    "engine.row-poison": (
        "CostEngine row-cache fill; caches a subtly wrong copy so only "
        "verify_every sampling can catch it on a later hit"
    ),
    "fractional.lp-solve": (
        "FractionalEngine best-response LP solve; models a scipy solver "
        "failure (retry once, then FlowNetwork reference fallback)"
    ),
    "parallel.pool-start": (
        "parallel_map process-pool construction; models a pool that cannot "
        "start (serial-fallback rung)"
    ),
    "parallel.shm-create": (
        "shared_payload segment allocation in the parent; models /dev/shm "
        "exhaustion or a missing shared-memory mount (inline-bytes fallback)"
    ),
    "parallel.shm-attach": (
        "worker-side shared_memory attach, keyed by segment name; models a "
        "vanished or unreadable segment (cell retried by parallel_map)"
    ),
    "parallel.task": (
        "parallel_map worker task execution, keyed (index, attempt); models "
        "worker exceptions, crashes, and hangs"
    ),
    "search.profile": (
        "exhaustive_equilibrium_search per-profile evaluation, keyed by "
        "profile rank; models a failure mid-sweep between checkpoints"
    ),
    "service.query": (
        "GameService read-query dispatch, keyed (game, kind); models a "
        "handler failure inside the serving layer (typed InjectedFault "
        "error response, worker loop survives)"
    ),
    "service.update": (
        "GameService strategy-update commit, keyed (game, node); fires "
        "before any state changes so a drilled failure never publishes a "
        "half-applied version"
    ),
}


def is_registered_fault_site(name: str) -> bool:
    """Whether ``name`` is registered (the ``test.`` namespace passes)."""
    return name.startswith(TEST_SITE_NAMESPACE) or name in REGISTERED_FAULT_SITES


def register_fault_site(name: str, description: str) -> None:
    """Register an extension fault site (idempotent for identical entries).

    Re-registering a name with a *different* description raises — two
    subsystems silently sharing one site name is exactly the confusion the
    registry exists to prevent.
    """
    existing = REGISTERED_FAULT_SITES.get(name)
    if existing is not None and existing != description:
        raise ValueError(
            f"fault site {name!r} already registered with a different "
            f"description: {existing!r}"
        )
    REGISTERED_FAULT_SITES[name] = description


__all__ = [
    "REGISTERED_FAULT_SITES",
    "TEST_SITE_NAMESPACE",
    "is_registered_fault_site",
    "register_fault_site",
]
