"""Deterministic fault injection for the execution runtime.

The hot paths of the engine and experiment layers carry cheap, named *fault
sites* — ``fault_point("parallel.task", key=(index, attempt))`` and friends —
that are inert unless a :class:`FaultPlan` is installed.  A plan is a small
list of :class:`FaultRule` triggers matched by site name, optional key set,
optional seeded probability, and per-process occurrence window, so a test can
make *exactly* the third LP solve fail, crash the worker that runs cell 5's
first attempt, or force an eviction on every tenth row probe — reproducibly,
at any process count.

Three fault kinds cover the failure modes the runtime must survive:

* ``"error"`` — :func:`fault_point` raises :class:`InjectedFault` (a
  :class:`~repro.core.errors.BBCError`), standing in for a solver failure,
  a corrupt input, or any exception-shaped infrastructure fault;
* ``"crash"`` — the process dies on the spot via ``os._exit`` (no cleanup,
  no exception), standing in for an OOM kill or segfault.  Crash rules fire
  only in worker processes (see :func:`mark_worker_process`) unless
  ``where="anywhere"`` is set explicitly, so an injected worker crash can
  never take down the test process itself;
* ``"sleep"`` — the call stalls for ``seconds``, standing in for a hung
  worker so per-task timeouts can be exercised.

Sites that need to *corrupt* state rather than fail call :func:`fault_fires`
directly and apply their own effect (e.g. the poisoned-row site in
:class:`~repro.engine.cost_engine.CostEngine`).

The registry is one module-level plan per process.  ``parallel_map`` ships
the installed plan to its workers through the pool initializer, so a plan
installed in the test process governs worker-side sites too.  All matching
is deterministic: explicit keys are process-independent, seeded-probability
rules hash ``(seed, site, key)`` with crc32 (never the per-process ``hash``),
and occurrence counters are plain per-process counts.
"""

from __future__ import annotations

import os
import time
import warnings
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from ..core.errors import BBCError
from .sites import is_registered_fault_site


class UnknownFaultSiteWarning(UserWarning):
    """A :class:`FaultRule` targets a site no code registers.

    The rule can never fire — almost always an injection-config typo, which
    would otherwise make a fault-tolerance test silently assert nothing.
    Sites in the reserved ``test.`` namespace are exempt (see
    :mod:`repro.reliability.sites`); lint rule RPR004 enforces the same
    contract statically.
    """


class ReliabilityError(BBCError):
    """Base class for errors raised by :mod:`repro.reliability`."""


class InjectedFault(ReliabilityError):
    """Raised by :func:`fault_point` when an armed ``"error"`` rule fires.

    This is the *documented* typed error of every fault-injected failure
    path: entry points either absorb it (retry, fall back, resubmit) and
    return bit-identical results, or let it surface as-is — never as a bare
    ``multiprocessing``/scipy internal traceback.
    """

    def __init__(self, site: str, kind: str = "error", key=None) -> None:
        super().__init__(f"injected fault at {site!r} (kind={kind!r}, key={key!r})")
        self.site = site
        self.kind = kind
        self.key = key


class ParallelExecutionError(ReliabilityError):
    """A ``parallel_map`` cell failed on every rung (pool retries and serial)."""


class CheckpointError(ReliabilityError):
    """A checkpoint journal is unreadable, corrupt, or from a different run."""


#: Exit status used by ``kind="crash"`` rules; chosen to be recognisable in
#: worker post-mortems without colliding with common tool exit codes.
CRASH_EXIT_CODE = 66


@dataclass(frozen=True)
class FaultRule:
    """One trigger of a :class:`FaultPlan`.

    ``site`` names the fault point; ``keys`` (optional) restricts firing to
    specific key values; ``probability`` (optional) gates firing on the
    plan's seeded coin for ``(site, key)``; ``after``/``times`` open a
    per-process occurrence window (skip the first ``after`` matching hits,
    then fire at most ``times`` times — ``times=None`` fires forever).
    ``where`` restricts the rule to ``"worker"`` or ``"parent"`` processes;
    crash rules default to workers, everything else fires anywhere.
    """

    site: str
    kind: str = "error"  # "error" | "crash" | "sleep"
    keys: Optional[FrozenSet] = None
    probability: Optional[float] = None
    after: int = 0
    times: Optional[int] = 1
    seconds: float = 0.0
    where: Optional[str] = None  # None = kind default; "worker"|"parent"|"anywhere"

    def __post_init__(self) -> None:
        if self.kind not in ("error", "crash", "sleep"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.keys is not None and not isinstance(self.keys, frozenset):
            object.__setattr__(self, "keys", frozenset(self.keys))
        if self.where is None:
            object.__setattr__(
                self, "where", "worker" if self.kind == "crash" else "anywhere"
            )
        if self.where not in ("worker", "parent", "anywhere"):
            raise ValueError(f"unknown fault scope {self.where!r}")


@dataclass
class FaultPlan:
    """A picklable, seeded set of :class:`FaultRule` triggers.

    Occurrence counters are per-process (a forked worker starts from the
    counts at fork time; a pool-initializer install starts them fresh), so
    rules that must fire at one exact point across processes should pin
    ``keys`` rather than rely on counts.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    _hits: Dict[int, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        for rule in self.rules:
            _warn_unknown_site(rule.site)

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Iterable[str],
        *,
        probability: float = 0.1,
        kind: str = "error",
        times: Optional[int] = None,
    ) -> "FaultPlan":
        """A plan that fires ``kind`` at each site with a seeded coin per key.

        The coin is ``crc32(f"{seed}:{site}:{key!r}")`` compared against
        ``probability`` — fully deterministic across processes and runs for
        any picklable, ``repr``-stable key (ints, strings, tuples thereof).
        """
        rules = tuple(
            FaultRule(site=site, kind=kind, probability=probability, times=times)
            for site in sites
        )
        return cls(rules=rules, seed=seed)

    def _coin(self, site: str, key, probability: float) -> bool:
        token = f"{self.seed}:{site}:{key!r}".encode()
        return (zlib.crc32(token) % 10_000) < probability * 10_000

    def match(self, site: str, key=None) -> Optional[FaultRule]:
        """Return the first rule that fires for ``(site, key)`` here and now."""
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.where == "worker" and not _IN_WORKER:
                continue
            if rule.where == "parent" and _IN_WORKER:
                continue
            if rule.keys is not None and key not in rule.keys:
                continue
            if rule.probability is not None and not self._coin(
                site, key, rule.probability
            ):
                continue
            hits = self._hits.get(index, 0)
            self._hits[index] = hits + 1
            if hits < rule.after:
                continue
            if rule.times is not None and hits >= rule.after + rule.times:
                continue
            return rule
        return None


#: Sites already warned about in this process — the warning fires once per
#: typo, not once per plan copy (plans are pickled to every pool worker).
_WARNED_UNKNOWN_SITES: Set[str] = set()


def _warn_unknown_site(site: str) -> None:
    if is_registered_fault_site(site) or site in _WARNED_UNKNOWN_SITES:
        return
    _WARNED_UNKNOWN_SITES.add(site)
    warnings.warn(
        f"FaultRule targets unregistered fault site {site!r}: no fault_point "
        "carries that name, so the rule can never fire. Check for a typo "
        "against repro.reliability.sites.REGISTERED_FAULT_SITES, or use the "
        "reserved 'test.' namespace for abstract unit-test sites.",
        UnknownFaultSiteWarning,
        stacklevel=3,
    )


#: The installed plan of this process (``None`` = every site inert).
_ACTIVE: Optional[FaultPlan] = None
#: Set in pool workers so ``where="worker"`` rules can tell the sides apart.
_IN_WORKER = False


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as this process's active plan (``None`` clears it)."""
    global _ACTIVE
    _ACTIVE = plan


def clear_fault_plan() -> None:
    """Disarm every fault site in this process."""
    install_fault_plan(None)


def current_plan() -> Optional[FaultPlan]:
    """Return the installed plan, or ``None`` when no faults are armed."""
    return _ACTIVE


def mark_worker_process() -> None:
    """Mark this process as a pool worker (enables ``where="worker"`` rules)."""
    global _IN_WORKER
    _IN_WORKER = True


@contextmanager
def active_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the ``with`` block."""
    previous = _ACTIVE
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)


def fault_fires(site: str, key=None) -> Optional[FaultRule]:
    """Return the armed rule firing at ``(site, key)``, or ``None``.

    The no-plan fast path is one global read, so compiled-in hooks cost
    nearly nothing in production runs.  Sites that corrupt state (rather
    than raise) branch on this directly.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.match(site, key)


def fault_point(site: str, key=None) -> None:
    """Execute the fault site ``site``: a no-op unless an armed rule fires.

    ``"error"`` rules raise :class:`InjectedFault`; ``"sleep"`` rules stall
    for the rule's ``seconds``; ``"crash"`` rules terminate the process via
    ``os._exit`` (worker-scoped by default).
    """
    rule = fault_fires(site, key)
    if rule is None:
        return
    if rule.kind == "sleep":
        time.sleep(rule.seconds)
        return
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    raise InjectedFault(site, rule.kind, key)


__all__ = [
    "CRASH_EXIT_CODE",
    "CheckpointError",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ParallelExecutionError",
    "ReliabilityError",
    "UnknownFaultSiteWarning",
    "active_faults",
    "clear_fault_plan",
    "current_plan",
    "fault_fires",
    "fault_point",
    "install_fault_plan",
    "mark_worker_process",
]
