"""Fault-tolerant execution runtime: fault injection and checkpoint journals.

This subsystem makes failure handling explicit and testable across the
engine and experiment layers:

* :mod:`repro.reliability.faults` — a seeded, picklable :class:`FaultPlan`
  plus cheap ``fault_point("site")`` hooks compiled into the hot paths'
  failure sites (pool startup, worker task execution, LP solves, row-chunk
  builds and evictions, numpy-import gating), so tests inject crashes,
  solver failures, hangs, and adversarial evictions at exact reproducible
  points and assert results stay bit-identical to a fault-free run;
* :mod:`repro.reliability.journal` — an atomic-write
  :class:`CheckpointJournal` of completed Gray-code profile ranges / grid
  cells, adopted by the exhaustive searches and ``parallel_map`` so a
  killed run resumes without recomputing finished work.

The consumers are :func:`repro.experiments.parallel.parallel_map` (crash
containment, retries, pool restarts, serial fallback),
:func:`repro.core.search.exhaustive_equilibrium_search` (checkpointed
sweeps), and the engines' graceful-degradation paths
(``CostEngine(verify_every=...)`` self-verification, ``FractionalEngine``
LP retry-then-reference-fallback); the "Failure semantics" section of
:mod:`repro.engine` documents the full contract.
"""

from .faults import (
    CRASH_EXIT_CODE,
    CheckpointError,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ParallelExecutionError,
    ReliabilityError,
    UnknownFaultSiteWarning,
    active_faults,
    clear_fault_plan,
    current_plan,
    fault_fires,
    fault_point,
    install_fault_plan,
    mark_worker_process,
)
from .journal import CheckpointJournal, atomic_write_text, resolve_journal
from .sites import (
    REGISTERED_FAULT_SITES,
    TEST_SITE_NAMESPACE,
    is_registered_fault_site,
    register_fault_site,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "CheckpointError",
    "CheckpointJournal",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ParallelExecutionError",
    "REGISTERED_FAULT_SITES",
    "ReliabilityError",
    "TEST_SITE_NAMESPACE",
    "UnknownFaultSiteWarning",
    "active_faults",
    "atomic_write_text",
    "clear_fault_plan",
    "current_plan",
    "fault_fires",
    "fault_point",
    "install_fault_plan",
    "is_registered_fault_site",
    "mark_worker_process",
    "register_fault_site",
    "resolve_journal",
]
