"""Crash-safe checkpoint journal for long sweeps and study grids.

A :class:`CheckpointJournal` is a tiny on-disk map of completed work units —
Gray-code profile ranges for the exhaustive searches, grid-cell results for
``parallel_map`` — rewritten atomically (``tmp`` + ``os.replace``) on every
flush, so a killed run leaves either the previous consistent journal or the
new one, never a truncated file.  Resuming is then just "skip what the
journal already holds": :func:`repro.core.search
.exhaustive_equilibrium_search` skips completed profile ranges and
:func:`repro.experiments.parallel.parallel_map` skips completed cells.

Keys are strings; values must survive a JSON round trip unchanged (dicts,
lists, strings, numbers, booleans, ``None``) — exactly the shape of study
rows and search-range summaries.  A journal written by a different search
(mismatched ``meta``) or a corrupt file raises
:class:`~repro.reliability.faults.CheckpointError` instead of silently
resuming the wrong run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from .faults import CheckpointError

_FORMAT = "repro-checkpoint-v1"
_MISSING = object()


def atomic_write_text(path: "Path | str", text: str) -> None:
    """Write ``text`` to ``path`` atomically (``tmp`` + ``os.replace``).

    The temporary file lives in the destination directory so the replace is
    a same-filesystem rename; a crash mid-write leaves the previous file (or
    no file) intact, never a truncated one.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class CheckpointJournal:
    """An atomic on-disk record of completed work units.

    ``flush_every`` batches disk rewrites: the journal is flushed after that
    many :meth:`record` calls (default every call) and can always be forced
    with :meth:`flush`.  Unflushed records are at risk on a kill — callers
    trade durability granularity for write traffic, never consistency.
    """

    def __init__(self, path: "Path | str", *, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be at least 1 (got {flush_every})")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._entries: Dict[str, object] = {}
        self._meta: Optional[dict] = None
        self._dirty = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text())
        except (ValueError, OSError) as exc:
            raise CheckpointError(
                f"checkpoint journal {self.path} is unreadable or corrupt ({exc}); "
                "delete it to start over"
            ) from exc
        if not isinstance(data, dict) or data.get("journal") != _FORMAT:
            raise CheckpointError(
                f"checkpoint journal {self.path} is not a {_FORMAT} file; "
                "delete it to start over"
            )
        entries = data.get("entries")
        self._entries = dict(entries) if isinstance(entries, dict) else {}
        meta = data.get("meta")
        self._meta = meta if isinstance(meta, dict) else None

    # ------------------------------------------------------------------ #
    # Run identity
    # ------------------------------------------------------------------ #
    def bind_meta(self, meta: dict) -> None:
        """Pin the journal to one run shape, or verify it on resume.

        The first binding stores ``meta`` verbatim; later bindings compare
        (after a JSON round trip, so tuples and lists agree) and raise
        :class:`CheckpointError` on mismatch — a journal must never resume a
        *different* search as if it were the same one.
        """
        normalised = json.loads(json.dumps(meta))
        if self._meta is None:
            self._meta = normalised
            self._dirty += 1
            self.flush()
            return
        if self._meta != normalised:
            raise CheckpointError(
                f"checkpoint journal {self.path} belongs to a different run "
                f"(recorded meta {self._meta!r}, current {normalised!r}); "
                "use a fresh journal path or delete the stale file"
            )

    # ------------------------------------------------------------------ #
    # Entries
    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        return str(key) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, default=None):
        """Return the recorded value of ``key`` (``default`` when absent)."""
        value = self._entries.get(str(key), _MISSING)
        return default if value is _MISSING else value

    def record(self, key: str, value=None) -> None:
        """Mark ``key`` complete with ``value`` and flush per ``flush_every``."""
        self._entries[str(key)] = value
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically rewrite the journal file if there are unflushed records."""
        if not self._dirty:
            return
        payload = {"journal": _FORMAT, "meta": self._meta, "entries": self._entries}
        atomic_write_text(self.path, json.dumps(payload, indent=2) + "\n")
        self._dirty = 0

    def clear(self) -> None:
        """Drop every entry and the bound meta, and rewrite the file."""
        self._entries = {}
        self._meta = None
        self._dirty = 1
        self.flush()


def resolve_journal(journal) -> Optional[CheckpointJournal]:
    """Normalise a ``journal`` argument: ``None``, a journal, or a path."""
    if journal is None or isinstance(journal, CheckpointJournal):
        return journal
    return CheckpointJournal(journal)


__all__ = ["CheckpointJournal", "atomic_write_text", "resolve_journal"]
