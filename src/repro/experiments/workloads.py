"""Seeded workload generators for experiments, examples, and tests.

The paper's model is motivated by social networks, P2P file-sharing, and
overlay networks; these generators produce non-uniform BBC games shaped like
those motivating scenarios so the examples and the empirical benchmarks have
realistic (but fully reproducible) inputs.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..core import BBCGame, Objective, StrategyProfile, UniformBBCGame
from ..rng import SeedLike, as_rng as _rng


def random_preference_game(
    n: int,
    *,
    budget: int = 1,
    weight_choices: Sequence[float] = (1.0, 1.0, 2.0, 3.0),
    preference_density: float = 0.5,
    objective: Objective = Objective.SUM,
    seed: SeedLike = None,
) -> BBCGame:
    """A game where each node cares about a random subset of the others.

    Models the "friend finder" scenario of the introduction: sparse,
    asymmetric interest with varying intensity, uniform link costs/lengths.
    """
    rng = _rng(seed)
    weights: Dict[Tuple[int, int], float] = {}
    for source in range(n):
        for target in range(n):
            if source != target and rng.random() < preference_density:
                weights[(source, target)] = float(rng.choice(list(weight_choices)))
    return BBCGame(
        nodes=range(n),
        weights=weights,
        default_weight=0.0,
        default_budget=float(budget),
        objective=objective,
    )


def interest_cluster_game(
    num_clusters: int,
    cluster_size: int,
    *,
    budget: int = 2,
    in_cluster_weight: float = 3.0,
    cross_cluster_weight: float = 1.0,
    objective: Objective = Objective.SUM,
) -> BBCGame:
    """A game with community structure (the "social network" workload).

    Nodes care strongly about their own cluster and weakly about everyone
    else, which is the regime in which selfish link formation produces
    hub-and-spoke communities.
    """
    n = num_clusters * cluster_size
    weights: Dict[Tuple[int, int], float] = {}
    for source in range(n):
        for target in range(n):
            if source == target:
                continue
            same_cluster = source // cluster_size == target // cluster_size
            weights[(source, target)] = in_cluster_weight if same_cluster else cross_cluster_weight
    return BBCGame(
        nodes=range(n),
        weights=weights,
        default_weight=0.0,
        default_budget=float(budget),
        objective=objective,
    )


def latency_overlay_game(
    n: int,
    *,
    budget: int = 2,
    latency_classes: Sequence[float] = (1.0, 2.0, 5.0),
    seed: SeedLike = None,
    objective: Objective = Objective.SUM,
) -> BBCGame:
    """A game with non-uniform link lengths (the "overlay network" workload).

    Link lengths model pairwise latencies drawn from a few classes (same
    rack / same region / cross-continent); preferences are uniform, budgets
    small, which is the selfish-neighbour-selection setting of the overlay
    motivation.
    """
    rng = _rng(seed)
    lengths: Dict[Tuple[int, int], float] = {}
    for source in range(n):
        for target in range(n):
            if source != target:
                lengths[(source, target)] = float(rng.choice(list(latency_classes)))
    return BBCGame(
        nodes=range(n),
        link_lengths=lengths,
        default_weight=1.0,
        default_budget=float(budget),
        objective=objective,
    )


def random_initial_profile(game: BBCGame, seed: SeedLike = None) -> StrategyProfile:
    """A uniformly random budget-maximal starting profile for dynamics runs."""
    rng = _rng(seed)
    strategies = {}
    for node in game.nodes:
        others = [v for v in game.nodes if v != node]
        rng.shuffle(others)
        remaining = game.budget(node)
        chosen = []
        for target in others:
            price = game.link_cost(node, target)
            if price <= remaining + 1e-9:
                chosen.append(target)
                remaining -= price
        strategies[node] = frozenset(chosen)
    return StrategyProfile(strategies)


def empty_initial_profile(game: BBCGame) -> StrategyProfile:
    """The empty starting profile (the paper's conjectured-convergent start)."""
    return game.empty_profile()


def uniform_game(n: int, k: int, objective: Objective = Objective.SUM) -> UniformBBCGame:
    """Convenience constructor matching the paper's (n, k)-uniform notation."""
    return UniformBBCGame(n, k, objective=objective)
