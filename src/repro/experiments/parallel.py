"""Process-parallel study sweeps.

Study grids and multi-start dynamics runs are embarrassingly parallel over
their (n, k, seed) cells, but a :class:`~repro.core.BBCGame` drags its engine
caches along and the engine registry is per-process anyway.  The contract
here is therefore *rebuild, don't ship*: a cell crosses the process boundary
as a compact picklable :class:`GameSpec` (plus plain parameters), and each
worker rebuilds the game — and implicitly its
:class:`~repro.engine.IndexedGame` / :class:`~repro.engine.CostEngine`
through the ordinary shared-engine routed entry points — locally.

:func:`parallel_map` is the only execution primitive: it preserves item
order, falls back to a deterministic serial loop when ``processes == 1``
(or when the platform cannot provide a pool), and therefore returns
bit-identical results at any process count as long as the cell function is
deterministic in its arguments.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, TypeVar

from ..core import BBCGame, Objective, UniformBBCGame

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class GameSpec:
    """A compact, picklable description of a game.

    ``("uniform", (n, k, objective, penalty))`` for the (n, k)-uniform game,
    or ``("general", (nodes, sparse tables, defaults, penalty, objective))``
    for an arbitrary :class:`BBCGame`.  Workers call :meth:`build`; nothing
    derived (graphs, engines, caches) ever crosses the process boundary.
    """

    kind: str
    payload: tuple

    @staticmethod
    def from_fractional_game(game) -> "GameSpec":
        """Capture a :class:`~repro.core.FractionalBBCGame` via its base game.

        The fractional relaxation carries no state of its own beyond the base
        integral game, so the spec is the base's; rebuild with
        :meth:`build_fractional`.
        """
        return GameSpec.from_game(game.base)

    @staticmethod
    def from_game(game: BBCGame) -> "GameSpec":
        """Capture ``game`` as a spec from which :meth:`build` rebuilds it."""
        if isinstance(game, UniformBBCGame):
            return GameSpec(
                "uniform",
                (game.n, game.k, game.objective.value, game.disconnection_penalty),
            )
        # The sparse tables are private to BBCGame but this module is part of
        # the same subsystem; insertion order is preserved so the rebuilt
        # game iterates identically to the original.
        return GameSpec(
            "general",
            (
                tuple(game.nodes),
                tuple(game._weights.items()),
                tuple(game._link_costs.items()),
                tuple(game._link_lengths.items()),
                tuple(game._budgets.items()),
                game._default_weight,
                game._default_link_cost,
                game._default_link_length,
                game._default_budget,
                game.disconnection_penalty,
                game.objective.value,
            ),
        )

    def build(self) -> BBCGame:
        """Rebuild the described game (fresh caches, fresh engine on first use)."""
        if self.kind == "uniform":
            n, k, objective, penalty = self.payload
            return UniformBBCGame(
                n, k, objective=Objective(objective), disconnection_penalty=penalty
            )
        if self.kind != "general":
            raise ValueError(f"unknown GameSpec kind {self.kind!r}")
        (
            nodes,
            weights,
            link_costs,
            link_lengths,
            budgets,
            default_weight,
            default_link_cost,
            default_link_length,
            default_budget,
            penalty,
            objective,
        ) = self.payload
        return BBCGame(
            nodes=nodes,
            weights=dict(weights),
            link_costs=dict(link_costs),
            link_lengths=dict(link_lengths),
            budgets=dict(budgets),
            default_weight=default_weight,
            default_link_cost=default_link_cost,
            default_link_length=default_link_length,
            default_budget=default_budget,
            disconnection_penalty=penalty,
            objective=Objective(objective),
        )

    def build_fractional(self):
        """Rebuild the described game wrapped as a :class:`FractionalBBCGame`.

        Fresh caches and a fresh :class:`~repro.engine.FractionalEngine` on
        first use, exactly like :meth:`build` for the integral engine.
        """
        from ..core.fractional import FractionalBBCGame

        return FractionalBBCGame(self.build())


def resolve_processes(processes: Optional[int]) -> int:
    """Normalise a ``processes`` argument (``None`` means one per CPU)."""
    if processes is None:
        return os.cpu_count() or 1
    if processes < 1:
        raise ValueError(f"processes must be at least 1 (got {processes})")
    return processes


def default_processes(cap: int = 4) -> int:
    """Return the benchmarks' worker-count default: one per CPU, capped.

    Study grids are small, so past a handful of workers fork overhead wins;
    the benchmarks share this policy instead of re-deriving it.
    """
    return min(cap, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results come back in item order regardless of process count, so a study
    produces identical rows at ``processes=1`` (a plain deterministic loop —
    no pool, no pickling) and ``processes=N``.  ``fn`` must be a module-level
    callable and every item picklable when ``processes > 1``.  If the
    platform cannot provide a process pool the call degrades to the serial
    loop with a :class:`RuntimeWarning` instead of failing the study.
    """
    work: List[T] = list(items)
    count = min(resolve_processes(processes), len(work))
    if count <= 1:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (count * 4))
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (e.g. Windows)
        context = multiprocessing.get_context()
    try:
        # Only pool *startup* failures trigger the serial fallback; an
        # exception raised by ``fn`` inside a worker propagates unchanged.
        pool = context.Pool(count)
    except OSError as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); running {len(work)} cells serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in work]
    with pool:
        return pool.map(fn, work, chunksize)


__all__ = ["GameSpec", "default_processes", "parallel_map", "resolve_processes"]
