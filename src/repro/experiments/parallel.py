"""Process-parallel study sweeps with crash containment.

Study grids and multi-start dynamics runs are embarrassingly parallel over
their (n, k, seed) cells, but a :class:`~repro.core.BBCGame` drags its engine
caches along and the engine registry is per-process anyway.  The contract
here is therefore *rebuild, don't ship*: a cell crosses the process boundary
as a compact picklable :class:`GameSpec` (plus plain parameters), and each
worker rebuilds the game — and implicitly its
:class:`~repro.engine.IndexedGame` / :class:`~repro.engine.CostEngine`
through the ordinary shared-engine routed entry points — locally.

:func:`parallel_map` is the only execution primitive and is crash-safe: it
preserves item order, retries failed cells a bounded number of times with a
deterministic backoff, detects dead worker pools (``BrokenProcessPool``,
hung tasks past ``timeout``) and resubmits only the lost cells on a fresh
pool up to ``max_pool_restarts`` times, and finally degrades to an in-process
serial rung with a :class:`RuntimeWarning` naming the cell count and cause.
Because every cell is keyed by its item index and ``fn`` is required to be
deterministic in its arguments, results are bit-identical at any process
count, retry budget, or crash schedule — a worker OOM-kill mid-grid changes
*when* cells run, never what they return.  The fault sites
``parallel.pool-start`` and ``parallel.task`` (keyed ``(index, attempt)``)
let :mod:`repro.reliability.faults` inject those failures deterministically;
``tests/test_reliability.py`` pins the invariance.

Sharded sweeps additionally move *read-only payloads* (exported engine
tables, candidate sets) to workers through :class:`SharedPayload` — one
``multiprocessing.shared_memory`` segment per run, created by the parent,
attached read-only by workers (zero-copy numpy views on the full dependency
leg), and unlinked by the parent in a ``finally``/atexit pair so crashes and
pool restarts cannot leak segments.  The ``parallel.shm-create`` and
``parallel.shm-attach`` fault sites cover both halves; creation failures
degrade to shipping the same packed bytes inline with each task.

Passing ``journal=`` (a :class:`~repro.reliability.journal.CheckpointJournal`
or a path) additionally checkpoints each completed cell's result, so a killed
grid resumes without recomputing finished cells.  Journaled results must
survive a JSON round trip unchanged (study rows — dicts of scalars — do).
"""

from __future__ import annotations

import atexit
import itertools
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, TypeVar

from ..core import BBCGame, Objective, UniformBBCGame
from ..reliability import faults as _faults
from ..reliability.faults import InjectedFault, ParallelExecutionError
from ..reliability.journal import resolve_journal

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class GameSpec:
    """A compact, picklable description of a game.

    ``("uniform", (n, k, objective, penalty))`` for the (n, k)-uniform game,
    or ``("general", (nodes, sparse tables, defaults, penalty, objective))``
    for an arbitrary :class:`BBCGame`.  Workers call :meth:`build`; nothing
    derived (graphs, engines, caches) ever crosses the process boundary.
    """

    kind: str
    payload: tuple

    @staticmethod
    def from_fractional_game(game) -> "GameSpec":
        """Capture a :class:`~repro.core.FractionalBBCGame` via its base game.

        The fractional relaxation carries no state of its own beyond the base
        integral game, so the spec is the base's; rebuild with
        :meth:`build_fractional`.
        """
        return GameSpec.from_game(game.base)

    @staticmethod
    def from_game(game: BBCGame) -> "GameSpec":
        """Capture ``game`` as a spec from which :meth:`build` rebuilds it."""
        # Exact-type check, not isinstance: a UniformBBCGame *subclass* may
        # override behaviour that (n, k, objective, penalty) cannot encode,
        # and silently round-tripping it as a plain uniform game would hand
        # workers the wrong game.  Subclasses take the general spec, which
        # captures the actual tables.
        if type(game) is UniformBBCGame:
            return GameSpec(
                "uniform",
                (game.n, game.k, game.objective.value, game.disconnection_penalty),
            )
        # The sparse tables are private to BBCGame but this module is part of
        # the same subsystem; insertion order is preserved so the rebuilt
        # game iterates identically to the original.
        return GameSpec(
            "general",
            (
                tuple(game.nodes),
                tuple(game._weights.items()),
                tuple(game._link_costs.items()),
                tuple(game._link_lengths.items()),
                tuple(game._budgets.items()),
                game._default_weight,
                game._default_link_cost,
                game._default_link_length,
                game._default_budget,
                game.disconnection_penalty,
                game.objective.value,
            ),
        )

    def build(self) -> BBCGame:
        """Rebuild the described game (fresh caches, fresh engine on first use)."""
        if self.kind == "uniform":
            n, k, objective, penalty = self.payload
            return UniformBBCGame(
                n, k, objective=Objective(objective), disconnection_penalty=penalty
            )
        if self.kind != "general":
            raise ValueError(f"unknown GameSpec kind {self.kind!r}")
        (
            nodes,
            weights,
            link_costs,
            link_lengths,
            budgets,
            default_weight,
            default_link_cost,
            default_link_length,
            default_budget,
            penalty,
            objective,
        ) = self.payload
        return BBCGame(
            nodes=nodes,
            weights=dict(weights),
            link_costs=dict(link_costs),
            link_lengths=dict(link_lengths),
            budgets=dict(budgets),
            default_weight=default_weight,
            default_link_cost=default_link_cost,
            default_link_length=default_link_length,
            default_budget=default_budget,
            disconnection_penalty=penalty,
            objective=Objective(objective),
        )

    def build_fractional(self):
        """Rebuild the described game wrapped as a :class:`FractionalBBCGame`.

        Fresh caches and a fresh :class:`~repro.engine.FractionalEngine` on
        first use, exactly like :meth:`build` for the integral engine.
        """
        from ..core.fractional import FractionalBBCGame

        return FractionalBBCGame(self.build())


def _available_cpus() -> int:
    """CPUs this process may actually run on, not how many the host has.

    ``os.sched_getaffinity`` sees cgroup/taskset pinning (a CI container
    restricted to 2 of the host's 64 cores gets 2 workers, not 64 forks
    fighting over 2 cores); platforms without it fall back to
    ``os.cpu_count``.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - affinity query denied
            pass
    return os.cpu_count() or 1


def _processes_override() -> Optional[int]:
    """The ``REPRO_PROCESSES`` env override, validated, or ``None``.

    The documented escape hatch for CI and containers whose effective CPU
    budget the affinity mask cannot see (e.g. cfs-quota throttling): it
    replaces the *detected* worker count wherever a caller asked for the
    automatic default, and never overrides an explicit ``processes=N``.
    """
    raw = os.environ.get("REPRO_PROCESSES")
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PROCESSES must be a positive integer (got {raw!r})"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_PROCESSES must be at least 1 (got {value})")
    return value


def resolve_processes(processes: Optional[int]) -> int:
    """Normalise a ``processes`` argument.

    ``None`` means one worker per *available* CPU — the scheduling-affinity
    mask where the platform exposes one, else ``os.cpu_count`` — unless the
    ``REPRO_PROCESSES`` environment variable pins the automatic count
    explicitly.  Explicit integers pass through unchanged (after
    validation); the override never second-guesses them.
    """
    if processes is None:
        override = _processes_override()
        if override is not None:
            return override
        return _available_cpus()
    if processes < 1:
        raise ValueError(f"processes must be at least 1 (got {processes})")
    return processes


def default_processes(cap: int = 4) -> int:
    """Return the benchmarks' worker-count default: one per available CPU, capped.

    Study grids are small, so past a handful of workers fork overhead wins;
    the benchmarks share this policy instead of re-deriving it.  "Available"
    respects CPU affinity (see :func:`resolve_processes`), and an explicit
    ``REPRO_PROCESSES`` override bypasses the cap — it is configuration, not
    a detected default.
    """
    override = _processes_override()
    if override is not None:
        return override
    return min(cap, _available_cpus())


# --------------------------------------------------------------------- #
# Shared-memory payload exports (sharded sweeps read, the parent owns)
# --------------------------------------------------------------------- #
#: Name prefix of every shared segment this process creates.  Segments are
#: explicitly named (``repro-shm-{pid}-{counter}``) so leak assertions can
#: scan ``/dev/shm`` for strays after crashes and pool restarts.
SHM_NAME_PREFIX = "repro-shm"

_SHM_COUNTER = itertools.count()

#: Segments created and not yet closed by *this* process, by name.  The
#: atexit hook below is the last-resort unlink for parents that die without
#: reaching their ``finally`` (a crashed worker never appears here: workers
#: only attach, and their deaths are cleaned up by the owning parent).
_ACTIVE_EXPORTS: Dict[str, "SharedPayload"] = {}

#: Worker-side attach cache: segment name -> (obj, arrays, shm handle).  The
#: handle keeps the mapping alive for the zero-copy array views; workers die
#: with their pool, and the parent's unlink removes the segment itself.
_ATTACHED_PAYLOADS: Dict[str, tuple] = {}


class SharedPayload:
    """One parent-owned export of a packed payload to pool workers.

    Ownership contract (see also "Snapshot ownership and lifetime" in
    :mod:`repro.engine`): the parent *creates* the segment, workers *attach*
    read-only via :func:`attach_payload`, and only the parent *unlinks* —
    in a ``finally`` around the pool run, or at interpreter exit through the
    module atexit hook if the run never gets that far.  Worker crashes and
    pool restarts therefore cannot leak segments: attachments die with the
    worker processes, and the name stays registered parent-side until
    :meth:`close`.

    When segment allocation fails — ``/dev/shm`` exhausted, no shared-memory
    mount, or the ``parallel.shm-create`` fault site firing — the payload
    degrades to *inline* mode: the same packed bytes ride along inside each
    task's arguments instead of a shared mapping.  Workers cannot tell the
    difference (:func:`attach_payload` decodes both), results are identical,
    and there is nothing to unlink.
    """

    def __init__(self, name: Optional[str], shm, inline: Optional[bytes]) -> None:
        self.name = name
        self._shm = shm
        self._inline = inline

    @property
    def ref(self) -> tuple:
        """The picklable handle workers pass to :func:`attach_payload`."""
        if self._inline is not None:
            return ("inline", self._inline)
        if self._shm is None:
            raise ValueError("SharedPayload is closed")
        return ("shm", self.name)

    @classmethod
    def create(cls, obj, arrays=None) -> "SharedPayload":
        """Pack ``(obj, arrays)`` and export it, preferring shared memory."""
        from ..engine.snapshot import pack_payload

        data = pack_payload(obj, arrays)
        try:
            _faults.fault_point("parallel.shm-create")
            if not _fork_context_available():
                # Without fork, pool children run their own resource
                # trackers, and a spawn child's tracker unlinks "its"
                # attached segment when the child exits — yanking it from
                # everyone else.  Inline bytes are safe everywhere.
                raise OSError("no fork context; shared segments need a shared tracker")
            from multiprocessing import shared_memory

            shm = None
            for _ in range(3):  # a same-pid leftover name is possible after
                name = f"{SHM_NAME_PREFIX}-{os.getpid()}-{next(_SHM_COUNTER)}"
                try:  # a hard kill + pid reuse; just take the next counter
                    shm = shared_memory.SharedMemory(
                        name=name, create=True, size=max(1, len(data))
                    )
                    break
                except FileExistsError:
                    continue
            if shm is None:
                raise OSError(f"no free segment name under {SHM_NAME_PREFIX}")
            shm.buf[: len(data)] = data
        except (OSError, InjectedFault) as exc:
            warnings.warn(
                f"shared-memory export unavailable ({exc!r}); "
                f"shipping {len(data)} payload bytes inline",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls(None, None, data)
        payload = cls(shm.name, shm, None)
        _ACTIVE_EXPORTS[shm.name] = payload
        return payload

    def close(self) -> None:
        """Release and unlink the segment (idempotent; no-op for inline)."""
        shm = self._shm
        self._shm = None
        if shm is None:
            return
        _ACTIVE_EXPORTS.pop(self.name, None)
        try:
            shm.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - unlinked elsewhere
            pass


def _fork_context_available() -> bool:
    """Whether the ``fork`` start method exists (shared resource tracker)."""
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return False
    return True


def attach_payload(ref: tuple):
    """Worker-side decode of a :attr:`SharedPayload.ref`: ``(obj, arrays)``.

    Shared-memory refs attach the named segment (``parallel.shm-attach``
    fault site, keyed by segment name; failures propagate so the pool's
    retry/restart machinery handles them like any worker fault) and cache
    the decoded payload per process so one worker pays the decode once per
    segment, not once per cell.  Inline refs just decode the carried bytes.

    No ``resource_tracker`` bookkeeping happens here: forked workers share
    the parent's tracker, where the attach-side registration is an idempotent
    re-add of the name the parent registered at creation, and the parent's
    single ``unlink`` retires it exactly once.  (:meth:`SharedPayload.create`
    only emits shared-memory refs when the fork context exists, so a private
    per-child tracker never sees one of these segments.)
    """
    kind, value = ref
    if kind == "inline":
        from ..engine.snapshot import unpack_payload

        return unpack_payload(value)
    if kind != "shm":
        raise ValueError(f"unknown payload ref kind {kind!r}")
    cached = _ATTACHED_PAYLOADS.get(value)
    if cached is not None:
        return cached[0], cached[1]
    _faults.fault_point("parallel.shm-attach", key=value)
    from multiprocessing import shared_memory
    from ..engine.snapshot import unpack_payload

    shm = shared_memory.SharedMemory(name=value)
    obj, arrays = unpack_payload(shm.buf)
    _ATTACHED_PAYLOADS[value] = (obj, arrays, shm)
    return obj, arrays


def active_export_names() -> List[str]:
    """Names of shared segments this process currently owns (leak probes)."""
    return sorted(_ACTIVE_EXPORTS)


def _close_active_exports() -> None:  # pragma: no cover - exit-path safety net
    for payload in list(_ACTIVE_EXPORTS.values()):
        payload.close()


def _release_attached(shm) -> None:
    """Close an attached segment handle, tolerating live zero-copy views."""
    try:
        shm.close()
    except BufferError:
        # numpy views exported from the mapping are still alive somewhere
        # (e.g. a memo holding a slice at interpreter exit).  The mapping
        # cannot be unmapped while they live, and ``__del__`` retrying
        # ``close()`` would print an ignored exception — detach the buffer
        # and mmap from the handle so only the fd is closed, and let process
        # exit reclaim the mapping itself.
        shm._buf = None
        shm._mmap = None
        try:
            shm.close()
        except OSError:
            pass


def _close_attached_payloads() -> None:  # pragma: no cover - exit-path safety net
    import gc

    entries = list(_ATTACHED_PAYLOADS.values())
    _ATTACHED_PAYLOADS.clear()
    handles = [entry[2] for entry in entries]
    del entries  # drop the cached arrays (and their buffer exports) first
    gc.collect()
    for shm in handles:
        _release_attached(shm)


atexit.register(_close_active_exports)
atexit.register(_close_attached_payloads)


#: Unfilled-cell sentinel (``None`` is a legitimate cell result).
_PENDING = object()

_RUN_STAT_KEYS = (
    "cells",
    "journal_hits",
    "retried",
    "timeouts",
    "crashed",
    "pool_restarts",
    "serial_fallback_cells",
    "skipped",
)

#: Failure-handling counters of the most recent :func:`parallel_map` call in
#: this process (published even when the call raises): cells submitted,
#: journal-served cells, task retries, task timeouts, cells lost to a dead
#: pool, pool restarts, cells degraded to the serial rung, and cells skipped
#: by ``on_error="skip"``.  The bench smoke prints these so regressions in
#: failure handling are visible in CI logs.
_LAST_RUN_STATS: Dict[str, int] = {key: 0 for key in _RUN_STAT_KEYS}


def last_run_stats() -> Dict[str, int]:
    """Return a copy of the most recent :func:`parallel_map` run's counters."""
    return dict(_LAST_RUN_STATS)


def _worker_init(plan) -> None:
    """Pool-worker initializer: mark the process and arm the caller's faults."""
    _faults.mark_worker_process()
    if plan is not None:
        _faults.install_fault_plan(plan)


def _pool_cell(fn, index: int, attempt: int, item):
    """One worker-side cell execution, wrapped in its fault site."""
    _faults.fault_point("parallel.task", key=(index, attempt))
    return fn(item)


class _HungTask(ParallelExecutionError):
    """A running task outlived its deadline; its pool generation is condemned."""

    def __init__(self, index: int, timeout: float) -> None:
        super().__init__(
            f"cell {index} still running after its {timeout:g}s timeout; "
            "abandoning the worker pool generation"
        )
        self.index = index


def _journal_record(journal, index: int, value) -> None:
    if journal is not None:
        journal.record(f"cell:{index}", value)


def _poll_interval(deadlines) -> Optional[float]:
    live = [deadline for deadline in deadlines.values() if deadline is not None]
    if not live:
        return None
    return max(0.01, min(live) - time.monotonic())


def _run_generation(
    executor,
    fn,
    work,
    todo: List[int],
    attempts: Dict[int, int],
    errors: Dict[int, int],
    results: list,
    failed: Dict[int, BaseException],
    stats: Dict[str, int],
    *,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    journal,
) -> Tuple[List[int], Optional[BaseException]]:
    """Drive ``todo`` cells through one pool generation.

    Successes land in ``results`` (and the journal); failures past the retry
    budget land in ``failed``.  Returns ``([], None)`` when every cell
    resolved, or ``(lost, cause)`` when the generation died first — a broken
    pool or a hung task — with exactly the cells whose outcome is unknown.
    """
    futures: Dict[object, int] = {}
    deadlines: Dict[object, Optional[float]] = {}

    def submit(index: int) -> None:
        attempt = attempts[index]
        attempts[index] = attempt + 1
        future = executor.submit(_pool_cell, fn, index, attempt, work[index])
        futures[future] = index
        deadlines[future] = (time.monotonic() + timeout) if timeout else None

    try:
        for index in todo:
            submit(index)
        while futures:
            done, _ = wait(
                list(futures), timeout=_poll_interval(deadlines),
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                index = futures.pop(future)
                deadlines.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    errors[index] += 1
                    if errors[index] <= retries:
                        stats["retried"] += 1
                        if backoff:
                            # Deterministic linear backoff: attempt k of a
                            # cell waits k * backoff seconds, no jitter.
                            time.sleep(backoff * errors[index])
                        submit(index)
                    else:
                        failed[index] = exc
                else:
                    results[index] = value
                    _journal_record(journal, index, value)
            if timeout:
                now = time.monotonic()
                for future, deadline in list(deadlines.items()):
                    if deadline is None or deadline > now:
                        continue
                    index = futures[future]
                    stats["timeouts"] += 1
                    if future.cancel():
                        # Never started — the queue was just slow.  Count it
                        # against the retry budget and resubmit with a fresh
                        # deadline.
                        futures.pop(future)
                        deadlines.pop(future)
                        errors[index] += 1
                        if errors[index] <= retries:
                            stats["retried"] += 1
                            submit(index)
                        else:
                            failed[index] = TimeoutError(
                                f"cell {index} timed out after {timeout:g}s"
                            )
                    else:
                        # Running and overdue: the worker is hung, and a
                        # ProcessPoolExecutor cannot reclaim it without
                        # abandoning the generation.
                        raise _HungTask(index, timeout)
    except (BrokenProcessPool, _HungTask) as exc:
        lost = [
            index
            for index in todo
            if results[index] is _PENDING and index not in failed
        ]
        return lost, exc
    return [], None


def _run_pool_rungs(
    fn,
    work,
    pending: List[int],
    results: list,
    failed: Dict[int, BaseException],
    stats: Dict[str, int],
    *,
    count: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    max_pool_restarts: int,
    journal,
) -> List[int]:
    """Run ``pending`` cells across bounded pool generations.

    Returns the cells that must fall through to the serial rung (after the
    appropriate :class:`RuntimeWarning`); everything else is resolved into
    ``results``/``failed``.
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (e.g. Windows)
        context = multiprocessing.get_context()
    plan = _faults.current_plan()

    def make_pool():
        _faults.fault_point("parallel.pool-start")
        return ProcessPoolExecutor(
            max_workers=count,
            mp_context=context,
            initializer=_worker_init,
            initargs=(plan,),
        )

    try:
        executor = make_pool()
    except (OSError, InjectedFault) as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); running {len(pending)} cells serially",
            RuntimeWarning,
            stacklevel=3,
        )
        stats["serial_fallback_cells"] += len(pending)
        return list(pending)

    attempts = {index: 0 for index in pending}
    errors = {index: 0 for index in pending}
    todo = list(pending)
    restarts_left = max_pool_restarts
    cause: Optional[BaseException] = None
    while True:
        lost, broken = _run_generation(
            executor, fn, work, todo, attempts, errors, results, failed, stats,
            timeout=timeout, retries=retries, backoff=backoff, journal=journal,
        )
        if not lost:
            executor.shutdown(wait=True)
            return []
        # The generation died under `lost`: release it without waiting (a
        # hung worker would block a clean shutdown) and decide on a restart.
        executor.shutdown(wait=False, cancel_futures=True)
        stats["crashed"] += len(lost)
        todo = lost
        if restarts_left <= 0:
            cause = broken
            break
        restarts_left -= 1
        stats["pool_restarts"] += 1
        try:
            executor = make_pool()
        except (OSError, InjectedFault) as exc:
            cause = exc
            break
    warnings.warn(
        f"worker pool died mid-run ({cause!r}) and pool restarts are exhausted; "
        f"running {len(todo)} remaining cells serially",
        RuntimeWarning,
        stacklevel=3,
    )
    stats["serial_fallback_cells"] += len(todo)
    return todo


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: Optional[int] = 1,
    chunksize: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.01,
    on_error: str = "raise",
    max_pool_restarts: int = 2,
    journal=None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across crash-safe worker processes.

    Results come back in item order regardless of process count, so a study
    produces identical rows at ``processes=1`` (a plain deterministic loop —
    no pool, no pickling) and ``processes=N``.  ``fn`` must be a module-level
    callable, deterministic in its arguments, and every item picklable when
    ``processes > 1``.

    Failure handling, rung by rung:

    * a cell whose execution raises is retried in-pool up to ``retries``
      times with a deterministic linear ``backoff`` (task timeouts count as
      failures; ``timeout`` is per task execution, pool rung only);
    * a dead pool — ``BrokenProcessPool`` from a killed worker, or a task
      hung past ``timeout`` — loses only its unresolved cells, which are
      resubmitted on a fresh pool up to ``max_pool_restarts`` times;
    * cells that outlive every pool rung (startup failure, restarts
      exhausted) run in-process on the serial rung, announced by a
      :class:`RuntimeWarning` with the cell count and cause;
    * cells whose *function* still fails after all retries follow
      ``on_error``: ``"raise"`` re-raises the failing cell's exception
      (lowest index first), ``"retry-serial"`` gives each one final
      in-process run before raising, ``"skip"`` records ``None`` for them
      and warns with the count.

    ``journal`` (a :class:`~repro.reliability.journal.CheckpointJournal` or
    path) checkpoints each completed cell; on resume, journaled cells are
    served without re-executing ``fn`` — results must be JSON-round-trip
    stable for resumed and fresh runs to stay bit-identical.  ``chunksize``
    is accepted for backward compatibility and ignored (cells are scheduled
    individually so a crash loses at most the in-flight cells).
    :func:`last_run_stats` reports this call's failure-handling counters.
    """
    del chunksize  # pre-PR 7 Pool.map batching knob; cells now ship one by one
    if on_error not in ("raise", "retry-serial", "skip"):
        raise ValueError(
            f"on_error must be 'raise', 'retry-serial', or 'skip' (got {on_error!r})"
        )
    if retries < 0:
        raise ValueError(f"retries must be non-negative (got {retries})")
    if max_pool_restarts < 0:
        raise ValueError(
            f"max_pool_restarts must be non-negative (got {max_pool_restarts})"
        )
    work: List[T] = list(items)
    stats = {key: 0 for key in _RUN_STAT_KEYS}
    stats["cells"] = len(work)
    try:
        return _parallel_map_impl(
            fn, work, stats,
            processes=processes, timeout=timeout, retries=retries,
            backoff=backoff, on_error=on_error,
            max_pool_restarts=max_pool_restarts, journal=journal,
        )
    finally:
        _LAST_RUN_STATS.clear()
        _LAST_RUN_STATS.update(stats)


def _parallel_map_impl(
    fn, work, stats, *, processes, timeout, retries, backoff, on_error,
    max_pool_restarts, journal,
):
    journal = resolve_journal(journal)
    results: list = [_PENDING] * len(work)
    if journal is not None:
        for index in range(len(work)):
            key = f"cell:{index}"
            if key in journal:
                results[index] = journal.get(key)
                stats["journal_hits"] += 1
    pending = [index for index in range(len(work)) if results[index] is _PENDING]
    failed: Dict[int, BaseException] = {}

    count = min(resolve_processes(processes), len(pending))
    if count > 1:
        pending = _run_pool_rungs(
            fn, work, pending, results, failed, stats,
            count=count, timeout=timeout, retries=retries, backoff=backoff,
            max_pool_restarts=max_pool_restarts, journal=journal,
        )

    # Serial rung: cells that never ran in a pool (processes == 1, startup
    # failure, or pool death past the restart budget) execute in-process.
    serial_ran: Set[int] = set()
    for index in pending:
        serial_ran.add(index)
        try:
            value = fn(work[index])
        except Exception as exc:
            if on_error == "raise":
                raise
            failed[index] = exc
        else:
            results[index] = value
            _journal_record(journal, index, value)

    if failed and on_error == "retry-serial":
        for index in sorted(failed):
            if index in serial_ran:
                continue  # its failure *was* serial; a rerun cannot differ
            try:
                value = fn(work[index])
            except Exception as exc:
                failed[index] = exc
            else:
                results[index] = value
                _journal_record(journal, index, value)
                del failed[index]
    if failed:
        if on_error == "skip":
            stats["skipped"] = len(failed)
            first = min(failed)
            warnings.warn(
                f"parallel_map skipped {len(failed)} of {len(work)} cells after "
                f"exhausted retries (first: cell {first}: {failed[first]!r})",
                RuntimeWarning,
                stacklevel=3,
            )
            for index in failed:
                results[index] = None
        else:
            raise failed[min(failed)]
    if journal is not None:
        journal.flush()
    return results


__all__ = [
    "GameSpec",
    "SHM_NAME_PREFIX",
    "SharedPayload",
    "active_export_names",
    "attach_payload",
    "default_processes",
    "last_run_stats",
    "parallel_map",
    "resolve_processes",
]
