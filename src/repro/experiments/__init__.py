"""Experiment harness: seeded workloads, parallel sweeps, and the Section 4.3 studies."""

from .dynamics_study import (
    empty_start_convergence_study,
    engine_reuse_study,
    max_cost_first_convergence_study,
    scheduler_comparison_study,
)
from .parallel import (
    GameSpec,
    default_processes,
    last_run_stats,
    parallel_map,
    resolve_processes,
)
from .workloads import (
    empty_initial_profile,
    interest_cluster_game,
    latency_overlay_game,
    random_initial_profile,
    random_preference_game,
    uniform_game,
)

__all__ = [
    "random_preference_game",
    "interest_cluster_game",
    "latency_overlay_game",
    "random_initial_profile",
    "empty_initial_profile",
    "uniform_game",
    "max_cost_first_convergence_study",
    "empty_start_convergence_study",
    "scheduler_comparison_study",
    "engine_reuse_study",
    "GameSpec",
    "default_processes",
    "last_run_stats",
    "parallel_map",
    "resolve_processes",
]
