"""Section 4.3's experimental observations, reproduced as measurable studies.

The paper reports three empirical observations about best-response walks in
uniform games:

1. walks in which the *maximum-cost* node moves next do **not** always
   converge to a stable graph;
2. the same max-cost-first walk started from the **empty** graph does appear
   to converge;
3. some walks from non-empty starts appear to take exponentially long.

Each observation gets a study function returning row dictionaries that the
``bench_dynamics_empirical`` benchmark renders and EXPERIMENTS.md snapshots.

The multi-start / multi-size studies accept a ``processes`` argument and fan
their independent cells out through :func:`repro.experiments.parallel_map`:
starting profiles are drawn up front from the study's seed stream (so the
cells no longer share mutable state) and each worker rebuilds its game from a
:class:`~repro.experiments.parallel.GameSpec`.  Rows are identical at any
process count.  The parallel studies pass ``journal`` through to
``parallel_map``, so a killed grid resumes from its completed cells.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import UniformBBCGame, equilibrium_report
from ..dynamics import run_best_response_walk
from ..engine import get_engine
from ..rng import SeedLike, as_rng
from .parallel import GameSpec, parallel_map
from .workloads import empty_initial_profile, random_initial_profile

Row = Dict[str, object]


def _run_walk(game, profile, scheduler, max_rounds) -> Row:
    result = run_best_response_walk(
        game,
        profile,
        scheduler=scheduler,
        max_rounds=max_rounds,
        detect_cycles=True,
    )
    return {
        "converged": result.reached_equilibrium,
        "cycled": result.cycle_detected,
        "rounds": result.rounds,
        "deviations": result.deviations,
        "final_social_cost": game.social_cost(result.final_profile),
    }


def _walk_cell(args) -> Row:
    """One best-response walk in a (possibly worker) process."""
    spec, profile, scheduler, max_rounds = args
    return _run_walk(spec.build(), profile, scheduler, max_rounds)


def max_cost_first_convergence_study(
    n: int,
    k: int,
    *,
    num_starts: int = 10,
    max_rounds: int = 80,
    seed: SeedLike = 0,
    processes: int = 1,
    journal=None,
) -> List[Row]:
    """Observation 1: max-cost-first walks from random starts may cycle."""
    rng = as_rng(seed)
    game = UniformBBCGame(n, k)
    spec = GameSpec.from_game(game)
    starts = [random_initial_profile(game, seed=rng) for _ in range(num_starts)]
    outcomes = parallel_map(
        _walk_cell,
        [(spec, profile, "max_cost_first", max_rounds) for profile in starts],
        processes=processes,
        journal=journal,
    )
    return [
        {"start": start_index, "n": n, "k": k, **outcome}
        for start_index, outcome in enumerate(outcomes)
    ]


def _empty_start_cell(args) -> Row:
    spec, max_rounds = args
    game = spec.build()
    outcome = _run_walk(game, empty_initial_profile(game), "max_cost_first", max_rounds)
    outcome["optimum_lower_bound"] = game.minimum_possible_social_cost()
    return outcome


def empty_start_convergence_study(
    sizes: Sequence[int],
    k: int,
    *,
    max_rounds: int = 120,
    processes: int = 1,
    journal=None,
) -> List[Row]:
    """Observation 2: the empty-graph start appears to converge to stability."""
    specs = [GameSpec.from_game(UniformBBCGame(n, k)) for n in sizes]
    outcomes = parallel_map(
        _empty_start_cell,
        [(spec, max_rounds) for spec in specs],
        processes=processes,
        journal=journal,
    )
    return [
        {"n": n, "k": k, **outcome} for n, outcome in zip(sizes, outcomes)
    ]


def engine_reuse_study(
    n: int,
    k: int,
    *,
    max_rounds: int = 40,
    seed: SeedLike = 0,
) -> List[Row]:
    """Measure how much SSSP work the engine's version-stamped cache avoids.

    Runs a best-response walk followed by a full equilibrium check on the
    final profile — the canonical back-to-back workload — and reports the
    engine's cache counters: environment-distance rows computed vs served
    from cache, and how syncs classified their diffs (no-op / single-node /
    full reset).  The equilibrium check of a converged walk reuses the rows
    of the walk's final stable round outright, which is the locality the
    engine was built to exploit.
    """
    game = UniformBBCGame(n, k)
    engine = get_engine(game)
    profile = random_initial_profile(game, seed=seed)
    walk = run_best_response_walk(game, profile, max_rounds=max_rounds)
    walk_stats = dict(engine.stats)
    report = equilibrium_report(game, walk.final_profile)
    total_stats = engine.stats
    total_rows = total_stats["rows_computed"] + total_stats["rows_reused"]
    return [
        {
            "n": n,
            "k": k,
            "walk_converged": walk.reached_equilibrium,
            "walk_probes": walk.probes,
            "is_equilibrium": report.is_equilibrium,
            "rows_computed": total_stats["rows_computed"],
            "rows_reused": total_stats["rows_reused"],
            "reuse_fraction": (
                total_stats["rows_reused"] / total_rows if total_rows else 0.0
            ),
            "rows_computed_during_check": total_stats["rows_computed"]
            - walk_stats["rows_computed"],
            "noop_syncs": total_stats["noop_syncs"],
            "local_syncs": total_stats["local_syncs"],
            "full_syncs": total_stats["full_syncs"],
        }
    ]


def _scheduler_cell(args) -> Row:
    """All starts of one scheduler: the cell owns its whole seed stream."""
    spec, scheduler, num_starts, max_rounds, seed_value = args
    game = spec.build()
    rng = as_rng(seed_value)
    converged = 0
    cycled = 0
    total_deviations = 0
    for _ in range(num_starts):
        profile = random_initial_profile(game, seed=rng)
        result = run_best_response_walk(
            game,
            profile,
            scheduler=scheduler,
            max_rounds=max_rounds,
            detect_cycles=True,
            seed=rng,
        )
        converged += int(result.reached_equilibrium)
        cycled += int(result.cycle_detected)
        total_deviations += result.deviations
    return {
        "scheduler": scheduler,
        "n": game.num_nodes,
        "k": getattr(game, "k", None),
        "starts": num_starts,
        "converged": converged,
        "cycled": cycled,
        "mean_deviations": total_deviations / num_starts,
    }


def scheduler_comparison_study(
    n: int,
    k: int,
    *,
    num_starts: int = 5,
    max_rounds: int = 80,
    seed: SeedLike = 0,
    processes: int = 1,
    journal=None,
) -> List[Row]:
    """Compare round-robin, random, and max-cost-first schedules head to head.

    Each scheduler restarts the same seed stream, so the three cells are
    independent and parallelise without changing any row.
    """
    import random

    seed_value = 0 if isinstance(seed, random.Random) else seed
    spec = GameSpec.from_game(UniformBBCGame(n, k))
    return parallel_map(
        _scheduler_cell,
        [
            (spec, scheduler, num_starts, max_rounds, seed_value)
            for scheduler in ("round_robin", "random", "max_cost_first")
        ],
        processes=processes,
        journal=journal,
    )
