"""Developer tooling that ships with the package but never runs in hot paths.

Currently one subsystem lives here: :mod:`repro.tooling.lint`, the AST-based
invariant linter that enforces the engine's engineering contracts (gated
optional imports, RNG determinism, ``engine=`` kwarg threading, the fault-site
registry, float-equality discipline, and cache-aliasing rules) statically, in
CI, on both dependency legs.  Everything under this package is stdlib-only by
design — the minimal CI leg (no numpy/scipy) must be able to run it, because
that is precisely the leg where a gated-import violation matters.
"""
