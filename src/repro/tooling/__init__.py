"""Developer tooling that ships with the package but never runs in hot paths.

Two subsystems live here:

* :mod:`repro.tooling.lint` — the AST-based invariant linter that enforces
  the engine's engineering contracts (gated optional imports, RNG
  determinism, ``engine=`` kwarg threading, the fault-site registry,
  float-equality discipline, and cache-aliasing rules) statically, in CI,
  on both dependency legs.
* :mod:`repro.tooling.docs` — the markdown link checker that keeps the
  documented public surface (``README.md``, ``docs/*.md``) free of broken
  intra-repo links and heading anchors.

Everything under this package is stdlib-only by design — the minimal CI leg
(no numpy/scipy) must be able to run it, because that is precisely the leg
where a gated-import violation matters.
"""
