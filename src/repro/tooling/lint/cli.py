"""``python -m repro.tooling.lint`` — the invariant linter's command line.

Exit-code contract (pinned by ``tests/test_tooling_lint.py``; there is
deliberately no ``--fix`` — violations are fixed by hand or justified in the
baseline, never rewritten by the tool):

* ``0`` — no findings beyond the baseline, and no stale baseline entries;
* ``1`` — at least one live finding, or a stale baseline entry (the baseline
  may only shrink explicitly, never rot);
* ``2`` — the lint run itself is broken: unreadable input, unparseable
  source, malformed baseline, unknown rule ID in ``--select``.

``--format=github`` emits workflow-command annotations so findings surface
inline on PRs; ``--update-baseline`` rewrites the baseline to grandfather
the current findings (each entry stamped with a justification TODO).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .model import Baseline, LintConfigError, Project, fingerprint_findings
from .rules import ALL_RULES, RULES_BY_ID, run_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Default lint surface, relative to ``--root``: the runtime tree plus every
#: directory CI executes.  (``examples/`` is narrative code, out of scope.)
DEFAULT_PATHS = ("src", "scripts", "benchmarks", "tests")

DEFAULT_BASELINE = "lint-baseline.txt"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.lint",
        description="AST-based invariant linter for the repro engine contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root for relative paths, rule scoping, and the site "
        "registry (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"<root>/{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover the current findings and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github = workflow error annotations)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return EXIT_CLEAN

    try:
        rules = list(ALL_RULES)
        if args.select:
            wanted = [part.strip() for part in args.select.split(",") if part.strip()]
            unknown = [rule_id for rule_id in wanted if rule_id not in RULES_BY_ID]
            if unknown:
                raise LintConfigError(
                    f"unknown rule id(s) in --select: {', '.join(unknown)} "
                    f"(known: {', '.join(sorted(RULES_BY_ID))})"
                )
            rules = [RULES_BY_ID[rule_id] for rule_id in wanted]

        root = Path(args.root).resolve()
        raw_paths = args.paths or [
            name for name in DEFAULT_PATHS if (root / name).exists()
        ]
        paths: List[Path] = []
        for raw in raw_paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                raise LintConfigError(f"no such path: {path}")
            paths.append(path)

        project = Project.load(root, paths)
        findings = list(run_rules(rules, project))
        files_by_relpath = {file.relpath: file for file in project.files}
        findings = fingerprint_findings(findings, files_by_relpath)

        baseline_path = (
            Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
        )
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path

        if args.update_baseline:
            baseline_path.write_text(Baseline.render(findings), encoding="utf-8")
            print(
                f"baseline: wrote {len(findings)} entr"
                f"{'y' if len(findings) == 1 else 'ies'} to {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_CLEAN

        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)
        elif args.baseline:  # explicitly named but absent: config error
            raise LintConfigError(f"baseline file not found: {baseline_path}")
        else:
            baseline = Baseline()
        live, stale = baseline.split(findings)
    except LintConfigError as exc:
        print(f"lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    for finding in live:
        print(finding.github() if args.format == "github" else finding.text())
    for rule_id, relpath, fp in stale:
        message = (
            f"stale baseline entry {rule_id} {relpath} {fp}: the finding is "
            "gone — remove the entry"
        )
        if args.format == "github":
            print(f"::error file={relpath},title={rule_id}-stale-baseline::{message}")
        else:
            print(f"{relpath}: {message}")

    checked = len(project.files)
    grandfathered = len(findings) - len(live)
    summary = (
        f"lint: {checked} files, {len(live)} finding(s)"
        + (f", {grandfathered} baselined" if grandfathered else "")
        + (f", {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
           if stale else "")
    )
    print(summary, file=sys.stderr)
    return EXIT_FINDINGS if (live or stale) else EXIT_CLEAN
