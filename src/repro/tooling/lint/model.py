"""Data model of the invariant linter: files, findings, suppressions, baseline.

The linter is a pure function from a set of parsed source files (a
:class:`Project`) to a list of :class:`Finding`\\ s.  Everything stateful or
repo-specific — which lines carry ``# repro: noqa[...]`` suppressions, which
findings are grandfathered by the baseline file — lives here so the rules in
:mod:`repro.tooling.lint.rules` stay side-effect-free AST visitors.

Suppression grammar (checked by ``tests/test_tooling_lint.py``):

* ``# repro: noqa[RPR001]`` on the finding's anchor line silences that rule
  on that line (several IDs separate with commas);
* ``# repro: noqa-file[RPR001]`` anywhere in a file silences the rule for
  the whole file;
* ``# repro: readonly`` on a ``return`` statement (or its enclosing ``def``
  line) is *not* a suppression but an annotation: it marks a documented
  shared-read-only cache return, which RPR006 treats as compliant.

Baseline format — a plain-text file so every grandfathered entry can carry a
justification comment (JSON cannot)::

    RULE_ID<TAB>relative/path.py<TAB>fingerprint<TAB># why this is allowed

Fingerprints hash the rule, path, the *text* of the offending line, and an
occurrence index — never the line number — so unrelated edits above a
grandfathered finding do not invalidate the baseline.  A baseline entry that
no longer matches any finding is reported stale and fails the run: the
baseline may only shrink silently, never rot.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_NOQA_LINE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")
_NOQA_FILE = re.compile(r"#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")
_READONLY = re.compile(r"#\s*repro:\s*readonly\b")


class LintConfigError(Exception):
    """A problem with the linter's own inputs (unreadable file, bad baseline).

    The CLI maps this to exit code 2 — distinct from exit 1 (findings) so CI
    can tell "the code violates a contract" from "the lint run itself is
    broken".
    """


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    relpath: str
    line: int
    col: int
    message: str
    #: Stable identity for baseline matching (see :func:`fingerprint_findings`).
    fingerprint: str = ""

    def text(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def github(self) -> str:
        safe = self.message.replace("%", "%25").replace("\n", "%0A")
        return (
            f"::error file={self.relpath},line={self.line},col={self.col},"
            f"title={self.rule_id}::{safe}"
        )


class LintFile:
    """A parsed source file plus its per-line suppression tables."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # a file the repo cannot even import
            raise LintConfigError(f"{relpath}: cannot parse: {exc}") from exc
        self._line_noqa: Dict[int, Set[str]] = {}
        self._file_noqa: Set[str] = set()
        self._readonly_lines: Set[str] = set()
        for number, line in enumerate(self.lines, start=1):
            if "#" not in line:
                continue
            match = _NOQA_LINE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                self._line_noqa.setdefault(number, set()).update(ids)
            match = _NOQA_FILE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                self._file_noqa.update(ids)
            if _READONLY.search(line):
                self._readonly_lines.add(number)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_noqa:
            return True
        return rule_id in self._line_noqa.get(line, set())

    def is_readonly_annotated(self, *lines: int) -> bool:
        """Whether any of ``lines`` carries a ``# repro: readonly`` marker."""
        return any(line in self._readonly_lines for line in lines)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Project:
    """Every file under lint, plus lazily-built cross-file registries.

    Rules that are *locally checkable* read one :class:`LintFile` at a time;
    the two cross-file rules consume the registries built here — the
    engine-aware call graph (RPR003) and the fault-site registry parsed from
    ``src/repro/reliability/sites.py`` (RPR004).  The registry is read by AST,
    not import, so the linter works on any checkout without a ``PYTHONPATH``
    and cannot be fooled by runtime monkeypatching.
    """

    #: Repo-relative location of the fault-site registry module.
    SITES_RELPATH = "src/repro/reliability/sites.py"

    def __init__(self, root: Path, files: Sequence[LintFile]) -> None:
        self.root = root
        self.files: List[LintFile] = list(files)
        self._engine_aware: Optional[Set[str]] = None
        self._fault_sites: Optional[Set[str]] = None
        self._src_registry: Optional[List[LintFile]] = None

    def _src_files(self) -> List[LintFile]:
        """Every file under ``<root>/src``, whether or not it is being linted.

        The cross-file registries must see the whole tree even when the CLI
        is pointed at a subset of paths (``lint tests``), or a registered
        fault site / engine-aware callee defined outside the selected paths
        would be reported as unknown.
        """
        if self._src_registry is None:
            loaded = {file.path: file for file in self.files}
            files: List[LintFile] = []
            src_root = self.root / "src"
            if src_root.is_dir():
                for candidate in sorted(src_root.rglob("*.py")):
                    if "__pycache__" in candidate.parts:
                        continue
                    candidate = candidate.resolve()
                    if candidate in loaded:
                        files.append(loaded[candidate])
                        continue
                    try:
                        source = candidate.read_text(encoding="utf-8")
                    except OSError as exc:
                        raise LintConfigError(f"cannot read {candidate}: {exc}") from exc
                    rel = candidate.relative_to(self.root).as_posix()
                    files.append(LintFile(candidate, rel, source))
            else:
                files = [f for f in self.files if f.relpath.startswith("src/")]
            self._src_registry = files
        return self._src_registry

    @classmethod
    def load(cls, root: Path, paths: Iterable[Path]) -> "Project":
        root = root.resolve()
        seen: Set[Path] = set()
        files: List[LintFile] = []
        for path in paths:
            path = path.resolve()
            candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for candidate in candidates:
                if candidate in seen or "__pycache__" in candidate.parts:
                    continue
                seen.add(candidate)
                try:
                    source = candidate.read_text(encoding="utf-8")
                except OSError as exc:
                    raise LintConfigError(f"cannot read {candidate}: {exc}") from exc
                try:
                    rel = candidate.relative_to(root).as_posix()
                except ValueError:
                    rel = candidate.as_posix()
                files.append(LintFile(candidate, rel, source))
        return cls(root, files)

    # -- registries -------------------------------------------------------

    def engine_aware_names(self) -> Set[str]:
        """Simple names of functions taking a defaulted ``engine=`` kwarg.

        Only *defaulted* parameters count: the tri-state contract is
        ``engine=None`` (shared) / ``engine=False`` (reference) / instance,
        so a required positional ``engine`` (e.g. a scorer's constructor
        binding to one engine) is not part of the threading discipline.
        """
        if self._engine_aware is None:
            names: Set[str] = set()
            for file in self._src_files():
                if not file.relpath.startswith("src/"):
                    continue
                for node in ast.walk(file.tree):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if _has_defaulted_engine_kwarg(node):
                            names.add(node.name)
            self._engine_aware = names
        return self._engine_aware

    def registered_fault_sites(self) -> Set[str]:
        """String keys registered in the fault-site registry module.

        Collected from literal keys of ``REGISTERED_FAULT_SITES`` and literal
        first arguments of ``register_fault_site(...)`` calls.  Missing
        registry module => empty set (every literal site is then a finding,
        which is the honest answer for a tree without a registry).
        """
        if self._fault_sites is None:
            sites: Set[str] = set()
            for file in self._src_files():
                if file.relpath != self.SITES_RELPATH:
                    continue
                for node in ast.walk(file.tree):
                    if isinstance(node, ast.Dict):
                        for key in node.keys:
                            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                                sites.add(key.value)
                    elif isinstance(node, ast.Call):
                        func = node.func
                        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
                        if name == "register_fault_site" and node.args:
                            first = node.args[0]
                            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                                sites.add(first.value)
            self._fault_sites = sites
        return self._fault_sites


def _has_defaulted_engine_kwarg(node) -> bool:
    args = node.args
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    defaulted = positional[len(positional) - len(defaults):] if defaults else []
    for arg in defaulted:
        if arg.arg == "engine":
            return True
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "engine" and default is not None:
            return True
    return False


# -- fingerprints and baseline -------------------------------------------


def fingerprint_findings(findings: Sequence[Finding], files: Dict[str, LintFile]) -> List[Finding]:
    """Attach stable fingerprints: hash of (rule, path, line *text*, k).

    ``k`` disambiguates identical lines (the k-th occurrence of the same
    offending text in the same file keeps a distinct identity), so baselining
    one of two textually identical findings does not hide both.
    """
    counters: Dict[Tuple[str, str, str], int] = {}
    stamped: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.relpath, f.line, f.col, f.rule_id)):
        file = files.get(finding.relpath)
        text = file.line_text(finding.line).strip() if file is not None else ""
        key = (finding.rule_id, finding.relpath, text)
        k = counters.get(key, 0)
        counters[key] = k + 1
        token = f"{finding.rule_id}:{finding.relpath}:{text}:{k}".encode()
        digest = hashlib.sha1(token).hexdigest()[:12]
        stamped.append(
            Finding(
                rule_id=finding.rule_id,
                relpath=finding.relpath,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                fingerprint=digest,
            )
        )
    return stamped


@dataclass
class Baseline:
    """The grandfathered findings: ``(rule_id, relpath, fingerprint)`` triples."""

    entries: Set[Tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: Set[Tuple[str, str, str]] = set()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintConfigError(f"cannot read baseline {path}: {exc}") from exc
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [part.strip() for part in line.split("\t")]
            if len(parts) < 3:
                raise LintConfigError(
                    f"baseline {path}:{number}: expected "
                    f"'RULE\\tpath\\tfingerprint[\\t# comment]', got {raw!r}"
                )
            entries.add((parts[0], parts[1], parts[2]))
        return cls(entries)

    @staticmethod
    def render(findings: Sequence[Finding]) -> str:
        lines = [
            "# repro lint baseline — grandfathered findings, one per line.",
            "# Format: RULE_ID<TAB>relpath<TAB>fingerprint<TAB># justification",
            "# Every entry must carry a justification; prefer fixing over baselining.",
        ]
        for finding in findings:
            lines.append(
                f"{finding.rule_id}\t{finding.relpath}\t{finding.fingerprint}"
                f"\t# TODO: justify or fix ({finding.message})"
            )
        return "\n".join(lines) + "\n"

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Tuple[str, str, str]]]:
        """Return (live findings not in baseline, stale baseline entries)."""
        matched: Set[Tuple[str, str, str]] = set()
        live: List[Finding] = []
        for finding in findings:
            key = (finding.rule_id, finding.relpath, finding.fingerprint)
            if key in self.entries:
                matched.add(key)
            else:
                live.append(finding)
        stale = sorted(self.entries - matched)
        return live, stale
