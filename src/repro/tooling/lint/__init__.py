"""AST-based invariant linter for the engine's engineering contracts.

Seven PRs of engine growth rest on contracts that used to be enforced only
at runtime — by parity tests, or by the minimal CI leg happening to execute
the right branch.  Each is a *locally checkable* property of the source, so
this package checks them statically, stdlib-only (the minimal leg runs it
too), as ``python -m repro.tooling.lint``:

========  ==============================================================
RPR001    module-level numpy/scipy imports must sit behind try/except
          ImportError gates (minimal-leg import purity)
RPR002    no global-state RNG calls, no wall-clock seeds — randomness
          routes through :func:`repro.rng.as_rng`
RPR003    a function accepting the tri-state ``engine=`` kwarg must
          forward it to engine-aware callees (call-graph check)
RPR004    every literal fault site / ``FaultRule`` key must be registered
          in ``src/repro/reliability/sites.py``
RPR005    no ``==``/``!=`` on cost-typed expressions in ``core``/
          ``engine`` — the documented 1e-9 tolerance rule applies
RPR006    public engine methods must not return cache-aliased rows
          without a copy or a ``# repro: readonly`` annotation
========  ==============================================================

Suppression and baseline mechanics live in
:mod:`repro.tooling.lint.model`; the rule implementations in
:mod:`repro.tooling.lint.rules`; the exit-code contract (0 clean / 1
findings / 2 broken run, no ``--fix``) in :mod:`repro.tooling.lint.cli`.
The "Invariants" section of :mod:`repro.engine` maps each rule to the
runtime test that enforces the same contract dynamically.
"""

from .cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from .model import Baseline, Finding, LintConfigError, Project, fingerprint_findings
from .rules import ALL_RULES, RULES_BY_ID, LintRule, run_rules

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Baseline",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Finding",
    "LintConfigError",
    "LintRule",
    "Project",
    "fingerprint_findings",
    "main",
    "run_rules",
]
