"""Entry point: ``python -m repro.tooling.lint``."""

import sys

from .cli import main

sys.exit(main())
