"""RPR001 — gated optional imports.

The minimal CI leg runs without numpy/scipy, so ``repro.core`` and
``repro.engine`` (and every script CI executes on that leg) must import with
the optional stack absent.  The runtime convention is a module-level
``try: import numpy ... except ImportError`` gate with a ``None`` sentinel;
an *ungated* module-level import of an optional package only fails today if
the minimal leg happens to import that module.  This rule makes the property
static: any module-level ``import numpy``/``scipy`` (or from-import) outside
a ``try`` block whose handlers catch ``ImportError``/``ModuleNotFoundError``
(or ``Exception``) is a finding, except in the explicit allowlist — the numpy
backend module itself, which is only ever imported from behind a gate.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..model import Finding, LintFile, Project
from .base import LintRule

#: Top-level package names whose import must be gated.
OPTIONAL_PACKAGES: Tuple[str, ...] = ("numpy", "scipy")

_GATE_EXCEPTIONS = {"ImportError", "ModuleNotFoundError", "Exception"}


def _optional_root(name: str) -> bool:
    root = name.split(".", 1)[0]
    return root in OPTIONAL_PACKAGES


def _walk_module_level(stmt: ast.AST):
    """Yield ``stmt`` and its descendants, skipping function bodies."""
    stack = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _handler_catches_import_error(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:  # bare except: catches ImportError too
        return True
    kinds = kind.elts if isinstance(kind, ast.Tuple) else [kind]
    for entry in kinds:
        name = entry.attr if isinstance(entry, ast.Attribute) else getattr(entry, "id", "")
        if name in _GATE_EXCEPTIONS:
            return True
    return False


class GatedImportsRule(LintRule):
    rule_id = "RPR001"
    summary = (
        "module-level numpy/scipy import outside a try/except ImportError "
        "gate (breaks the minimal CI leg)"
    )
    scopes = ("src/", "scripts/", "benchmarks/")
    allowlist = (
        # The array-kernel module is numpy through and through; it is only
        # reachable through the gates in cost_engine/indexed, so a gate here
        # would just re-state the callers'.
        "src/repro/graphs/int_kernels_np.py",
    )

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        gated_spans = []
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Try) and any(
                _handler_catches_import_error(handler) for handler in node.handlers
            ):
                gated_spans.append((node.lineno, max(
                    getattr(child, "end_lineno", child.lineno) for child in node.body
                )))

        def gated(lineno: int) -> bool:
            return any(start <= lineno <= end for start, end in gated_spans)

        # Module-level statements only: a function-level import executes
        # lazily and the call sites own the degradation story.  (Class
        # bodies run at import time, so they stay in scope.)
        for stmt in file.tree.body:
            for node in _walk_module_level(stmt):
                names = []
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    names = [node.module or ""]
                for name in names:
                    if _optional_root(name) and not gated(node.lineno):
                        yield self.finding(
                            file,
                            node,
                            f"module-level import of optional package {name!r} "
                            "must sit in a try/except ImportError gate "
                            "(the minimal CI leg has no numpy/scipy)",
                        )
                        break
