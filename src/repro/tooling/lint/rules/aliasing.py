"""RPR006 — cache-row aliasing out of public engine methods.

The engines' row caches are version-stamped and repaired *in place*; a cached
row object that escapes through a public method becomes a write path into the
cache that no version stamp guards (a caller mutating its "result" corrupts
every later read).  Public methods of ``*Engine`` classes therefore must not
return an object reachable from a ``self.*cache*`` attribute unless the
return materialises a copy (``dict()``/``list()``/``.copy()``/scalar
conversion/...) or the method is explicitly annotated shared-read-only with
``# repro: readonly`` on the ``def`` or ``return`` line — the documented
escape for the deliberate warm-start dicts (``through_rows``/``sub_rows``)
and the hot-path ``env_row``, whose callers are all in-package and
read-only by contract.

Detection is a conservative intra-method taint pass: any ``self.<attr>``
whose name contains ``cache`` seeds taint; taint flows through assignment,
subscripting, and ``.get()``/``.setdefault()`` on tainted objects; it is
cleansed by copying constructors and scalar reductions.  Branch structure is
ignored (a name once tainted stays tainted), trading false positives —
annotatable — for never missing an aliased escape.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..model import Finding, LintFile, Project
from .base import LintRule, dotted_name

#: Calls that materialise a fresh object (or a scalar) from their argument.
_SANITIZERS = {
    "dict", "list", "tuple", "set", "frozenset", "sorted", "float", "int",
    "str", "bool", "len", "sum", "min", "max", "copy", "deepcopy",
}
_SANITIZER_METHODS = {"copy", "tolist", "item"}


def _is_cache_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and "cache" in node.attr.lower()
    )


class _Taint(ast.NodeVisitor):
    """Order-insensitive taint over one method body (two passes to a fixpoint)."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def tainted(self, node: ast.AST) -> bool:
        if _is_cache_attr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.tainted(node.value)
        if isinstance(node, ast.Attribute):
            return self.tainted(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            name = dotted_name(func).split(".")[-1]
            if isinstance(func, ast.Attribute):
                if func.attr in _SANITIZER_METHODS:
                    return False
                # tainted_obj.get(...) / .setdefault(...) alias the payload
                if func.attr in ("get", "setdefault", "pop") and self.tainted(func.value):
                    return True
                return False
            if name in _SANITIZERS:
                return False
            return False
        if isinstance(node, ast.IfExp):
            return self.tainted(node.body) or self.tainted(node.orelse)
        if isinstance(node, (ast.BoolOp,)):
            return any(self.tainted(value) for value in node.values)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.tainted(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self.tainted(node.value):
            if isinstance(node.target, ast.Name):
                self.names.add(node.target.id)
        self.generic_visit(node)


class CacheAliasingRule(LintRule):
    rule_id = "RPR006"
    summary = (
        "public engine method returns a cached row object without .copy() "
        "or a documented-readonly annotation"
    )
    scopes = ("src/repro/engine/",)

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        for klass in ast.walk(file.tree):
            if not isinstance(klass, ast.ClassDef) or not klass.name.endswith("Engine"):
                continue
            for method in klass.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name.startswith("_"):
                    continue
                taint = _Taint()
                # Two passes reach a fixpoint for the chained-assignment
                # shapes that occur in practice (entry -> rows -> row).
                for _ in range(2):
                    taint.visit(method)
                for node in ast.walk(method):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    if not taint.tainted(node.value):
                        continue
                    if file.is_readonly_annotated(node.lineno, method.lineno):
                        continue
                    yield self.finding(
                        file,
                        node,
                        f"{klass.name}.{method.name}() returns an object "
                        "aliasing a row cache — return a copy, or mark the "
                        "shared-read-only contract with '# repro: readonly' "
                        "on the def/return line and document it",
                    )
