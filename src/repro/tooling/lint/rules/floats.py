"""RPR005 — float equality on cost-typed expressions.

The engine's parity contract compares costs under the documented ``1e-9``
chained-tolerance rule (see the sweep contract in :mod:`repro.engine`); a
raw ``==``/``!=`` between computed costs is exactly the kind of
almost-always-works bug that survives until a weighted game produces
``0.30000000000000004``.  In ``core/`` and ``engine/``, any equality
comparison where either operand *mentions a cost* (a name, attribute, or
callee containing ``cost``) is a finding — with two exact-by-construction
exclusions: comparison against ``math.inf`` (the unreachable sentinel is an
exact IEEE value, not a computed cost) and against ``None`` (identity-style
presence checks, themselves already linted by ruff E711).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Finding, LintFile, Project
from .base import LintRule, dotted_name


#: Calls whose result is integer-typed regardless of their argument — a
#: ``len(cost_values) == 1`` cardinality check is exact, not a float compare.
_INT_VALUED_CALLS = {"len", "int", "round", "hash", "id", "index", "count", "ord"}


def _mentions_cost(node: ast.AST) -> bool:
    stack = [node]
    while stack:
        sub = stack.pop()
        if isinstance(sub, ast.Call) and dotted_name(sub.func).split(".")[-1] in _INT_VALUED_CALLS:
            continue  # opaque: integer-typed no matter what it mentions
        if isinstance(sub, ast.Name) and "cost" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "cost" in sub.attr.lower():
            return True
        stack.extend(ast.iter_child_nodes(sub))
    return False


def _is_exact_sentinel(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    name = dotted_name(node)
    return name in ("math.inf", "inf") or (
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "float"
        and bool(node.args)
        and isinstance(node.args[0], ast.Constant)
        and str(node.args[0].value).lower() in ("inf", "-inf", "infinity")
    )


class FloatEqualityRule(LintRule):
    rule_id = "RPR005"
    summary = (
        "==/!= on a cost-typed expression; use the documented 1e-9 "
        "tolerance rule"
    )
    scopes = ("src/repro/core/", "src/repro/engine/")

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_exact_sentinel(left) or _is_exact_sentinel(right):
                    continue
                if _mentions_cost(left) or _mentions_cost(right):
                    yield self.finding(
                        file,
                        node,
                        "equality comparison on a cost-typed expression — "
                        "computed costs compare under the 1e-9 tolerance "
                        "rule (abs(a - b) <= 1e-9), not ==/!= "
                        "(math.inf sentinels are exempt)",
                    )
                    break
