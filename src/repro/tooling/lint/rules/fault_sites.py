"""RPR004 — fault-site registry discipline.

A ``fault_point("name")`` site that nothing registered, or a
``FaultRule(site="name")`` naming a site that does not exist, silently never
fires — a fault-injection test that asserts nothing.  This rule pins both
directions against the single registry in
``src/repro/reliability/sites.py``:

* every string-literal site passed to ``fault_point(...)`` /
  ``fault_fires(...)`` in the runtime tree must be a registered site;
* every string-literal ``site=`` of a ``FaultRule(...)`` and every literal
  element of ``FaultPlan.seeded(..., sites=[...])`` — in tests too — must
  name a registered site.

The ``test.`` namespace is reserved for abstract sites in unit tests of the
plan machinery itself (matching the runtime warning's carve-out in
:mod:`repro.reliability.sites`); dynamic (non-literal) site expressions are
out of static reach and are exercised by the runtime warning instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from ..model import Finding, LintFile, Project
from .base import LintRule, call_name

#: Site-name prefix exempt from registration (unit-test toys).
TEST_NAMESPACE = "test."


def _literal_str(node: ast.AST):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class FaultSiteRegistryRule(LintRule):
    rule_id = "RPR004"
    summary = (
        "fault site literal not present in the reliability/sites.py registry"
    )
    scopes = ("src/", "scripts/", "benchmarks/", "tests/")
    allowlist = (Project.SITES_RELPATH,)

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        registered = project.registered_fault_sites()
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            for site, where in self._literal_sites(node):
                if site.startswith(TEST_NAMESPACE) or site in registered:
                    continue
                yield self.finding(
                    file,
                    node,
                    f"fault site {site!r} ({where}) is not registered in "
                    f"{Project.SITES_RELPATH} — a typo'd site never fires; "
                    "register it (or use the reserved 'test.' namespace for "
                    "abstract unit-test sites)",
                )

    @staticmethod
    def _literal_sites(node: ast.Call) -> Iterator[Tuple[str, str]]:
        name = call_name(node)
        if name in ("fault_point", "fault_fires"):
            if node.args:
                site = _literal_str(node.args[0])
                if site is not None:
                    yield site, f"{name}() call"
        elif name == "FaultRule":
            for keyword in node.keywords:
                if keyword.arg == "site":
                    site = _literal_str(keyword.value)
                    if site is not None:
                        yield site, "FaultRule(site=...)"
            if node.args:
                site = _literal_str(node.args[0])
                if site is not None:
                    yield site, "FaultRule positional site"
        elif name == "seeded":
            # FaultPlan.seeded(seed, ["site", ...]) — literal elements only.
            candidates = list(node.args[1:2]) + [
                keyword.value for keyword in node.keywords if keyword.arg == "sites"
            ]
            for candidate in candidates:
                if isinstance(candidate, (ast.List, ast.Tuple, ast.Set)):
                    for element in candidate.elts:
                        site = _literal_str(element)
                        if site is not None:
                            yield site, "FaultPlan.seeded sites"
