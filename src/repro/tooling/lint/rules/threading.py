"""RPR003 — tri-state ``engine=`` kwarg threading.

Every routed entry point takes ``engine=None`` (shared engine) /
``engine=False`` (dict/LP reference) / instance.  The contract composes only
if the kwarg is *forwarded*: a function that accepts the tri-state kwarg and
calls another engine-aware function must pass ``engine=`` explicitly (any
value — pinning ``engine=False`` for a reference arm is deliberate and fine)
or forward ``**kwargs``.  A dropped kwarg silently re-resolves the shared
engine inside the callee — correct results, but a cache-discipline leak that
PR-review has caught by hand three times; this rule catches it from the call
graph.

The engine-aware registry is every ``def`` under ``src/`` with a *defaulted*
``engine`` parameter (see :meth:`Project.engine_aware_names`).  Matching is
by simple callee name, with two documented resolution refinements: calls
whose receiver itself names an engine (``engine.all_costs(...)``,
``self._engine.…``) are already on the resolved object — methods of
:class:`CostEngine` / :class:`FractionalEngine` take no ``engine=`` kwarg at
all — and a ``self.x(...)`` call resolves against the *enclosing class's own*
``def x`` when one exists (``BBCGame.node_cost`` is the engine-free
reference; only ``FractionalBBCGame.node_cost`` threads the kwarg).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from ..model import Finding, LintFile, Project
from .base import LintRule, call_name, iter_functions
from ..model import _has_defaulted_engine_kwarg


def _receiver_is_engine(func: ast.AST) -> bool:
    if not isinstance(func, ast.Attribute):
        return False
    base = func.value
    name = ""
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    return "engine" in name.lower() or "evaluator" in name.lower()


class EngineThreadingRule(LintRule):
    rule_id = "RPR003"
    summary = (
        "engine-aware function drops the tri-state engine= kwarg when "
        "calling another engine-aware function"
    )
    scopes = ("src/",)

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        aware = project.engine_aware_names()
        if not aware:
            return
        # Map each method node to its enclosing class's own method table so
        # self.x(...) resolves locally before falling back to the global
        # name registry.
        enclosing: Dict[int, Dict[str, bool]] = {}
        for klass in ast.walk(file.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            table = {
                item.name: _has_defaulted_engine_kwarg(item)
                for item in klass.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for item in klass.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    enclosing[id(item)] = table
        for function in iter_functions(file.tree):
            params = {arg.arg for arg in function.args.args}
            params.update(arg.arg for arg in function.args.kwonlyargs)
            if "engine" not in params:
                continue
            class_table: Optional[Dict[str, bool]] = enclosing.get(id(function))
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                callee = call_name(node)
                if callee not in aware or callee == function.name:
                    continue
                if _receiver_is_engine(node.func):
                    continue
                if (
                    class_table is not None
                    and callee in class_table
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("self", "cls")
                    and not class_table[callee]
                ):
                    continue  # the class's own method is the engine-free reference
                has_engine_kwarg = any(
                    keyword.arg == "engine" or keyword.arg is None  # **kwargs
                    for keyword in node.keywords
                )
                if not has_engine_kwarg:
                    yield self.finding(
                        file,
                        node,
                        f"{function.name}() accepts engine= but calls "
                        f"{callee}() without forwarding it — the callee will "
                        "silently re-resolve the shared engine (pass "
                        "engine=engine, or pin engine=False if the reference "
                        "path is intended)",
                    )
