"""The invariant rule set, ordered by rule ID.

Each module holds one rule; adding a rule = adding a module and listing its
class here.  IDs are stable and never reused (baselines and suppressions
reference them).
"""

from .aliasing import CacheAliasingRule
from .base import LintRule, run_rules
from .determinism import DeterminismRule
from .fault_sites import TEST_NAMESPACE, FaultSiteRegistryRule
from .floats import FloatEqualityRule
from .imports import GatedImportsRule
from .threading import EngineThreadingRule

#: Every shipped rule, instantiated once (rules are stateless).
ALL_RULES = (
    GatedImportsRule(),     # RPR001
    DeterminismRule(),      # RPR002
    EngineThreadingRule(),  # RPR003
    FaultSiteRegistryRule(),  # RPR004
    FloatEqualityRule(),    # RPR005
    CacheAliasingRule(),    # RPR006
)

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "TEST_NAMESPACE",
    "LintRule",
    "run_rules",
]
