"""RPR002 — determinism of randomness sourcing.

Every stochastic entry point threads a ``SeedLike`` through
:func:`repro.rng.as_rng`; nothing may draw from interpreter-global RNG state
(process-order dependent, invisible to ``GameSpec`` replays) or seed itself
from the wall clock.  Three shapes are findings:

* calls to module-level :mod:`random` functions — ``random.random()``,
  ``random.seed()``, ``random.shuffle()``, … (constructing an *instance*,
  ``random.Random(seed)``, is fine: that is what ``as_rng`` returns);
* any call under ``np.random`` / ``numpy.random`` — the numpy global
  generator *and* ``default_rng`` both bypass the shared ``SeedLike``
  convention (the engine deliberately owns no numpy RNG state);
* wall-clock seeding: ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` used as a seed — passed to a ``seed=`` keyword, to a
  callee whose name mentions seed/rng/Random, or assigned to a ``*seed*``
  variable.  Timing calls used for *measurement* are untouched; benchmarks
  are out of scope entirely (their wall-clock use is the point).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Finding, LintFile, Project
from .base import LintRule, dotted_name

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.perf_counter",
    "datetime.now",
    "datetime.datetime.now",
    "datetime.utcnow",
    "datetime.datetime.utcnow",
}

#: ``random.<attr>`` attributes that are legitimate without instance state.
_RANDOM_OK = {"Random", "SystemRandom"}


def _is_clock_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and dotted_name(node.func) in _CLOCK_CALLS


def _seedish_name(name: str) -> bool:
    lowered = name.lower()
    return "seed" in lowered or "rng" in lowered or "random" in lowered


class DeterminismRule(LintRule):
    rule_id = "RPR002"
    summary = (
        "global-state RNG call or wall-clock seed; route randomness through "
        "repro.rng.as_rng"
    )
    scopes = ("src/", "scripts/")
    allowlist = (
        # The one module allowed to construct RNGs from raw seeds.
        "src/repro/rng.py",
    )

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(file, node)
            elif isinstance(node, ast.Assign):
                # A clock call fed to a seedish *callee* is already reported
                # by the call check; only report the bare-assignment shape.
                value = node.value
                if isinstance(value, ast.Call) and _seedish_name(
                    dotted_name(value.func).split(".")[-1]
                ):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and _seedish_name(target.id)
                        and any(_is_clock_call(sub) for sub in ast.walk(value))
                    ):
                        yield self.finding(
                            file,
                            node,
                            f"wall-clock value assigned to {target.id!r}: seeds "
                            "must be explicit SeedLike inputs, not time-derived",
                        )

    def _check_call(self, file: LintFile, node: ast.Call) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            # random.<fn>(...) on the module (not an instance named `random`;
            # the repo convention names instances `rng`).
            if isinstance(base, ast.Name) and base.id == "random":
                if func.attr not in _RANDOM_OK:
                    yield self.finding(
                        file,
                        node,
                        f"global-state call random.{func.attr}(): draw from an "
                        "explicit random.Random via repro.rng.as_rng instead",
                    )
            # np.random.<anything>(...) / numpy.random.<anything>(...)
            chain = dotted_name(func)
            root = chain.split(".", 1)[0]
            if root in ("np", "numpy") and ".random." in chain + ".":
                if chain.split(".")[1] == "random":
                    yield self.finding(
                        file,
                        node,
                        f"numpy RNG call {chain}(): the engine owns no numpy "
                        "random state — thread a seeded random.Random "
                        "(repro.rng.as_rng) and convert where needed",
                    )
        # Wall-clock expressions used as seeds.
        callee = dotted_name(func) or ""
        for keyword in node.keywords:
            if keyword.arg and _seedish_name(keyword.arg) and any(
                _is_clock_call(sub) for sub in ast.walk(keyword.value)
            ):
                yield self.finding(
                    file,
                    node,
                    f"wall-clock seed passed as {keyword.arg}= to {callee or 'call'}: "
                    "seeds must be explicit, reproducible inputs",
                )
        if callee and _seedish_name(callee.split(".")[-1]):
            for arg in node.args:
                if any(_is_clock_call(sub) for sub in ast.walk(arg)):
                    yield self.finding(
                        file,
                        node,
                        f"wall-clock argument to {callee}(): seeds must be "
                        "explicit, reproducible inputs",
                    )
