"""Rule framework: one class per invariant, scoped by repo-relative path.

A rule declares *where it applies* (path prefixes and an allowlist of exact
files it skips) and implements ``check(file, project)`` yielding raw
:class:`~repro.tooling.lint.model.Finding`\\ s — without fingerprints and
without suppression filtering, both of which the runner layers on uniformly.
Rules never mutate anything and never import the code under lint: every
contract they enforce is a *locally checkable* property of the AST (plus, for
the two cross-file rules, a registry the :class:`Project` derives from the
same ASTs).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence, Tuple

from ..model import Finding, LintFile, Project


class LintRule:
    """Base class: subclasses set the class attributes and ``check``."""

    rule_id: str = "RPR000"
    summary: str = ""
    #: Path prefixes (posix, repo-relative) the rule applies to; empty = all.
    scopes: Tuple[str, ...] = ()
    #: Exact relpaths exempt from the rule (e.g. the numpy backend module
    #: itself for the gated-import rule).
    allowlist: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if relpath in self.allowlist:
            return False
        if not self.scopes:
            return True
        return any(relpath == scope or relpath.startswith(scope.rstrip("/") + "/")
                   for scope in self.scopes)

    def check(self, file: LintFile, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, file: LintFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            relpath=file.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def call_name(node: ast.Call) -> str:
    """The simple (rightmost) name of a call target, or ''."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.AST) -> str:
    """Render a Name/Attribute chain like ``np.random.default_rng`` (best effort)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def run_rules(
    rules: Sequence[LintRule], project: Project
) -> Iterable[Finding]:
    for file in project.files:
        for rule in rules:
            if not rule.applies_to(file.relpath):
                continue
            for finding in rule.check(file, project):
                if not file.suppressed(finding.rule_id, finding.line):
                    yield finding
