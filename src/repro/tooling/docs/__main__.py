"""Entry point: ``python -m repro.tooling.docs``."""

import sys

from .cli import main

sys.exit(main())
