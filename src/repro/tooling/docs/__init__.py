"""``repro.tooling.docs`` — the intra-repo markdown link checker.

The documented public surface (``README.md``, ``docs/*.md``) cross-links
files and section anchors; a rename or a heading edit silently strands those
links, and nothing else in CI would notice.  This checker parses every
markdown link, resolves relative targets against the repo tree, and checks
``#fragment`` anchors against GitHub-style heading slugs — stdlib-only, like
everything under :mod:`repro.tooling`, so both dependency legs can run it.

External links (``http(s)://``, ``mailto:``) are deliberately *not* fetched:
CI must stay hermetic, and a flaky remote must never fail a docs build.

Usage (exit codes mirror :mod:`repro.tooling.lint` — ``0`` clean, ``1``
broken links, ``2`` the check itself could not run)::

    python -m repro.tooling.docs             # README.md + docs/*.md
    python -m repro.tooling.docs README.md docs/service.md
"""

from .checker import LinkFinding, check_file, check_paths, heading_slugs, iter_links

__all__ = [
    "LinkFinding",
    "check_file",
    "check_paths",
    "heading_slugs",
    "iter_links",
]
