"""``python -m repro.tooling.docs`` — the docs link checker's command line.

Exit-code contract (mirrors :mod:`repro.tooling.lint`, pinned by
``tests/test_tooling_docs.py``):

* ``0`` — every intra-repo link and anchor resolves;
* ``1`` — at least one broken link;
* ``2`` — the check itself could not run (an explicitly named file is
  missing or unreadable).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .checker import check_file

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: The default surface: the repo's front page plus the docs tree.
DEFAULT_TARGETS = ("README.md", "docs")


def _default_paths(root: Path) -> List[Path]:
    paths: List[Path] = []
    readme = root / "README.md"
    if readme.exists():
        paths.append(readme)
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        paths.extend(sorted(docs_dir.glob("*.md")))
    return paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.docs",
        description="Check intra-repo markdown links and heading anchors.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="markdown files or directories to check "
        f"(default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root that relative link targets must stay inside "
        "(default: cwd)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"docs check: root {args.root!r} is not a directory", file=sys.stderr)
        return EXIT_ERROR

    if args.paths:
        paths: List[Path] = []
        for raw in args.paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if path.is_dir():
                paths.extend(sorted(path.glob("*.md")))
            elif path.exists():
                paths.append(path)
            else:
                print(f"docs check: no such file {raw!r}", file=sys.stderr)
                return EXIT_ERROR
    else:
        paths = _default_paths(root)

    findings = []
    checked = 0
    for path in paths:
        try:
            findings.extend(check_file(path, root))
        except OSError as exc:
            print(f"docs check: cannot read {path}: {exc}", file=sys.stderr)
            return EXIT_ERROR
        checked += 1
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"docs check: {len(findings)} broken link(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    print(f"docs check: {checked} file(s), all intra-repo links resolve")
    return EXIT_CLEAN


__all__ = ["EXIT_CLEAN", "EXIT_ERROR", "EXIT_FINDINGS", "build_parser", "main"]
