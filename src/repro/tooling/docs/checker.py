"""Markdown link extraction and intra-repo resolution (stdlib-only).

The parser is deliberately small: inline links and reference definitions,
with fenced code blocks and inline code spans masked out first (our docs
quote markdown syntax inside code examples).  Anchors are matched against
GitHub's heading slug algorithm — lowercase, punctuation stripped, spaces to
hyphens, duplicate slugs suffixed ``-1``, ``-2``, … — which is the flavour
the repository is rendered with.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple

#: Schemes the checker skips: remote targets are out of scope by design.
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: ``[text](target)`` inline links; the target ends at the first unescaped
#: closing paren (titles — ``(target "title")`` — are split off afterwards).
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?[^()]*)\)")

#: ``[label]: target`` reference definitions (leading whitespace allowed).
_REFERENCE_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)")

#: ATX headings (``# ...`` through ``###### ...``).
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_INLINE_CODE = re.compile(r"`[^`]*`")
_SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)


@dataclass(frozen=True)
class LinkFinding:
    """One broken link: where it sits and why it does not resolve."""

    path: str
    line: int
    target: str
    reason: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: broken link {self.target!r} — {self.reason}"


def _masked_lines(text: str) -> List[str]:
    """The file's lines with fenced blocks and inline code spans blanked.

    Line numbers are preserved (masked lines become empty), so findings
    still point at the real location.
    """
    masked: List[str] = []
    in_fence = False
    fence_marker = ""
    for line in text.splitlines():
        stripped = line.lstrip()
        if in_fence:
            if stripped.startswith(fence_marker):
                in_fence = False
            masked.append("")
            continue
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = True
            fence_marker = stripped[:3]
            masked.append("")
            continue
        masked.append(_INLINE_CODE.sub("", line))
    return masked


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading (before duplicate suffixing)."""
    text = _INLINE_CODE.sub(lambda m: m.group(0).strip("`"), heading)
    # Strip markdown emphasis and link syntax, keep the visible text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("*", "").replace("_", " ").strip().lower()
    text = _SLUG_STRIP.sub("", text)
    return text.replace(" ", "-")


def heading_slugs(text: str) -> List[str]:
    """Every anchor slug the rendered file exposes, duplicates suffixed."""
    counts: Dict[str, int] = {}
    slugs: List[str] = []
    for line in _masked_lines_keep_headings(text):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.append(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def _masked_lines_keep_headings(text: str) -> List[str]:
    """Lines with fenced blocks blanked but heading text intact."""
    lines: List[str] = []
    in_fence = False
    fence_marker = ""
    for line in text.splitlines():
        stripped = line.lstrip()
        if in_fence:
            if stripped.startswith(fence_marker):
                in_fence = False
            lines.append("")
            continue
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = True
            fence_marker = stripped[:3]
            lines.append("")
            continue
        lines.append(line)
    return lines


def iter_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every link in ``text``.

    Fenced code blocks and inline code spans are skipped; image links and
    reference definitions count (their targets must resolve too).
    """
    for number, line in enumerate(_masked_lines(text), start=1):
        definition = _REFERENCE_DEF.match(line)
        if definition:
            yield number, definition.group(1)
            continue
        for match in _INLINE_LINK.finditer(line):
            target = match.group(1)
            # Split off an optional "title" after the URL.
            target = target.split(' "')[0].split(" '")[0].strip()
            if target.startswith("<") and target.endswith(">"):
                target = target[1:-1]
            if target:
                yield number, target


def _is_external(target: str) -> bool:
    lowered = target.lower()
    return any(lowered.startswith(scheme) for scheme in EXTERNAL_SCHEMES)


def check_file(path: Path, root: Path) -> List[LinkFinding]:
    """Check every intra-repo link in one markdown file."""
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(root).as_posix()
    findings: List[LinkFinding] = []
    own_slugs = None
    for line, target in iter_links(text):
        if _is_external(target):
            continue
        file_part, _, fragment = target.partition("#")
        if not file_part:
            # A same-file anchor.
            if own_slugs is None:
                own_slugs = heading_slugs(text)
            if fragment and fragment.lower() not in own_slugs:
                findings.append(
                    LinkFinding(rel, line, target, "no such heading in this file")
                )
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            findings.append(
                LinkFinding(rel, line, target, "target escapes the repository")
            )
            continue
        if not resolved.exists():
            findings.append(LinkFinding(rel, line, target, "no such file"))
            continue
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                findings.append(
                    LinkFinding(
                        rel, line, target, "anchor on a non-markdown target"
                    )
                )
            elif fragment.lower() not in heading_slugs(
                resolved.read_text(encoding="utf-8")
            ):
                findings.append(
                    LinkFinding(rel, line, target, "no such heading in target file")
                )
    return findings


def check_paths(paths: Sequence[Path], root: Path) -> List[LinkFinding]:
    """Check several files; findings come back in path order."""
    findings: List[LinkFinding] = []
    for path in paths:
        findings.extend(check_file(path, root))
    return findings


__all__ = [
    "EXTERNAL_SCHEMES",
    "LinkFinding",
    "check_file",
    "check_paths",
    "heading_slugs",
    "iter_links",
]
