"""A compact DPLL SAT solver with unit propagation and pure literals.

The Theorem 2 experiments need ground truth about satisfiability of the small
3-SAT formulas that get reduced to BBC games; this solver provides it without
any external dependency.  It also supports model enumeration, which the
experiment harness uses to count how many stable profiles the reduction
admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .cnf import Assignment, CNFFormula, Literal, literal_value


@dataclass
class SolverStats:
    """Counters describing the work performed by one solver invocation."""

    decisions: int = 0
    propagations: int = 0
    backtracks: int = 0


class DPLLSolver:
    """Davis–Putnam–Logemann–Loveland solver for CNF formulas."""

    def __init__(self, formula: CNFFormula) -> None:
        self.formula = formula
        self.stats = SolverStats()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self) -> Optional[Assignment]:
        """Return a satisfying assignment, or ``None`` if unsatisfiable.

        The returned assignment is total: every variable is given a value
        (unconstrained variables default to ``False``).
        """
        self.stats = SolverStats()
        result = self._search({})
        if result is None:
            return None
        for variable in self.formula.variables():
            result.setdefault(variable, False)
        return result

    def is_satisfiable(self) -> bool:
        """Return ``True`` when the formula has at least one model."""
        return self.solve() is not None

    def enumerate_models(self, limit: Optional[int] = None) -> Iterator[Assignment]:
        """Yield satisfying total assignments (up to ``limit`` of them).

        Enumeration is by exhaustive search over the free variables of each
        partial model found by DPLL, so it is only intended for the small
        formulas used in the reduction experiments.
        """
        count = 0
        for assignment in self._enumerate({}, self.formula.variables()):
            yield assignment
            count += 1
            if limit is not None and count >= limit:
                return

    def count_models(self, limit: Optional[int] = None) -> int:
        """Return the number of models (capped at ``limit`` when given)."""
        return sum(1 for _ in self.enumerate_models(limit=limit))

    # ------------------------------------------------------------------ #
    # DPLL search
    # ------------------------------------------------------------------ #
    def _search(self, assignment: Assignment) -> Optional[Assignment]:
        assignment = dict(assignment)
        status = self._propagate(assignment)
        if status is False:
            return None
        variable = self._choose_variable(assignment)
        if variable is None:
            return assignment
        self.stats.decisions += 1
        for value in (True, False):
            assignment[variable] = value
            result = self._search(assignment)
            if result is not None:
                return result
            del assignment[variable]
            self.stats.backtracks += 1
        return None

    def _propagate(self, assignment: Assignment) -> bool:
        """Apply unit propagation and pure-literal elimination in place.

        Returns ``False`` when a conflict (empty clause) is detected.
        """
        changed = True
        while changed:
            changed = False
            # Unit propagation.
            for clause in self.formula.clauses:
                state = self._clause_state(clause, assignment)
                if state == "satisfied":
                    continue
                unassigned = [lit for lit in clause if literal_value(lit, assignment) is None]
                if not unassigned:
                    return False
                if len(unassigned) == 1:
                    literal = unassigned[0]
                    assignment[abs(literal)] = literal > 0
                    self.stats.propagations += 1
                    changed = True
            # Pure-literal elimination.
            polarity: Dict[int, Set[bool]] = {}
            for clause in self.formula.clauses:
                if self._clause_state(clause, assignment) == "satisfied":
                    continue
                for literal in clause:
                    variable = abs(literal)
                    if variable in assignment:
                        continue
                    polarity.setdefault(variable, set()).add(literal > 0)
            for variable, signs in polarity.items():
                if len(signs) == 1:
                    assignment[variable] = next(iter(signs))
                    self.stats.propagations += 1
                    changed = True
        return True

    def _clause_state(self, clause: Tuple[Literal, ...], assignment: Assignment) -> str:
        for literal in clause:
            value = literal_value(literal, assignment)
            if value is True:
                return "satisfied"
        return "open"

    def _choose_variable(self, assignment: Assignment) -> Optional[int]:
        """Pick the unassigned variable occurring in the most open clauses."""
        counts: Dict[int, int] = {}
        for clause in self.formula.clauses:
            if self._clause_state(clause, assignment) == "satisfied":
                continue
            for literal in clause:
                variable = abs(literal)
                if variable not in assignment:
                    counts[variable] = counts.get(variable, 0) + 1
        if counts:
            return max(counts, key=lambda v: (counts[v], -v))
        for variable in self.formula.variables():
            if variable not in assignment:
                return None  # remaining variables are unconstrained
        return None

    # ------------------------------------------------------------------ #
    # Model enumeration
    # ------------------------------------------------------------------ #
    def _enumerate(self, assignment: Assignment, variables: List[int]) -> Iterator[Assignment]:
        if not self.formula.evaluate({**assignment}) and all(
            v in assignment for v in variables
        ):
            return
        free = [v for v in variables if v not in assignment]
        if not free:
            if self.formula.evaluate(assignment):
                yield dict(assignment)
            return
        variable = free[0]
        for value in (False, True):
            assignment[variable] = value
            if self._consistent(assignment):
                yield from self._enumerate(assignment, variables)
            del assignment[variable]

    def _consistent(self, assignment: Assignment) -> bool:
        """Return ``False`` only when some clause is already falsified."""
        for clause in self.formula.clauses:
            values = [literal_value(lit, assignment) for lit in clause]
            if values and all(value is False for value in values):
                return False
        return True


def solve(formula: CNFFormula) -> Optional[Assignment]:
    """Convenience wrapper: solve ``formula`` with a fresh :class:`DPLLSolver`."""
    return DPLLSolver(formula).solve()


def is_satisfiable(formula: CNFFormula) -> bool:
    """Convenience wrapper: return whether ``formula`` is satisfiable."""
    return DPLLSolver(formula).is_satisfiable()
