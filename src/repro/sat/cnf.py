"""CNF formula representation for the Theorem 2 reduction experiments.

Literals are non-zero integers in the DIMACS convention: ``+i`` is variable
``i``, ``-i`` is its negation.  A clause is a tuple of literals and a formula
is a list of clauses plus a variable count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Literal = int
Clause = Tuple[Literal, ...]
Assignment = Dict[int, bool]


@dataclass(frozen=True)
class CNFFormula:
    """A propositional formula in conjunctive normal form.

    Attributes
    ----------
    num_variables:
        Variables are numbered ``1..num_variables``.
    clauses:
        Tuple of clauses; each clause is a tuple of non-zero integer literals.
    """

    num_variables: int
    clauses: Tuple[Clause, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not clause:
                continue  # empty clauses are allowed (trivially unsatisfiable)
            for literal in clause:
                if literal == 0:
                    raise ValueError("literal 0 is not allowed (DIMACS convention)")
                if abs(literal) > self.num_variables:
                    raise ValueError(
                        f"literal {literal} references a variable beyond "
                        f"num_variables={self.num_variables}"
                    )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_clauses(clauses: Iterable[Sequence[Literal]]) -> "CNFFormula":
        """Build a formula, inferring ``num_variables`` from the literals."""
        normalised = tuple(tuple(clause) for clause in clauses)
        highest = 0
        for clause in normalised:
            for literal in clause:
                highest = max(highest, abs(literal))
        return CNFFormula(num_variables=highest, clauses=normalised)

    def with_clause(self, clause: Sequence[Literal]) -> "CNFFormula":
        """Return a new formula with ``clause`` appended."""
        highest = max([self.num_variables] + [abs(lit) for lit in clause])
        return CNFFormula(num_variables=highest, clauses=self.clauses + (tuple(clause),))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_clauses(self) -> int:
        """Return the number of clauses."""
        return len(self.clauses)

    def variables(self) -> List[int]:
        """Return the variable indices ``1..num_variables``."""
        return list(range(1, self.num_variables + 1))

    def is_3cnf(self) -> bool:
        """Return ``True`` when every clause has at most three literals."""
        return all(len(clause) <= 3 for clause in self.clauses)

    def evaluate(self, assignment: Assignment) -> bool:
        """Return the truth value of the formula under a complete assignment."""
        for clause in self.clauses:
            if not clause_satisfied(clause, assignment):
                return False
        return True

    def clause_status(self, assignment: Assignment) -> List[bool]:
        """Return per-clause satisfaction under a (possibly partial) assignment."""
        return [clause_satisfied(clause, assignment) for clause in self.clauses]

    def to_dimacs(self) -> str:
        """Serialise to DIMACS CNF text."""
        lines = [f"p cnf {self.num_variables} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines)

    @staticmethod
    def from_dimacs(text: str) -> "CNFFormula":
        """Parse DIMACS CNF text."""
        num_variables = 0
        clauses: List[Clause] = []
        current: List[Literal] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed DIMACS header: {line!r}")
                num_variables = int(parts[2])
                continue
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    clauses.append(tuple(current))
                    current = []
                else:
                    current.append(literal)
        if current:
            clauses.append(tuple(current))
        formula = CNFFormula.from_clauses(clauses)
        if num_variables > formula.num_variables:
            formula = CNFFormula(num_variables=num_variables, clauses=formula.clauses)
        return formula


def clause_satisfied(clause: Clause, assignment: Assignment) -> bool:
    """Return ``True`` if some literal of ``clause`` is true under ``assignment``.

    Unassigned variables count as not satisfying the literal, so the helper
    is conservative for partial assignments.
    """
    for literal in clause:
        variable = abs(literal)
        if variable in assignment and assignment[variable] == (literal > 0):
            return True
    return False


def literal_value(literal: Literal, assignment: Assignment) -> Optional[bool]:
    """Return the truth value of ``literal`` or ``None`` if unassigned."""
    variable = abs(literal)
    if variable not in assignment:
        return None
    value = assignment[variable]
    return value if literal > 0 else not value
