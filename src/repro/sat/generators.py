"""Random and hand-crafted 3-SAT workloads for the reduction experiments."""

from __future__ import annotations

from typing import List, Optional

from ..rng import SeedLike, as_rng as _rng
from .cnf import CNFFormula
from .dpll import is_satisfiable


def random_3sat(num_variables: int, num_clauses: int, seed: SeedLike = None) -> CNFFormula:
    """Return a uniformly random 3-SAT formula.

    Each clause picks three distinct variables and independent random signs.
    """
    if num_variables < 3:
        raise ValueError("random 3-SAT needs at least three variables")
    rng = _rng(seed)
    clauses: List[tuple] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_variables + 1), 3)
        clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
        clauses.append(clause)
    return CNFFormula(num_variables=num_variables, clauses=tuple(clauses))


def random_satisfiable_3sat(
    num_variables: int, num_clauses: int, seed: SeedLike = None
) -> CNFFormula:
    """Return a random 3-SAT formula guaranteed to be satisfiable.

    A hidden assignment is drawn first and every clause is forced to contain
    at least one literal satisfied by it (the classic "planted" model).
    """
    if num_variables < 3:
        raise ValueError("random 3-SAT needs at least three variables")
    rng = _rng(seed)
    hidden = {v: rng.random() < 0.5 for v in range(1, num_variables + 1)}
    clauses: List[tuple] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_variables + 1), 3)
        witness_index = rng.randrange(3)
        literals = []
        for position, variable in enumerate(variables):
            if position == witness_index:
                literals.append(variable if hidden[variable] else -variable)
            else:
                literals.append(variable if rng.random() < 0.5 else -variable)
        clauses.append(tuple(literals))
    return CNFFormula(num_variables=num_variables, clauses=tuple(clauses))


def random_unsatisfiable_3sat(
    num_variables: int,
    num_clauses: int,
    seed: SeedLike = None,
    max_attempts: int = 200,
) -> Optional[CNFFormula]:
    """Return a random unsatisfiable 3-SAT formula, or ``None`` if not found.

    Random formulas are drawn at high clause density until one is proven
    unsatisfiable by DPLL; ``None`` is returned after ``max_attempts`` draws.
    Intended for small variable counts only.
    """
    rng = _rng(seed)
    for _ in range(max_attempts):
        candidate = random_3sat(num_variables, num_clauses, seed=rng)
        if not is_satisfiable(candidate):
            return candidate
    return None


def pigeonhole_formula(holes: int) -> CNFFormula:
    """Return the (unsatisfiable) pigeonhole principle formula PHP(holes+1, holes).

    Variable ``x_{p,h}`` is encoded as ``p * holes + h + 1`` for pigeon ``p``
    in ``0..holes`` and hole ``h`` in ``0..holes-1``.  The formula states that
    ``holes + 1`` pigeons fit into ``holes`` holes with no sharing and is a
    standard hard unsatisfiable benchmark.
    """
    if holes < 1:
        raise ValueError("need at least one hole")
    pigeons = holes + 1

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses: List[tuple] = []
    for pigeon in range(pigeons):
        clauses.append(tuple(var(pigeon, hole) for hole in range(holes)))
    for hole in range(holes):
        for first in range(pigeons):
            for second in range(first + 1, pigeons):
                clauses.append((-var(first, hole), -var(second, hole)))
    return CNFFormula(num_variables=pigeons * holes, clauses=tuple(clauses))


def tiny_satisfiable_formula() -> CNFFormula:
    """Return a fixed small satisfiable 3-CNF used in documentation and tests."""
    return CNFFormula.from_clauses([(1, 2, 3), (-1, 2, -3), (1, -2, 3), (-1, -2, -3)])


def tiny_unsatisfiable_formula() -> CNFFormula:
    """Return a fixed small unsatisfiable CNF (all sign patterns over 2 vars)."""
    return CNFFormula.from_clauses([(1, 2), (1, -2), (-1, 2), (-1, -2)])
