"""SAT substrate: CNF formulas, a DPLL solver, and 3-SAT workload generators.

Used by the NP-hardness (Theorem 2) reduction experiments, which need ground
truth satisfiability for the formulas that get translated into BBC games.
"""

from .cnf import Assignment, Clause, CNFFormula, Literal, clause_satisfied, literal_value
from .dpll import DPLLSolver, SolverStats, is_satisfiable, solve
from .generators import (
    pigeonhole_formula,
    random_3sat,
    random_satisfiable_3sat,
    random_unsatisfiable_3sat,
    tiny_satisfiable_formula,
    tiny_unsatisfiable_formula,
)

__all__ = [
    "CNFFormula",
    "Clause",
    "Literal",
    "Assignment",
    "clause_satisfied",
    "literal_value",
    "DPLLSolver",
    "SolverStats",
    "solve",
    "is_satisfiable",
    "random_3sat",
    "random_satisfiable_3sat",
    "random_unsatisfiable_3sat",
    "pigeonhole_formula",
    "tiny_satisfiable_formula",
    "tiny_unsatisfiable_formula",
]
