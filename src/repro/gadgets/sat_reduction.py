"""The Theorem 2 / Figure 2 reduction: 3-SAT to pure-NE existence in BBC games.

Given a 3-CNF formula with ``n`` variables and ``m`` clauses the reduction
builds a non-uniform BBC game with

* a *variable* node ``X_i`` and two zero-budget *truth* nodes ``X_iT`` /
  ``X_iF`` per variable (``X_i`` equally prefers both truth nodes and can
  afford exactly one link, so its link choice *is* the truth assignment);
* an *intermediate* node ``I_{j,k}`` per literal, which prefers its variable
  node and the truth node matching the literal's sign;
* a *clause* node ``K_j`` that prefers (weight 2) the truth nodes that would
  satisfy it, plus the hub ``S`` (weight 1);
* a hub ``S`` with budget ``m`` that prefers every clause node, a zero-budget
  sink ``T``, and a copy of the Theorem 1 matching-pennies gadget whose
  central nodes additionally prefer the other central (weight ``2m - 1``) and
  every intermediate node (weight 2), and whose bottom nodes prefer their
  cross-over top (3), ``S`` (2), and ``T`` (1).

Links drawn in the paper's Figure 2 have length 1 and every other link has a
large length ``L``; the disconnection penalty is ``M = n_total * L``.  The
figure itself is not machine-readable, so the set of unit-length links is a
documented reconstruction: clause->intermediate, intermediate->variable,
variable->truth, S->clause, clause->S, central->S, plus the Figure 1 gadget
links (central->top, top->cross bottom, bottom->central/S/T).

The intended correspondence is: the game has a pure Nash equilibrium iff the
formula is satisfiable.  The forward direction is exercised by
:func:`canonical_profile` + an exact equilibrium report; the reverse
direction is probed by restricted exhaustive search on small formulas
(see ``benchmarks/bench_fig2_sat_reduction.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core import (
    BBCGame,
    Objective,
    SearchSummary,
    StrategyProfile,
    best_response,
    equilibrium_report,
    exhaustive_equilibrium_search,
)
from ..core.errors import InvalidGameDefinition
from ..sat import Assignment, CNFFormula

NodeName = str

_GADGET_CENTRALS = ("g0C", "g1C")
_GADGET_TOPS = ("g0LT", "g0RT", "g1LT", "g1RT")
_GADGET_BOTTOMS = ("g0LB", "g0RB", "g1LB", "g1RB")
_GADGET_TOP_TARGETS = {"g0LT": "g1RB", "g0RT": "g1LB", "g1LT": "g0LB", "g1RT": "g0RB"}
_GADGET_CROSSOVER = {"g0LB": "g0RT", "g0RB": "g0LT", "g1LB": "g1RT", "g1RB": "g1LT"}


@dataclass(frozen=True)
class SatReductionInstance:
    """The BBC game produced from a 3-CNF formula, with name lookup tables."""

    formula: CNFFormula
    game: BBCGame
    variable_nodes: Tuple[NodeName, ...]
    truth_nodes: Mapping[NodeName, Tuple[NodeName, NodeName]]
    clause_nodes: Tuple[NodeName, ...]
    intermediate_nodes: Mapping[NodeName, Tuple[NodeName, ...]]
    literal_of_intermediate: Mapping[NodeName, int]
    hub: NodeName
    sink: NodeName
    unit_length: float
    long_length: float

    @property
    def num_nodes(self) -> int:
        """Return the size of the constructed game."""
        return self.game.num_nodes


def variable_node(index: int) -> NodeName:
    """Return the node name of variable ``index`` (1-based, DIMACS style)."""
    return f"X{index}"


def truth_node(index: int, value: bool) -> NodeName:
    """Return the node name of the true/false truth node of a variable."""
    return f"X{index}{'T' if value else 'F'}"


def clause_node(index: int) -> NodeName:
    """Return the node name of clause ``index`` (0-based)."""
    return f"K{index}"


def intermediate_node(clause_index: int, position: int) -> NodeName:
    """Return the node name of the ``position``-th literal of a clause."""
    return f"I{clause_index}_{position}"


def build_sat_reduction(formula: CNFFormula, *, long_length: float = 25.0) -> SatReductionInstance:
    """Construct the Theorem 2 BBC game for ``formula``.

    ``long_length`` is the length ``L`` of links not drawn in Figure 2; the
    disconnection penalty is set to ``n_total * L`` as in the paper.
    """
    if formula.num_clauses == 0:
        raise InvalidGameDefinition("the reduction needs at least one clause")
    if not formula.is_3cnf():
        raise InvalidGameDefinition("the reduction is defined for 3-CNF formulas")

    m = formula.num_clauses
    nodes: List[NodeName] = []
    weights: Dict[Tuple[NodeName, NodeName], float] = {}
    budgets: Dict[NodeName, float] = {}
    unit_links: List[Tuple[NodeName, NodeName]] = []

    variable_nodes = []
    truth_lookup: Dict[NodeName, Tuple[NodeName, NodeName]] = {}
    for index in range(1, formula.num_variables + 1):
        var = variable_node(index)
        pos = truth_node(index, True)
        neg = truth_node(index, False)
        nodes.extend([var, pos, neg])
        variable_nodes.append(var)
        truth_lookup[var] = (pos, neg)
        weights[(var, pos)] = 1.0
        weights[(var, neg)] = 1.0
        budgets[var] = 1.0
        budgets[pos] = 0.0
        budgets[neg] = 0.0
        unit_links.append((var, pos))
        unit_links.append((var, neg))

    clause_nodes = []
    intermediates: Dict[NodeName, Tuple[NodeName, ...]] = {}
    literal_of: Dict[NodeName, int] = {}
    for clause_index, clause in enumerate(formula.clauses):
        knode = clause_node(clause_index)
        nodes.append(knode)
        clause_nodes.append(knode)
        budgets[knode] = 1.0
        weights[(knode, "S")] = 1.0
        unit_links.append((knode, "S"))
        members: List[NodeName] = []
        for position, literal in enumerate(clause):
            inode = intermediate_node(clause_index, position)
            nodes.append(inode)
            members.append(inode)
            literal_of[inode] = literal
            budgets[inode] = 1.0
            var = variable_node(abs(literal))
            target_truth = truth_node(abs(literal), literal > 0)
            weights[(inode, var)] = 1.0
            weights[(inode, target_truth)] = 1.0
            unit_links.append((inode, var))
            weights[(knode, target_truth)] = 2.0
            unit_links.append((knode, inode))
        intermediates[knode] = tuple(members)

    hub = "S"
    sink = "T"
    nodes.extend([hub, sink])
    budgets[hub] = float(m)
    budgets[sink] = 0.0
    for knode in clause_nodes:
        weights[(hub, knode)] = 1.0
        unit_links.append((hub, knode))

    # --- the embedded Figure 1 gadget ---------------------------------- #
    gadget_nodes = list(_GADGET_CENTRALS) + list(_GADGET_TOPS) + list(_GADGET_BOTTOMS)
    nodes.extend(gadget_nodes)
    for top, target in _GADGET_TOP_TARGETS.items():
        weights[(top, target)] = 1.0
        budgets[top] = 1.0
        unit_links.append((top, target))
    all_intermediates = [i for members in intermediates.values() for i in members]
    for central_index, central in enumerate(_GADGET_CENTRALS):
        other = _GADGET_CENTRALS[1 - central_index]
        own = central[:2]
        weights[(central, other)] = 2.0 * m - 1.0
        for inode in all_intermediates:
            weights[(central, inode)] = 2.0
        weights[(central, hub)] = 0.0  # the hub is a route, not a goal
        budgets[central] = 1.0
        unit_links.append((central, f"{own}LT"))
        unit_links.append((central, f"{own}RT"))
        unit_links.append((central, hub))
    for bottom in _GADGET_BOTTOMS:
        own = bottom[:2]
        weights[(bottom, _GADGET_CROSSOVER[bottom])] = 3.0
        weights[(bottom, hub)] = 2.0
        weights[(bottom, sink)] = 1.0
        budgets[bottom] = 1.0
        unit_links.append((bottom, f"{own}C"))
        unit_links.append((bottom, hub))
        unit_links.append((bottom, sink))

    total_nodes = len(nodes)
    penalty = total_nodes * long_length
    lengths: Dict[Tuple[NodeName, NodeName], float] = {}
    unit_set = set(unit_links)
    for tail in nodes:
        for head in nodes:
            if tail != head and (tail, head) not in unit_set:
                lengths[(tail, head)] = long_length

    game = BBCGame(
        nodes=nodes,
        weights=weights,
        link_lengths=lengths,
        budgets=budgets,
        default_weight=0.0,
        default_link_cost=1.0,
        default_link_length=1.0,
        default_budget=1.0,
        disconnection_penalty=penalty,
        objective=Objective.SUM,
    )
    return SatReductionInstance(
        formula=formula,
        game=game,
        variable_nodes=tuple(variable_nodes),
        truth_nodes=truth_lookup,
        clause_nodes=tuple(clause_nodes),
        intermediate_nodes=intermediates,
        literal_of_intermediate=literal_of,
        hub=hub,
        sink=sink,
        unit_length=1.0,
        long_length=long_length,
    )


def canonical_profile(
    instance: SatReductionInstance, assignment: Assignment
) -> StrategyProfile:
    """Build the profile the proof derives from a satisfying assignment.

    Variable nodes link to the truth node selected by ``assignment``; every
    intermediate node links to its variable node; each clause node links to
    an intermediate whose literal is satisfied (falling back to ``S`` if none
    is — only possible when ``assignment`` does not satisfy the formula);
    ``S`` links to every clause node; gadget tops play their forced links,
    centrals link to ``S``; gadget bottom strategies are filled in by exact
    best response against the rest (their paper-described choice depends on
    figure details, so we let the engine decide).
    """
    strategies: Dict[NodeName, FrozenSet[NodeName]] = {
        node: frozenset() for node in instance.game.nodes
    }
    for index in range(1, instance.formula.num_variables + 1):
        var = variable_node(index)
        strategies[var] = frozenset({truth_node(index, bool(assignment.get(index, False)))})
    for clause_index, clause in enumerate(instance.formula.clauses):
        knode = clause_node(clause_index)
        chosen: Optional[NodeName] = None
        for position, literal in enumerate(clause):
            inode = intermediate_node(clause_index, position)
            strategies[inode] = frozenset({variable_node(abs(literal))})
            satisfied = assignment.get(abs(literal), False) == (literal > 0)
            if satisfied and chosen is None:
                chosen = inode
        strategies[knode] = frozenset({chosen if chosen is not None else instance.hub})
    strategies[instance.hub] = frozenset(instance.clause_nodes)
    for top, target in _GADGET_TOP_TARGETS.items():
        strategies[top] = frozenset({target})
    for central in _GADGET_CENTRALS:
        strategies[central] = frozenset({instance.hub})
    profile = StrategyProfile(strategies)
    # Let the bottom nodes settle on exact best responses (a few rounds).
    for _ in range(4):
        changed = False
        for bottom in _GADGET_BOTTOMS:
            response = best_response(instance.game, profile, bottom)
            if response.improved:
                profile = response.apply(profile)
                changed = True
        if not changed:
            break
    return profile


@dataclass(frozen=True)
class SatisfiableDirectionReport:
    """How well the canonical profile of a satisfiable formula verifies."""

    is_equilibrium: bool
    max_regret: float
    unstable_nodes: Tuple[NodeName, ...]
    clause_nodes_stable: bool
    variable_nodes_stable: bool
    hub_stable: bool


def satisfiable_direction_report(
    instance: SatReductionInstance, assignment: Assignment
) -> SatisfiableDirectionReport:
    """Verify the SAT -> equilibrium direction for one satisfying assignment."""
    profile = canonical_profile(instance, assignment)
    report = equilibrium_report(instance.game, profile)
    unstable = report.unstable_nodes
    return SatisfiableDirectionReport(
        is_equilibrium=report.is_equilibrium,
        max_regret=report.max_regret,
        unstable_nodes=unstable,
        clause_nodes_stable=all(node not in unstable for node in instance.clause_nodes),
        variable_nodes_stable=all(node not in unstable for node in instance.variable_nodes),
        hub_stable=instance.hub not in unstable,
    )


def reduction_candidate_targets(
    instance: SatReductionInstance,
) -> Dict[NodeName, List[NodeName]]:
    """Restricted per-node strategy sets for exhaustive equilibrium searches.

    Every node is limited to the targets of its unit-length (Figure 2) links,
    which are exactly the moves the reduction's argument reasons about; the
    Nash check itself still considers every deviation.
    """
    candidates: Dict[NodeName, List[NodeName]] = {}
    for index in range(1, instance.formula.num_variables + 1):
        var = variable_node(index)
        candidates[var] = [truth_node(index, True), truth_node(index, False)]
        candidates[truth_node(index, True)] = []
        candidates[truth_node(index, False)] = []
    for clause_index, clause in enumerate(instance.formula.clauses):
        knode = clause_node(clause_index)
        candidates[knode] = [
            intermediate_node(clause_index, position) for position in range(len(clause))
        ] + [instance.hub]
        for position, literal in enumerate(clause):
            inode = intermediate_node(clause_index, position)
            candidates[inode] = [variable_node(abs(literal))]
    candidates[instance.hub] = list(instance.clause_nodes)
    candidates[instance.sink] = []
    for top, target in _GADGET_TOP_TARGETS.items():
        candidates[top] = [target]
    for central in _GADGET_CENTRALS:
        own = central[:2]
        candidates[central] = [f"{own}LT", f"{own}RT", instance.hub]
    for bottom in _GADGET_BOTTOMS:
        own = bottom[:2]
        candidates[bottom] = [f"{own}C", instance.hub, instance.sink]
    return candidates


def restricted_equilibrium_search(
    instance: SatReductionInstance, *, stop_at_first: bool = True
) -> SearchSummary:
    """Search for pure equilibria over the Figure-2 candidate strategy sets.

    The hub ``S`` plays its full strategy (all clause nodes) rather than
    being enumerated over all ``C(m + ..., m)`` subsets, which is its unique
    useful budget-maximal move; everything else ranges over the candidates of
    :func:`reduction_candidate_targets`.
    """
    candidates = reduction_candidate_targets(instance)
    candidate_strategies = {instance.hub: [frozenset(instance.clause_nodes)]}
    restricted_targets = {
        node: targets for node, targets in candidates.items() if node != instance.hub
    }
    return exhaustive_equilibrium_search(
        instance.game,
        candidate_strategies=candidate_strategies,
        candidate_targets=restricted_targets,
        stop_at_first=stop_at_first,
    )
