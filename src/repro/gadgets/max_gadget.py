"""Theorem 7 / Figure 5: BBC-max games without pure Nash equilibria.

Figure 5 modifies the Figure 1 gadget for the max-distance objective by
attaching a "sink chain" to each sub-gadget: ``iLT -> iS -> iA -> iB2 -> iC``.
A bottom node that cares equally about its sink ``iS`` and its central ``iC``
then faces the paper's max-switch: linking to the central yields a maximum
distance of 3 when the central points at ``iLT`` (the sink is reached through
``iC -> iLT -> iS``) and ``M`` otherwise, while linking to the sink always
yields a maximum distance of 4 (the chain returns to the central).

The arXiv text specifies the bottom switch precisely but leaves the central
nodes' max-objective preferences to "as in Theorem 1", which does not pin
down a unique construction (under the max objective a central with an
unreachable secondary target is indifferent between its tops).  We therefore
ship the reconstructed gadget for study and verify its properties
empirically; the no-equilibrium property of Theorem 7 is *not* certified by
this module (see EXPERIMENTS.md), only measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Tuple

from ..core import (
    BBCGame,
    Objective,
    SearchSummary,
    StrategyProfile,
    exhaustive_equilibrium_search,
)

NodeName = str

_SUBGADGET_SUFFIXES = ("C", "LT", "RT", "LB", "RB", "S", "A", "B2")


@dataclass(frozen=True)
class MaxGadget:
    """The reconstructed Figure 5 game plus its candidate strategy sets."""

    game: BBCGame
    bottom_weight: float

    @property
    def nodes(self) -> Tuple[NodeName, ...]:
        """Return all sixteen node names."""
        return self.game.nodes

    def candidate_targets(self) -> Dict[NodeName, List[NodeName]]:
        """Return per-node strategy restrictions for exhaustive searches."""
        candidates: Dict[NodeName, List[NodeName]] = {}
        for prefix, other in (("g0", "g1"), ("g1", "g0")):
            candidates[f"{prefix}LT"] = [f"{prefix}S"]
            candidates[f"{prefix}S"] = [f"{prefix}A"]
            candidates[f"{prefix}A"] = [f"{prefix}B2"]
            candidates[f"{prefix}B2"] = [f"{prefix}C"]
            candidates[f"{prefix}RT"] = [f"{other}LB"]
            candidates[f"{prefix}C"] = [f"{prefix}LT", f"{prefix}RT", f"{other}C"]
            candidates[f"{prefix}LB"] = [f"{prefix}C", f"{prefix}S"]
            candidates[f"{prefix}RB"] = [f"{prefix}C", f"{prefix}S"]
        return candidates


def build_max_gadget(*, bottom_weight: float = 1.0) -> MaxGadget:
    """Construct the reconstructed Figure 5 BBC-max gadget (n = 16, k = 1).

    Per sub-gadget ``gi``: the sink chain ``giLT -> giS -> giA -> giB2 ->
    giC`` is enforced by unique positive preferences; ``giRT`` couples into
    the other sub-gadget's ``LB`` bottom; the bottoms ``giLB``/``giRB`` carry
    the paper's max-switch weights (``bottom_weight`` on both the sink and
    the central); the central cares about its own sink and the other central.
    """
    nodes: List[NodeName] = [
        f"g{i}{suffix}" for i in range(2) for suffix in _SUBGADGET_SUFFIXES
    ]
    weights: Dict[Tuple[NodeName, NodeName], float] = {}
    budgets: Dict[NodeName, float] = {node: 1.0 for node in nodes}

    for i in range(2):
        prefix = f"g{i}"
        other = f"g{1 - i}"
        # Forced sink chain and cross-gadget coupling.
        weights[(f"{prefix}LT", f"{prefix}S")] = 1.0
        weights[(f"{prefix}S", f"{prefix}A")] = 1.0
        weights[(f"{prefix}A", f"{prefix}B2")] = 1.0
        weights[(f"{prefix}B2", f"{prefix}C")] = 1.0
        weights[(f"{prefix}RT", f"{other}LB")] = 1.0
        # Bottom max-switches (the paper's "a > 0" weights).
        for bottom in ("LB", "RB"):
            weights[(f"{prefix}{bottom}", f"{prefix}S")] = bottom_weight
            weights[(f"{prefix}{bottom}", f"{prefix}C")] = bottom_weight
        # Central: own sink plus the other central.
        weights[(f"{prefix}C", f"{prefix}S")] = 1.0
        weights[(f"{prefix}C", f"{other}C")] = 1.0

    game = BBCGame(
        nodes=nodes,
        weights=weights,
        budgets=budgets,
        default_weight=0.0,
        default_budget=1.0,
        objective=Objective.MAX,
    )
    return MaxGadget(game=game, bottom_weight=bottom_weight)


def equilibrium_search(gadget: MaxGadget, *, stop_at_first: bool = True) -> SearchSummary:
    """Search the restricted profile space of the gadget for pure equilibria."""
    return exhaustive_equilibrium_search(
        gadget.game,
        candidate_targets=gadget.candidate_targets(),
        stop_at_first=stop_at_first,
    )


def bottom_switch_distances(gadget: MaxGadget) -> Mapping[str, float]:
    """Measure the two branches of the paper's max-switch for node ``g0RB``.

    Returns the max distance achieved by linking to the central when the
    central points at ``g0LT`` (the paper predicts 3) and by linking to the
    sink (the paper predicts 4).
    """
    strategies: Dict[NodeName, FrozenSet[NodeName]] = {
        node: frozenset() for node in gadget.nodes
    }
    for i in range(2):
        prefix = f"g{i}"
        other = f"g{1 - i}"
        strategies[f"{prefix}LT"] = frozenset({f"{prefix}S"})
        strategies[f"{prefix}S"] = frozenset({f"{prefix}A"})
        strategies[f"{prefix}A"] = frozenset({f"{prefix}B2"})
        strategies[f"{prefix}B2"] = frozenset({f"{prefix}C"})
        strategies[f"{prefix}RT"] = frozenset({f"{other}LB"})
        strategies[f"{prefix}C"] = frozenset({f"{prefix}LT"})
        strategies[f"{prefix}LB"] = frozenset({f"{prefix}C"})
        strategies[f"{prefix}RB"] = frozenset({f"{prefix}C"})
    profile = StrategyProfile(strategies)
    via_central = gadget.game.node_cost(profile, "g0RB")
    via_sink = gadget.game.node_cost(profile.with_strategy("g0RB", {"g0S"}), "g0RB")
    return {"via_central": via_central, "via_sink": via_sink}
