"""The Theorem 1 / Figure 1 gadget: a non-uniform BBC game with no pure NE.

The gadget encodes a matching-pennies interaction between the two *central*
nodes ``0C`` and ``1C``.  Each sub-gadget ``i`` has a central node, two top
nodes (``iLT``, ``iRT``) and two bottom nodes (``iLB``, ``iRB``); there is
one extra escape node ``X``.  We reproduce the *uniform-length* variant of
the proof (all link lengths and link costs are 1, budgets are 1, only the
preference weights are non-uniform), whose preference constraints the paper
states explicitly:

* every top node cares about exactly one bottom node of the *other*
  sub-gadget, so its unique best response is the direct link (the coupling
  between the two sub-gadgets);
* the central node ``iC`` cares about its own top nodes with weight ``zeta``
  and about the other central with weight ``xi < zeta``, which makes it pick
  whichever top currently provides a path to the other central;
* each bottom node cares about ``X`` (weight ``alpha``), its own central
  (``beta``) and its *cross-over* top node (``gamma``), with
  ``alpha > beta``, ``alpha > gamma`` and
  ``alpha (M-1) < beta (M-1) + gamma (M-2)``; these are exactly the paper's
  three inequalities and they force the bottom node to link to its central
  when the central points at the cross-over top, and to ``X`` otherwise.

The arXiv source does not contain a machine-readable Figure 1, so the
*orientation* of the four top-to-bottom coupling links is a reconstruction:
we use ``0LT -> 1RB``, ``0RT -> 1LB``, ``1LT -> 0LB``, ``1RT -> 0RB``, which
realises the proof's deviation cycle exactly (up to relabelling of
left/right).  ``X`` is treated as a pure sink (budget 0), as the paper does
for sink-like nodes in the Theorem 2 reduction; a positive X budget can be
requested for experimentation.

Reproduction note
-----------------
With *fully* uniform link costs the text-reconstructible gadget admits an
unintended pure Nash equilibrium: the four bottom nodes can link directly to
their cross-over tops, closing one long cycle through both sub-gadgets that
reaches every node a bottom cares about, which stabilises the centrals (see
``tests/test_gadgets.py`` and EXPERIMENTS.md).  The default construction
therefore uses the one extra degree of non-uniformity the BBC model offers —
bottom nodes pay link cost 2 for any target other than their own central and
``X`` (so those links exceed their budget) — which restores the paper's
intended switch behaviour and makes the no-equilibrium property hold; the
fully uniform-cost variant is available via ``restrict_bottom_links=False``
for studying the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core import (
    BBCGame,
    Objective,
    SearchSummary,
    StrategyProfile,
    best_response,
    equilibrium_report,
    exhaustive_equilibrium_search,
)
from ..core.errors import InvalidGameDefinition

NodeName = str

#: The eleven nodes of the basic gadget, in a fixed order.
GADGET_NODES: Tuple[NodeName, ...] = (
    "0C",
    "0LT",
    "0RT",
    "0LB",
    "0RB",
    "1C",
    "1LT",
    "1RT",
    "1LB",
    "1RB",
    "X",
)

#: Coupling links: each top node's unique positive-preference target.
TOP_TARGETS: Mapping[NodeName, NodeName] = {
    "0LT": "1RB",
    "0RT": "1LB",
    "1LT": "0LB",
    "1RT": "0RB",
}

#: Cross-over top node of each bottom node (same sub-gadget, opposite side).
CROSSOVER_OF: Mapping[NodeName, NodeName] = {
    "0LB": "0RT",
    "0RB": "0LT",
    "1LB": "1RT",
    "1RB": "1LT",
}

CENTRALS: Tuple[NodeName, NodeName] = ("0C", "1C")
TOPS: Tuple[NodeName, ...] = ("0LT", "0RT", "1LT", "1RT")
BOTTOMS: Tuple[NodeName, ...] = ("0LB", "0RB", "1LB", "1RB")


@dataclass(frozen=True)
class SwitchWeights:
    """The bottom-node preference weights ``alpha, beta, gamma`` of the proof."""

    alpha: float
    beta: float
    gamma: float

    def satisfies_inequalities(self, penalty: float) -> bool:
        """Return whether the paper's three switch inequalities hold."""
        return (
            self.alpha > self.gamma
            and self.alpha > self.beta
            and self.alpha * (penalty - 1)
            < self.beta * (penalty - 1) + self.gamma * (penalty - 2)
        )

    @staticmethod
    def from_penalty(penalty: float, gamma: float = 1.0) -> "SwitchWeights":
        """Derive weights from ``M`` using the paper's recipe.

        The paper picks ``epsilon < gamma (M-2)/(M-1)``, ``beta = gamma +
        epsilon`` and ``alpha = beta + gamma (M-2)/(M-1) - epsilon``; we use
        ``epsilon`` equal to half its upper bound.
        """
        slack = gamma * (penalty - 2) / (penalty - 1)
        epsilon = slack / 2
        beta = gamma + epsilon
        alpha = beta + slack - epsilon
        return SwitchWeights(alpha=alpha, beta=beta, gamma=gamma)


@dataclass(frozen=True)
class MatchingPenniesGadget:
    """The constructed gadget game plus the metadata used by its verifiers."""

    game: BBCGame
    switch_weights: SwitchWeights
    zeta: float
    xi: float
    x_budget: float
    padding_nodes: Tuple[NodeName, ...]
    restricted: bool

    @property
    def nodes(self) -> Tuple[NodeName, ...]:
        """Return all node names, gadget nodes first."""
        return self.game.nodes

    def candidate_targets(self) -> Dict[NodeName, List[NodeName]]:
        """Return the per-node strategy restriction used by the exhaustive search.

        Each node is restricted to targets that carry positive preference
        weight for it, plus (for bottoms) the other bottom of its own
        sub-gadget and (for centrals) the escape node ``X`` — the only
        targets through which a best response can ever route, given that the
        remaining nodes' links are forced by unique positive preferences.
        The Nash test itself always considers *all* deviations.
        """
        candidates: Dict[NodeName, List[NodeName]] = {}
        if self.restricted:
            # Bottom nodes can only afford {own central, X}; centrals are
            # enumerated over *every* possible link, so together with the
            # forced tops and the budget-0 X the search is fully exhaustive.
            candidates["0C"] = [v for v in GADGET_NODES if v != "0C"]
            candidates["1C"] = [v for v in GADGET_NODES if v != "1C"]
            for bottom in BOTTOMS:
                candidates[bottom] = [f"{bottom[0]}C", "X"]
        else:
            candidates["0C"] = ["0LT", "0RT", "1C", "X"]
            candidates["1C"] = ["1LT", "1RT", "0C", "X"]
            for bottom in BOTTOMS:
                gadget = bottom[0]
                central = f"{gadget}C"
                sibling = [b for b in BOTTOMS if b[0] == gadget and b != bottom][0]
                candidates[bottom] = [central, "X", CROSSOVER_OF[bottom], sibling]
        for top, target in TOP_TARGETS.items():
            candidates[top] = [target]
        candidates["X"] = [] if self.x_budget <= 0 else list(GADGET_NODES[:-1])
        for padding in self.padding_nodes:
            candidates[padding] = []
        return candidates


def build_matching_pennies_gadget(
    *,
    num_padding: int = 0,
    x_budget: float = 0.0,
    zeta: float = 2.0,
    xi: float = 1.0,
    restrict_bottom_links: bool = True,
    disconnection_penalty: Optional[float] = None,
) -> MatchingPenniesGadget:
    """Construct the (uniform-length) Theorem 1 gadget.

    Parameters
    ----------
    num_padding:
        Extra isolated nodes appended to realise the "for any n >= 11" part
        of the theorem; they have zero budget and nobody cares about them.
    x_budget:
        Budget of the escape node ``X`` (0 in the canonical construction).
    zeta, xi:
        Central-node preference weights for its own tops (``zeta``) and the
        other central (``xi``); the proof needs ``0 < xi < zeta``.
    restrict_bottom_links:
        When ``True`` (default), bottom nodes pay link cost 2 for any target
        other than their own central and ``X``, which prices those links out
        of their unit budget; see the module docstring for why this is needed
        for the no-equilibrium property.
    """
    if not 0 < xi < zeta:
        raise InvalidGameDefinition("the construction requires 0 < xi < zeta")
    if num_padding < 0:
        raise InvalidGameDefinition("num_padding must be non-negative")

    padding = tuple(f"P{i}" for i in range(num_padding))
    nodes = GADGET_NODES + padding
    n = len(nodes)
    if disconnection_penalty is None:
        disconnection_penalty = 10.0 * n
    switch = SwitchWeights.from_penalty(disconnection_penalty)

    weights: Dict[Tuple[NodeName, NodeName], float] = {}
    budgets: Dict[NodeName, float] = {}
    link_costs: Dict[Tuple[NodeName, NodeName], float] = {}

    # Top nodes: a single positive preference on the coupled bottom node.
    for top, target in TOP_TARGETS.items():
        weights[(top, target)] = 1.0
        budgets[top] = 1.0

    # Central nodes: own tops with weight zeta, other central with weight xi.
    for index, central in enumerate(CENTRALS):
        gadget = central[0]
        other = CENTRALS[1 - index]
        weights[(central, f"{gadget}LT")] = zeta
        weights[(central, f"{gadget}RT")] = zeta
        weights[(central, other)] = xi
        budgets[central] = 1.0

    # Bottom nodes: X (alpha), own central (beta), cross-over top (gamma).
    for bottom in BOTTOMS:
        gadget = bottom[0]
        weights[(bottom, "X")] = switch.alpha
        weights[(bottom, f"{gadget}C")] = switch.beta
        weights[(bottom, CROSSOVER_OF[bottom])] = switch.gamma
        budgets[bottom] = 1.0
        if restrict_bottom_links:
            for target in nodes:
                if target not in (bottom, f"{gadget}C", "X"):
                    link_costs[(bottom, target)] = 2.0

    budgets["X"] = float(x_budget)
    for pad in padding:
        budgets[pad] = 0.0

    game = BBCGame(
        nodes=nodes,
        weights=weights,
        link_costs=link_costs,
        budgets=budgets,
        default_weight=0.0,
        default_link_cost=1.0,
        default_link_length=1.0,
        default_budget=1.0,
        disconnection_penalty=disconnection_penalty,
        objective=Objective.SUM,
    )
    return MatchingPenniesGadget(
        game=game,
        switch_weights=switch,
        zeta=zeta,
        xi=xi,
        x_budget=float(x_budget),
        padding_nodes=padding,
        restricted=restrict_bottom_links,
    )


def forced_profile(
    gadget: MatchingPenniesGadget, zero_top: NodeName, one_top: NodeName
) -> StrategyProfile:
    """Return the profile induced by fixing the two centrals' top choices.

    Top nodes play their unique positive-preference link; bottom nodes play
    the switch dictated by the proof (own central when the central points at
    their cross-over top, ``X`` otherwise); ``X`` and padding nodes buy
    nothing.
    """
    if zero_top not in ("0LT", "0RT") or one_top not in ("1LT", "1RT"):
        raise InvalidGameDefinition("central choices must be their own top nodes")
    strategies: Dict[NodeName, FrozenSet[NodeName]] = {
        node: frozenset() for node in gadget.nodes
    }
    strategies["0C"] = frozenset({zero_top})
    strategies["1C"] = frozenset({one_top})
    for top, target in TOP_TARGETS.items():
        strategies[top] = frozenset({target})
    central_choice = {"0": zero_top, "1": one_top}
    for bottom in BOTTOMS:
        gadget_id = bottom[0]
        if central_choice[gadget_id] == CROSSOVER_OF[bottom]:
            strategies[bottom] = frozenset({f"{gadget_id}C"})
        else:
            strategies[bottom] = frozenset({"X"})
    return StrategyProfile(strategies)


@dataclass(frozen=True)
class CaseAnalysisStep:
    """One configuration of the case analysis and the deviation it admits."""

    zero_top: NodeName
    one_top: NodeName
    bottoms_stable: bool
    tops_stable: bool
    deviating_central: Optional[NodeName]
    central_improvement: float


def verify_case_analysis(gadget: MatchingPenniesGadget) -> List[CaseAnalysisStep]:
    """Execute the proof's case analysis over the four central configurations.

    For each of the four (``0C`` top, ``1C`` top) combinations the induced
    profile is built, the forced nodes (tops and bottoms) are verified to be
    exactly best-responding, and the profitable central deviation predicted
    by the matching-pennies structure is measured.  Theorem 1 holds when
    every configuration admits a deviating central.
    """
    steps: List[CaseAnalysisStep] = []
    for zero_top in ("0LT", "0RT"):
        for one_top in ("1LT", "1RT"):
            profile = forced_profile(gadget, zero_top, one_top)
            # Let the bottom nodes settle: with the centrals and tops fixed,
            # iterate their best responses to a fixed point (the switch
            # behaviour described in the proof, adjusted for indirect paths).
            for _ in range(8):
                changed = False
                for bottom in BOTTOMS:
                    response = best_response(gadget.game, profile, bottom)
                    if response.improved:
                        profile = response.apply(profile)
                        changed = True
                if not changed:
                    break
            bottoms_stable = all(
                not best_response(gadget.game, profile, bottom).improved
                for bottom in BOTTOMS
            )
            tops_stable = all(
                not best_response(gadget.game, profile, top).improved for top in TOPS
            )
            deviator: Optional[NodeName] = None
            improvement = 0.0
            for central in CENTRALS:
                result = best_response(gadget.game, profile, central)
                if result.improved and result.regret > improvement:
                    deviator = central
                    improvement = result.regret
            steps.append(
                CaseAnalysisStep(
                    zero_top=zero_top,
                    one_top=one_top,
                    bottoms_stable=bottoms_stable,
                    tops_stable=tops_stable,
                    deviating_central=deviator,
                    central_improvement=improvement,
                )
            )
    return steps


def no_equilibrium_search(
    gadget: MatchingPenniesGadget, *, stop_at_first: bool = True
) -> SearchSummary:
    """Exhaustively search the restricted profile space for a pure NE.

    Profiles range over :meth:`MatchingPenniesGadget.candidate_targets`
    (documented there); the Nash check for every candidate profile considers
    all deviations, so any equilibrium found would be genuine.  Theorem 1
    predicts ``equilibria_found == 0``.
    """
    return exhaustive_equilibrium_search(
        gadget.game,
        candidate_targets=gadget.candidate_targets(),
        stop_at_first=stop_at_first,
    )


def gadget_equilibrium_report(gadget: MatchingPenniesGadget, profile: StrategyProfile):
    """Convenience wrapper: full equilibrium report for a gadget profile."""
    return equilibrium_report(gadget.game, profile)
