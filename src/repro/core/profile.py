"""Strategy profiles: who buys which outgoing links.

A *strategy* for node ``u`` is the set of heads of the outgoing links it
purchases.  A *profile* assigns a strategy to every node and therefore fully
determines the formed network ``G(S)`` of the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Tuple

from ..graphs import DiGraph
from .errors import InvalidProfile, InvalidStrategy

Node = Hashable
Strategy = FrozenSet[Node]
Fingerprint = Tuple[Tuple[Node, Tuple[Node, ...]], ...]


class StrategyProfile(Mapping[Node, Strategy]):
    """An immutable assignment of link-purchase strategies to nodes.

    The profile behaves like a read-only mapping ``{node: frozenset(targets)}``.
    Nodes with no purchased links map to the empty frozenset.
    """

    __slots__ = ("_strategies",)

    def __init__(self, strategies: Mapping[Node, Iterable[Node]]) -> None:
        normalised: Dict[Node, Strategy] = {}
        for node, targets in strategies.items():
            target_set = frozenset(targets)
            if node in target_set:
                raise InvalidStrategy(f"node {node!r} cannot buy a link to itself")
            normalised[node] = target_set
        self._strategies = normalised

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty(nodes: Iterable[Node]) -> "StrategyProfile":
        """Return the profile in which no node buys any link."""
        return StrategyProfile({node: frozenset() for node in nodes})

    @staticmethod
    def from_graph(graph: DiGraph) -> "StrategyProfile":
        """Interpret each node's out-edges in ``graph`` as its strategy."""
        return StrategyProfile(
            {node: frozenset(graph.successors(node)) for node in graph.nodes()}
        )

    @staticmethod
    def from_pairs(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> "StrategyProfile":
        """Build a profile from an explicit node set and ``(buyer, target)`` pairs."""
        strategies: Dict[Node, set] = {node: set() for node in nodes}
        for buyer, target in edges:
            if buyer not in strategies:
                raise InvalidProfile(f"edge buyer {buyer!r} is not a declared node")
            strategies[buyer].add(target)
        return StrategyProfile(strategies)

    def with_strategy(self, node: Node, targets: Iterable[Node]) -> "StrategyProfile":
        """Return a new profile in which ``node`` plays ``targets`` instead."""
        if node not in self._strategies:
            raise InvalidProfile(f"node {node!r} is not part of this profile")
        updated = dict(self._strategies)
        updated[node] = frozenset(targets)
        return StrategyProfile(updated)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def strategy(self, node: Node) -> Strategy:
        """Return the strategy of ``node`` (its set of purchased link heads)."""
        try:
            return self._strategies[node]
        except KeyError as exc:
            raise InvalidProfile(f"node {node!r} is not part of this profile") from exc

    def nodes(self) -> Tuple[Node, ...]:
        """Return the nodes covered by this profile."""
        return tuple(self._strategies)

    def out_degree(self, node: Node) -> int:
        """Return the number of links purchased by ``node``."""
        return len(self.strategy(node))

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over all purchased links as ``(buyer, target)`` pairs."""
        for node, targets in self._strategies.items():
            for target in targets:
                yield (node, target)

    def number_of_edges(self) -> int:
        """Return the total number of purchased links."""
        return sum(len(targets) for targets in self._strategies.values())

    def graph(self) -> DiGraph:
        """Return the formed network ``G(S)`` as a :class:`DiGraph` (no attributes)."""
        graph = DiGraph()
        graph.add_nodes_from(self._strategies)
        for node, targets in self._strategies.items():
            for target in targets:
                graph.add_edge(node, target)
        return graph

    def adjacency(self) -> Dict[Node, Tuple[Node, ...]]:
        """Return a plain ``{node: (targets...)}`` snapshot (for fast BFS)."""
        return {node: tuple(targets) for node, targets in self._strategies.items()}

    def fingerprint(self) -> Fingerprint:
        """Return a canonical, hashable form of the profile.

        Used by the dynamics engine to detect loops in best-response walks.
        Nodes are ordered by ``repr`` so arbitrary hashable labels work.
        """
        return tuple(
            (node, tuple(sorted(targets, key=repr)))
            for node, targets in sorted(self._strategies.items(), key=lambda kv: repr(kv[0]))
        )

    def describe(self) -> str:
        """Return a compact multi-line description (one node per line)."""
        lines = []
        for node in sorted(self._strategies, key=repr):
            targets = ", ".join(str(t) for t in sorted(self._strategies[node], key=repr))
            lines.append(f"{node} -> [{targets}]")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Mapping protocol / dunders
    # ------------------------------------------------------------------ #
    def __getitem__(self, node: Node) -> Strategy:
        return self.strategy(node)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._strategies)

    def __len__(self) -> int:
        return len(self._strategies)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return self._strategies == other._strategies

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StrategyProfile({self.number_of_edges()} links over {len(self)} nodes)"
