"""BBC game definitions: the general non-uniform game and the uniform game.

A BBC game is the tuple ``<V, w, c, l, b>`` of Section 2 of the paper:

* ``V`` — the set of nodes (players);
* ``w(u, v)`` — how much ``u`` cares about reaching ``v``;
* ``c(u, v)`` — the price ``u`` pays to buy the directed link ``(u, v)``;
* ``l(u, v)`` — the length of that link if it is bought (by anyone);
* ``b(u)`` — the total budget ``u`` may spend on outgoing links.

Given a strategy profile ``S`` the formed network is ``G(S)`` and the cost of
``u`` is the preference-weighted sum (or maximum, for BBC-max games) of
shortest-path distances from ``u`` to every other node, where unreachable
nodes cost the disconnection penalty ``M``.
"""

from __future__ import annotations

import itertools
import math
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..graphs import DiGraph, bfs_distances, dijkstra_distances
from .errors import InvalidGameDefinition, InvalidProfile, InvalidStrategy, SearchSpaceTooLarge
from .objectives import Objective
from .profile import StrategyProfile, Strategy

Node = Hashable
PairFunction = Mapping[Tuple[Node, Node], float]

#: Default cap on how many candidate strategies a single feasibility
#: enumeration may yield before :class:`SearchSpaceTooLarge` is raised.
DEFAULT_ENUMERATION_LIMIT = 2_000_000


class BBCGame:
    """A (possibly non-uniform) Bounded Budget Connection game.

    Parameters
    ----------
    nodes:
        The player set.  Order is preserved and used for deterministic
        iteration in the engine.
    weights, link_costs, link_lengths:
        Sparse ``{(u, v): value}`` overrides; missing pairs fall back to the
        corresponding ``default_*`` value.
    budgets:
        Sparse ``{u: budget}`` overrides; missing nodes fall back to
        ``default_budget``.
    disconnection_penalty:
        The constant ``M`` charged per unit of preference weight for an
        unreachable target.  Defaults to ``10 * n * max_length``, comfortably
        larger than any realisable distance as the paper requires.
    objective:
        :class:`Objective.SUM` for the standard game, :class:`Objective.MAX`
        for BBC-max games.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        *,
        weights: Optional[PairFunction] = None,
        link_costs: Optional[PairFunction] = None,
        link_lengths: Optional[PairFunction] = None,
        budgets: Optional[Mapping[Node, float]] = None,
        default_weight: float = 1.0,
        default_link_cost: float = 1.0,
        default_link_length: float = 1.0,
        default_budget: float = 1.0,
        disconnection_penalty: Optional[float] = None,
        objective: Objective = Objective.SUM,
    ) -> None:
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        if len(set(self._nodes)) != len(self._nodes):
            raise InvalidGameDefinition("duplicate node labels are not allowed")
        if not self._nodes:
            raise InvalidGameDefinition("a game needs at least one node")
        self._node_set = frozenset(self._nodes)
        self._weights = dict(weights or {})
        self._link_costs = dict(link_costs or {})
        self._link_lengths = dict(link_lengths or {})
        self._budgets = dict(budgets or {})
        self._default_weight = float(default_weight)
        self._default_link_cost = float(default_link_cost)
        self._default_link_length = float(default_link_length)
        self._default_budget = float(default_budget)
        self.objective = objective

        self._validate_tables()

        if disconnection_penalty is None:
            disconnection_penalty = 10.0 * len(self._nodes) * self.max_link_length()
        self.disconnection_penalty = float(disconnection_penalty)
        if self.disconnection_penalty <= 0:
            raise InvalidGameDefinition("the disconnection penalty must be positive")

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate_tables(self) -> None:
        for table_name, table in (
            ("weights", self._weights),
            ("link_costs", self._link_costs),
            ("link_lengths", self._link_lengths),
        ):
            for (tail, head), value in table.items():
                if tail not in self._node_set or head not in self._node_set:
                    raise InvalidGameDefinition(
                        f"{table_name}[{tail!r}, {head!r}] references an unknown node"
                    )
                if tail == head:
                    raise InvalidGameDefinition(
                        f"{table_name} must not contain self pairs ({tail!r})"
                    )
                if value < 0:
                    raise InvalidGameDefinition(
                        f"{table_name}[{tail!r}, {head!r}] is negative ({value!r})"
                    )
        for node, budget in self._budgets.items():
            if node not in self._node_set:
                raise InvalidGameDefinition(f"budget for unknown node {node!r}")
            if budget < 0:
                raise InvalidGameDefinition(f"budget of {node!r} is negative ({budget!r})")
        for name, value in (
            ("default_weight", self._default_weight),
            ("default_link_cost", self._default_link_cost),
            ("default_link_length", self._default_link_length),
            ("default_budget", self._default_budget),
        ):
            if value < 0:
                raise InvalidGameDefinition(f"{name} is negative ({value!r})")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """Return the players in declaration order."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        """Return ``n``, the number of players."""
        return len(self._nodes)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when ``node`` is a player of this game."""
        return node in self._node_set

    def weight(self, source: Node, target: Node) -> float:
        """Return ``w(source, target)``, the preference of ``source`` for ``target``."""
        if source == target:
            return 0.0
        return self._weights.get((source, target), self._default_weight)

    def link_cost(self, source: Node, target: Node) -> float:
        """Return ``c(source, target)``, the purchase cost of the link."""
        return self._link_costs.get((source, target), self._default_link_cost)

    def link_length(self, source: Node, target: Node) -> float:
        """Return ``l(source, target)``, the length of the link if present."""
        return self._link_lengths.get((source, target), self._default_link_length)

    def budget(self, node: Node) -> float:
        """Return ``b(node)``, the node's total link budget."""
        return self._budgets.get(node, self._default_budget)

    def max_link_length(self) -> float:
        """Return the largest link length appearing in the game."""
        lengths = [self._default_link_length] + list(self._link_lengths.values())
        return max(lengths)

    def positive_preference_targets(self, node: Node) -> Tuple[Node, ...]:
        """Return the targets ``node`` actually cares about (``w > 0``)."""
        return tuple(v for v in self._nodes if v != node and self.weight(node, v) > 0)

    @property
    def is_uniform(self) -> bool:
        """Return ``True`` when all weights, costs, lengths, and budgets coincide.

        This matches the paper's definition of a uniform game (Section 2); the
        common values need not be 1 for this predicate, only identical.
        """
        weight_values = set(self._weights.values()) | {self._default_weight}
        cost_values = set(self._link_costs.values()) | {self._default_link_cost}
        length_values = set(self._link_lengths.values()) | {self._default_link_length}
        budget_values = set(self._budgets.values()) | {self._default_budget}
        return (
            len(weight_values) == 1
            and len(cost_values) == 1
            and len(length_values) == 1
            and len(budget_values) == 1
        )

    @property
    def has_uniform_lengths(self) -> bool:
        """Return ``True`` when every link has the same length.

        Uniform lengths allow the engine to replace Dijkstra with plain BFS.
        """
        lengths = set(self._link_lengths.values()) | {self._default_link_length}
        return len(lengths) == 1

    @property
    def has_uniform_weights(self) -> bool:
        """Return ``True`` when every preference weight equals the default.

        Together with :attr:`has_uniform_lengths` this licences the engine's
        O(n) indexed-snapshot fast path: all parameter rows collapse to shared
        constant rows instead of n² per-pair probes.
        """
        weights = set(self._weights.values()) | {self._default_weight}
        return len(weights) == 1

    # ------------------------------------------------------------------ #
    # Strategies and profiles
    # ------------------------------------------------------------------ #
    def strategy_cost(self, node: Node, strategy: Iterable[Node]) -> float:
        """Return the total purchase cost of ``strategy`` for ``node``."""
        return sum(self.link_cost(node, target) for target in strategy)

    def is_feasible_strategy(self, node: Node, strategy: Iterable[Node]) -> bool:
        """Return ``True`` when ``strategy`` respects the game rules for ``node``."""
        strategy = frozenset(strategy)
        if node in strategy:
            return False
        if not strategy <= self._node_set:
            return False
        return self.strategy_cost(node, strategy) <= self.budget(node) + 1e-9

    def validate_strategy(self, node: Node, strategy: Iterable[Node]) -> Strategy:
        """Return ``strategy`` as a frozenset or raise :class:`InvalidStrategy`."""
        strategy = frozenset(strategy)
        if node in strategy:
            raise InvalidStrategy(f"node {node!r} cannot buy a link to itself")
        unknown = strategy - self._node_set
        if unknown:
            raise InvalidStrategy(
                f"strategy of {node!r} targets unknown node {next(iter(unknown))!r}"
            )
        spent = self.strategy_cost(node, strategy)
        if spent > self.budget(node) + 1e-9:
            raise InvalidStrategy(
                f"strategy of {node!r} costs {spent} which exceeds its budget "
                f"{self.budget(node)}"
            )
        return strategy

    def validate_profile(self, profile: StrategyProfile) -> None:
        """Raise :class:`InvalidProfile` when ``profile`` does not fit this game."""
        if set(profile.nodes()) != set(self._nodes):
            raise InvalidProfile("profile nodes do not match the game's node set")
        for node in self._nodes:
            try:
                self.validate_strategy(node, profile.strategy(node))
            except InvalidStrategy as exc:
                raise InvalidProfile(str(exc)) from exc

    def empty_profile(self) -> StrategyProfile:
        """Return the profile in which nobody buys any link."""
        return StrategyProfile.empty(self._nodes)

    def max_affordable_links(self, node: Node, candidates: Optional[Sequence[Node]] = None) -> int:
        """Return how many of the cheapest candidate links ``node`` can afford."""
        if candidates is None:
            candidates = [v for v in self._nodes if v != node]
        prices = sorted(self.link_cost(node, v) for v in candidates)
        budget = self.budget(node)
        bought = 0
        for price in prices:
            if price <= budget + 1e-9:
                budget -= price
                bought += 1
            else:
                break
        return bought

    def _normalize_candidates(
        self, node: Node, candidates: Optional[Sequence[Node]]
    ) -> List[Node]:
        """Return candidate targets in enumeration order (dedup, ``node`` removed)."""
        if candidates is None:
            candidates = [v for v in self._nodes if v != node]
        else:
            candidates = [v for v in candidates if v != node]
            unknown = set(candidates) - self._node_set
            if unknown:
                raise InvalidStrategy(
                    f"candidate target {next(iter(unknown))!r} is not a node of the game"
                )
        return list(dict.fromkeys(candidates))  # preserve order, drop duplicates

    def combination_plan(
        self,
        node: Node,
        candidates: Optional[Sequence[Node]] = None,
        *,
        maximal_only: bool = True,
        limit: float = DEFAULT_ENUMERATION_LIMIT,
    ) -> Optional[Tuple[List[Node], List[int]]]:
        """Describe :meth:`feasible_strategies` as plain combinations, if possible.

        When every candidate link has the same cost, the feasible strategies
        of ``node`` are exactly ``itertools.combinations(candidates, size)``
        for the returned sizes, in that order.  Returns ``(candidates,
        sizes)`` in that case and ``None`` otherwise (non-uniform link costs).
        :meth:`feasible_strategies` itself enumerates from this plan, and the
        engine's batched scorer uses it to score whole strategy sets without
        materialising them one by one — sharing the plan is what keeps the
        two enumeration orders identical by construction.

        Raises :class:`SearchSpaceTooLarge` exactly like
        :meth:`feasible_strategies` when the estimated count exceeds
        ``limit``.
        """
        candidates = self._normalize_candidates(node, candidates)
        costs = {v: self.link_cost(node, v) for v in candidates}
        return self._combination_plan_from(node, candidates, costs, maximal_only, limit)

    def _combination_plan_from(
        self,
        node: Node,
        candidates: List[Node],
        costs: Dict[Node, float],
        maximal_only: bool,
        limit: float,
    ) -> Optional[Tuple[List[Node], List[int]]]:
        if len(set(costs.values())) > 1:
            return None
        budget = self.budget(node)
        per_link = next(iter(costs.values())) if costs else 0.0
        if per_link <= 0:
            max_links = len(candidates)
        else:
            max_links = min(len(candidates), int(math.floor(budget / per_link + 1e-9)))
        sizes = [max_links] if maximal_only else list(range(max_links + 1))
        estimated = sum(math.comb(len(candidates), size) for size in sizes)
        if estimated > limit:
            raise SearchSpaceTooLarge(
                f"feasible strategies of node {node!r}", estimated, limit
            )
        return candidates, sizes

    def feasible_strategies(
        self,
        node: Node,
        candidates: Optional[Sequence[Node]] = None,
        *,
        maximal_only: bool = True,
        limit: float = DEFAULT_ENUMERATION_LIMIT,
    ) -> Iterator[Strategy]:
        """Yield feasible strategies for ``node``.

        Parameters
        ----------
        candidates:
            Restrict purchased links to these targets (defaults to all other
            nodes).
        maximal_only:
            When ``True`` (the default) only budget-maximal strategies are
            yielded.  Adding an affordable link can never increase a node's
            cost (extra edges only shorten distances), so some best response
            is always budget-maximal; enumerating only those is sound for
            best-response computations and much cheaper.
        limit:
            Guard against combinatorial explosion; an estimate above this
            raises :class:`SearchSpaceTooLarge`.
        """
        candidates = self._normalize_candidates(node, candidates)
        costs = {v: self.link_cost(node, v) for v in candidates}
        plan = self._combination_plan_from(node, candidates, costs, maximal_only, limit)
        if plan is not None:
            plan_candidates, sizes = plan
            for size in sizes:
                for combo in itertools.combinations(plan_candidates, size):
                    yield frozenset(combo)
            return

        # Non-uniform link costs: recursive subset enumeration with budget pruning.
        budget = self.budget(node)
        ordered: List[Node] = list(candidates)
        yielded = 0

        def is_maximal(chosen: Tuple[Node, ...], remaining_budget: float) -> bool:
            chosen_set = set(chosen)
            return all(
                other in chosen_set or costs[other] > remaining_budget + 1e-9
                for other in ordered
            )

        def enumerate_from(
            start: int, chosen: Tuple[Node, ...], remaining: float
        ) -> Iterator[Strategy]:
            nonlocal yielded
            if not maximal_only or is_maximal(chosen, remaining):
                yielded += 1
                if yielded > limit:
                    raise SearchSpaceTooLarge(
                        f"feasible strategies of node {node!r}", yielded, limit
                    )
                yield frozenset(chosen)
            for index in range(start, len(ordered)):
                target = ordered[index]
                price = costs[target]
                if price <= remaining + 1e-9:
                    yield from enumerate_from(index + 1, chosen + (target,), remaining - price)

        yield from enumerate_from(0, (), budget)

    # ------------------------------------------------------------------ #
    # Network formation and costs
    # ------------------------------------------------------------------ #
    def graph(self, profile: StrategyProfile) -> DiGraph:
        """Return the formed network ``G(S)`` with ``length`` edge attributes."""
        graph = DiGraph()
        graph.add_nodes_from(self._nodes)
        for buyer, target in profile.edges():
            graph.add_edge(buyer, target, length=self.link_length(buyer, target))
        return graph

    def distances_from(self, profile: StrategyProfile, node: Node) -> Dict[Node, float]:
        """Return shortest-path distances from ``node`` in ``G(S)``.

        Unreachable nodes are omitted; callers substitute the disconnection
        penalty.  BFS is used when all link lengths coincide, Dijkstra
        otherwise.
        """
        graph = self.graph(profile)
        if self.has_uniform_lengths:
            unit = self._default_link_length
            raw = bfs_distances(graph, node)
            if unit == 1:
                return {k: float(v) for k, v in raw.items()}
            return {k: float(v) * unit for k, v in raw.items()}
        return dijkstra_distances(graph, node)

    def node_cost(self, profile: StrategyProfile, node: Node) -> float:
        """Return the cost of ``node`` under ``profile``.

        This is the quantity each player minimises: the objective-aggregated,
        preference-weighted distance to every other node, with unreachable
        nodes charged the disconnection penalty ``M``.
        """
        distances = self.distances_from(profile, node)
        weighted: Dict[Node, float] = {}
        for target in self._nodes:
            if target == node:
                continue
            weight = self.weight(node, target)
            distance = distances.get(target, self.disconnection_penalty)
            weighted[target] = weight * distance
        return self.objective.aggregate(weighted)

    def all_costs(self, profile: StrategyProfile, *, engine=None) -> Dict[Node, float]:
        """Return the cost of every node under ``profile``.

        Routed through the shared flat-array :class:`~repro.engine.CostEngine`
        (one CSR snapshot, full-graph rows traversed by the selected list or
        numpy backend — batched into giant multi-source sweeps when a report
        planned them — and cached per profile version); ``engine=False``
        forces the reference per-node :meth:`node_cost` path.
        """
        from ..engine import resolve_engine

        engine = resolve_engine(self, engine)
        if engine is None:
            return {node: self.node_cost(profile, node) for node in self._nodes}
        return engine.all_costs(profile)

    def social_cost(self, profile: StrategyProfile, *, engine=None) -> float:
        """Return the total cost over all nodes (the paper's social cost)."""
        return sum(self.all_costs(profile, engine=engine).values())

    def node_utility(self, profile: StrategyProfile, node: Node) -> float:
        """Return the utility of ``node`` (the negative of its cost)."""
        return -self.node_cost(profile, node)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Return a short human-readable description of the game."""
        kind = "uniform" if self.is_uniform else "non-uniform"
        return (
            f"{kind} BBC game: n={self.num_nodes}, objective={self.objective.value}, "
            f"M={self.disconnection_penalty:g}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n={self.num_nodes} objective={self.objective.value}>"


class UniformBBCGame(BBCGame):
    """The (n, k)-uniform BBC game of Section 4.

    All preference weights, link costs, and link lengths are 1; every node
    has a budget of ``k`` links.  Nodes are labelled ``0..n-1``.
    """

    def __init__(
        self,
        n: int,
        k: int,
        *,
        objective: Objective = Objective.SUM,
        disconnection_penalty: Optional[float] = None,
    ) -> None:
        if n < 2:
            raise InvalidGameDefinition("a uniform game needs at least two nodes")
        if k < 1:
            raise InvalidGameDefinition("the per-node budget k must be at least 1")
        if k >= n:
            raise InvalidGameDefinition("k must be smaller than n (no self links)")
        self.k = k
        super().__init__(
            nodes=range(n),
            default_weight=1.0,
            default_link_cost=1.0,
            default_link_length=1.0,
            default_budget=float(k),
            disconnection_penalty=disconnection_penalty,
            objective=objective,
        )

    @property
    def n(self) -> int:
        """Return the number of players (alias for :attr:`num_nodes`)."""
        return self.num_nodes

    def describe(self) -> str:
        """Return a short human-readable description of the game."""
        return (
            f"({self.n}, {self.k})-uniform BBC game, objective={self.objective.value}, "
            f"M={self.disconnection_penalty:g}"
        )

    def minimum_possible_node_cost(self) -> float:
        """Return a lower bound on any node's cost in any profile.

        With out-degree at most ``k`` a node can have at most ``k`` nodes at
        distance 1, ``k^2`` at distance 2, and so on; summing that optimal
        distance profile gives the bound used for the price-of-stability
        argument (Theorem 4).  For the max objective the bound is the minimal
        possible eccentricity ``ceil(log_k (n(k-1)+1)) - 1``-ish; we compute
        it from the same layered profile.
        """
        remaining = self.n - 1
        distance = 1
        total = 0.0
        layer = self.k
        max_distance = 0
        while remaining > 0:
            take = min(layer, remaining)
            total += take * distance
            remaining -= take
            max_distance = distance
            distance += 1
            layer *= self.k
        if self.objective is Objective.MAX:
            return float(max_distance)
        return total

    def minimum_possible_social_cost(self) -> float:
        """Return ``n`` times the per-node lower bound (a social-cost lower bound)."""
        return self.n * self.minimum_possible_node_cost()


def make_weight_table(
    nodes: Sequence[Node], weight_function: Callable[[Node, Node], float]
) -> Dict[Tuple[Node, Node], float]:
    """Materialise a dense weight table from a function (helper for examples)."""
    table: Dict[Tuple[Node, Node], float] = {}
    for source in nodes:
        for target in nodes:
            if source != target:
                table[(source, target)] = weight_function(source, target)
    return table
