"""Exhaustive and guided searches for pure Nash equilibria in small games.

Theorem 2 shows that deciding pure-NE existence is NP-hard, so these routines
do not pretend to scale; they exist to verify the paper's small constructions
(the Figure 1 gadget, reduced 3-SAT instances, small uniform games) by brute
force, and to empirically explore the equilibrium landscape of small games.

The searches are *sweeps*: thousands of profiles that differ locally.  They
enumerate in mixed-radix Gray order (:func:`repro.engine.gray_code_profiles`,
consecutive profiles differ in one node) and, by default, check stability
through :class:`repro.engine.SweepEvaluator`, which memoises per-node best
costs against unchanged environments.  ``engine=False`` forces the
dict-based reference path (a fresh :func:`is_pure_nash` per profile); both
paths visit the same profiles in the same order and return identical
summaries — ``tests/test_sweep.py`` pins that parity.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Mapping, Optional, Sequence

from ..rng import SeedLike, as_rng
from .equilibrium import is_pure_nash
from .errors import SearchSpaceTooLarge
from .game import BBCGame, DEFAULT_ENUMERATION_LIMIT
from .profile import StrategyProfile, Strategy

Node = Hashable

#: Default cap on the number of profiles an exhaustive search may visit.
DEFAULT_PROFILE_LIMIT = 5_000_000


@dataclass(frozen=True)
class SearchSummary:
    """Outcome of an exhaustive pure-Nash search."""

    profiles_examined: int
    equilibria_found: int
    first_equilibrium: Optional[StrategyProfile]
    exhausted: bool

    @property
    def has_equilibrium(self) -> bool:
        """Return ``True`` when at least one pure Nash equilibrium was found."""
        return self.equilibria_found > 0


def candidate_strategy_sets(
    game: BBCGame,
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]] = None,
) -> Dict[Node, List[Strategy]]:
    """Materialise the per-node strategy sets an exhaustive search ranges over."""
    sets: Dict[Node, List[Strategy]] = {}
    for node in game.nodes:
        if candidate_strategies is not None and node in candidate_strategies:
            sets[node] = [game.validate_strategy(node, s) for s in candidate_strategies[node]]
            continue
        targets = None
        if candidate_targets is not None and node in candidate_targets:
            targets = candidate_targets[node]
        sets[node] = list(game.feasible_strategies(node, targets, maximal_only=True))
        if not sets[node]:
            sets[node] = [frozenset()]
    return sets


def enumerate_profiles(
    game: BBCGame,
    *,
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]] = None,
    limit: float = DEFAULT_PROFILE_LIMIT,
) -> Iterator[StrategyProfile]:
    """Yield every profile in the cartesian product of per-node strategy sets.

    Plain lexicographic (``itertools.product``) order; the equilibrium
    searches below use :func:`repro.engine.gray_code_profiles` instead, which
    covers the same product in single-edit order.  The search space size is
    estimated up front and :class:`SearchSpaceTooLarge` is raised when it
    exceeds ``limit``.
    """
    sets = candidate_strategy_sets(game, candidate_strategies, candidate_targets)
    size = 1.0
    for node in game.nodes:
        size *= max(1, len(sets[node]))
    if size > limit:
        raise SearchSpaceTooLarge("profile enumeration", size, limit)
    nodes = list(game.nodes)
    for combination in itertools.product(*(sets[node] for node in nodes)):
        yield StrategyProfile(dict(zip(nodes, combination)))


def _nash_checker(
    game: BBCGame,
    tolerance: float,
    deviation_limit: float,
    engine,
) -> Callable[[StrategyProfile], bool]:
    """Resolve the tri-state ``engine`` argument into an ``is_nash`` callable.

    ``False`` gives the reference path (a from-scratch :func:`is_pure_nash`
    with the dict-based oracle per profile); ``None`` or an explicit
    :class:`~repro.engine.CostEngine` gives a
    :class:`~repro.engine.SweepEvaluator` bound to it.  Both produce
    bit-identical verdicts.
    """
    from ..engine import resolve_engine
    from ..engine.sweep import SweepEvaluator

    resolved = resolve_engine(game, engine)
    if resolved is None:
        def check(profile: StrategyProfile) -> bool:
            return is_pure_nash(
                game, profile, tolerance=tolerance, limit=deviation_limit, engine=False
            )

        return check
    return SweepEvaluator(
        game, tolerance=tolerance, deviation_limit=deviation_limit, engine=resolved
    ).is_nash


def _serialize_profile(profile: StrategyProfile) -> list:
    """``profile`` as JSON-able ``[node, [targets...]]`` pairs (repr-sorted)."""
    return [
        [node, sorted(profile[node], key=repr)] for node in profile
    ]


def _deserialize_profile(pairs) -> StrategyProfile:
    """Rebuild a :class:`StrategyProfile` from :func:`_serialize_profile` output."""
    return StrategyProfile({node: frozenset(targets) for node, targets in pairs})


def exhaustive_equilibrium_search(
    game: BBCGame,
    *,
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]] = None,
    stop_at_first: bool = True,
    profile_limit: float = DEFAULT_PROFILE_LIMIT,
    deviation_limit: float = DEFAULT_ENUMERATION_LIMIT,
    tolerance: float = 1e-9,
    engine=None,
    journal=None,
    checkpoint_every: int = 256,
    processes: Optional[int] = 1,
) -> SearchSummary:
    """Search for pure Nash equilibria by enumerating profiles.

    Profiles range over the supplied candidate sets (or all budget-maximal
    strategies by default) in Gray order, while the Nash check for each
    profile always considers *every* feasible deviation, so any equilibrium
    reported here is a genuine pure Nash equilibrium of the full game.  A
    negative result only certifies that no equilibrium uses the enumerated
    strategy sets.

    ``engine`` follows the tri-state convention of every routed entry point:
    the default sweeps incrementally through a
    :class:`~repro.engine.SweepEvaluator`; ``engine=False`` checks each
    profile from scratch with the reference oracle.  Summaries are identical
    either way.

    ``journal`` (a :class:`~repro.reliability.CheckpointJournal` or a path)
    makes the sweep crash-safe: completed blocks of ``checkpoint_every``
    consecutive Gray-order profiles are recorded atomically, and a re-run
    with the same journal skips their Nash checks entirely (profile
    construction is replayed — the Gray walk is the iteration order — but no
    deviation is re-enumerated).  The resumed summary is identical to an
    uninterrupted run's.  The journal is bound to this search's shape
    (radices, ``checkpoint_every``, ``stop_at_first``); reusing it for a
    different search raises
    :class:`~repro.reliability.CheckpointError`.

    ``processes`` shards the profile space: the not-yet-journalled checkpoint
    blocks are split into contiguous Gray-rank subranges, each evaluated by a
    pool worker over a shared read-only payload (the game spec, the candidate
    sets, and the parent engine's exported static tables — see
    :class:`~repro.experiments.parallel.SharedPayload`), and the per-block
    records are merged in global block order.  Records, the journal, and the
    summary are **bit-identical** to a serial run at any worker count;
    ``None`` means one worker per available CPU
    (:func:`~repro.experiments.parallel.resolve_processes`).  An explicit
    engine *instance* is process-local state and cannot shard — pass
    ``engine=None`` (each worker builds its own) or ``engine=False``.
    """
    from ..engine.sweep import gray_code_profiles
    from ..reliability.faults import fault_point
    from ..reliability.journal import resolve_journal

    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be at least 1 (got {checkpoint_every})"
        )
    journal = resolve_journal(journal)
    sets = candidate_strategy_sets(game, candidate_strategies, candidate_targets)
    if journal is not None:
        journal.bind_meta(
            {
                "kind": "exhaustive-search",
                "checkpoint_every": int(checkpoint_every),
                "stop_at_first": bool(stop_at_first),
                "radices": [len(sets[node]) for node in game.nodes],
            }
        )

    count = 1
    if processes is None or processes != 1:
        from ..experiments.parallel import resolve_processes

        count = resolve_processes(processes)
    if count > 1:
        if engine is not None and engine is not False:
            raise ValueError(
                "an explicit engine instance is process-local; pass "
                "engine=None or engine=False to shard with processes > 1"
            )
        return _sharded_search(
            game,
            sets,
            stop_at_first=stop_at_first,
            profile_limit=profile_limit,
            deviation_limit=deviation_limit,
            tolerance=tolerance,
            use_engine=engine is None,
            journal=journal,
            checkpoint_every=checkpoint_every,
            count=count,
        )

    check = _nash_checker(game, tolerance, deviation_limit, engine)
    examined = 0
    found = 0
    first: Optional[StrategyProfile] = None

    def finish(record) -> None:
        nonlocal examined, found, first
        examined += record["examined"]
        found += record["found"]
        if first is None and record["first"] is not None:
            first = _deserialize_profile(record["first"])

    profiles = gray_code_profiles(
        game,
        candidate_strategies=sets,
        limit=profile_limit,
    )
    block_index = 0
    exhausted = True
    done = False
    while not done:
        block = list(itertools.islice(profiles, checkpoint_every))
        if not block:
            break
        completed = journal.get(f"block:{block_index}") if journal is not None else None
        if completed is not None:
            # The block's verdicts are already journalled: adopt them without
            # re-enumerating a single deviation.
            finish(completed)
            if completed["stopped"]:
                exhausted = False
                done = True
        else:
            record = {"examined": 0, "found": 0, "first": None, "stopped": False}
            base = block_index * checkpoint_every
            for offset, profile in enumerate(block):
                fault_point("search.profile", key=base + offset)
                record["examined"] += 1
                if check(profile):
                    record["found"] += 1
                    if record["first"] is None:
                        record["first"] = _serialize_profile(profile)
                    if stop_at_first:
                        record["stopped"] = True
                        break
            if journal is not None:
                journal.record(f"block:{block_index}", record)
            finish(record)
            if record["stopped"]:
                exhausted = False
                done = True
        block_index += 1
    if journal is not None:
        journal.flush()
    return SearchSummary(
        profiles_examined=examined,
        equilibria_found=found,
        first_equilibrium=first,
        exhausted=exhausted,
    )


#: Per-process context cache of the last payload a shard cell attached: the
#: rebuilt game, candidate sets, parameters, and the warm Nash checker (its
#: evaluator memo carries across the worker's shards).  One entry only — a
#: different payload evicts it, so stale games cannot pin memory across
#: unrelated searches.
_SHARD_CACHE: Dict[tuple, tuple] = {}


def _search_shard_cell(args) -> list:
    """Pool-worker cell: sweep blocks ``[block_start, block_stop)`` of a search.

    ``args`` is ``(payload_ref, block_start, block_stop)``; the payload (see
    :func:`_sharded_search`) carries everything the sweep reads.  Returns
    ``[[block_index, record], ...]`` with exactly the records the serial loop
    produces for those blocks — same profiles in the same Gray order, same
    ``search.profile`` fault keys (global ranks), same stop-at-first
    truncation — so the parent can merge shards in global block order into a
    serial-identical summary.  Also the serial-rung fallback when the pool
    cannot run: everything here is process-local or read-only.
    """
    ref, block_start, block_stop = args
    from ..engine.sweep import gray_code_profiles
    from ..experiments.parallel import attach_payload
    from ..reliability.faults import fault_point

    ctx = _SHARD_CACHE.get(ref)
    if ctx is None:
        from ..engine.snapshot import restore_tables

        obj, arrays = attach_payload(ref)
        game = obj["spec"].build()
        sets = {node: list(strategies) for node, strategies in obj["sets"]}
        params = obj["params"]
        if params["use_engine"]:
            from ..engine.cost_engine import CostEngine

            engine = CostEngine(game, tables=restore_tables(obj["tables"], arrays))
        else:
            engine = False
        check = _nash_checker(
            game, params["tolerance"], params["deviation_limit"], engine
        )
        ctx = (game, sets, params, check)
        _SHARD_CACHE.clear()
        _SHARD_CACHE[ref] = ctx
    game, sets, params, check = ctx
    checkpoint_every = params["checkpoint_every"]
    stop = min(block_stop * checkpoint_every, params["size"])
    profiles = gray_code_profiles(
        game,
        candidate_strategies=sets,
        limit=params["profile_limit"],
        start=block_start * checkpoint_every,
        stop=stop,
    )
    out = []
    for block_index in range(block_start, block_stop):
        base = block_index * checkpoint_every
        record = {"examined": 0, "found": 0, "first": None, "stopped": False}
        for offset in range(min(base + checkpoint_every, stop) - base):
            profile = next(profiles)
            fault_point("search.profile", key=base + offset)
            record["examined"] += 1
            if check(profile):
                record["found"] += 1
                if record["first"] is None:
                    record["first"] = _serialize_profile(profile)
                if params["stop_at_first"]:
                    record["stopped"] = True
                    break
        out.append([block_index, record])
        if record["stopped"]:
            break
    return out


def _sharded_search(
    game: BBCGame,
    sets: Dict[Node, List[Strategy]],
    *,
    stop_at_first: bool,
    profile_limit: float,
    deviation_limit: float,
    tolerance: float,
    use_engine: bool,
    journal,
    checkpoint_every: int,
    count: int,
) -> SearchSummary:
    """Parent side of a sharded exhaustive search (``journal`` pre-bound).

    Splits the not-yet-journalled checkpoint blocks into at most ``count``-ish
    contiguous shards, fans them out over a :func:`parallel_map` pool reading
    one :class:`~repro.experiments.parallel.SharedPayload`, and merges the
    per-block records in global block order — truncating at the first
    ``stopped`` block, exactly like the serial loop, before journalling the
    surviving records.  Fresh blocks land in the journal only here, in the
    parent, so a worker crash never half-writes a checkpoint.
    """
    from ..engine.snapshot import export_tables
    from ..engine.sweep import _resolve_gray_space
    from ..experiments.parallel import GameSpec, SharedPayload, parallel_map

    _, _, _, _, size = _resolve_gray_space(game, sets, None, None, profile_limit)
    total_blocks = -(-size // checkpoint_every)
    journaled: Dict[int, dict] = {}
    cutoff = total_blocks
    if journal is not None:
        for i in range(total_blocks):
            record = journal.get(f"block:{i}")
            if record is None:
                continue
            journaled[i] = record
            if record["stopped"]:
                cutoff = i + 1
                break
    needed = [i for i in range(cutoff) if i not in journaled]
    records: Dict[int, dict] = dict(journaled)
    if needed:
        # Shards: contiguous runs of needed blocks, chopped so ~count shards
        # cover them.  Boundaries depend on `count`; the merged summary does
        # not — records are per-block either way.
        chunk = max(1, -(-len(needed) // count))
        shards: List[tuple] = []
        run_start = prev = needed[0]
        for block in needed[1:] + [None]:
            if block is not None and block == prev + 1 and block - run_start < chunk:
                prev = block
                continue
            shards.append((run_start, prev + 1))
            if block is not None:
                run_start = prev = block
        tables, arrays = None, {}
        if use_engine:
            from ..engine import get_engine

            tables, arrays = export_tables(get_engine(game).indexed)
        payload = SharedPayload.create(
            {
                "spec": GameSpec.from_game(game),
                "sets": [(node, list(sets[node])) for node in game.nodes],
                "tables": tables,
                "params": {
                    "checkpoint_every": checkpoint_every,
                    "stop_at_first": bool(stop_at_first),
                    "profile_limit": profile_limit,
                    "deviation_limit": deviation_limit,
                    "tolerance": tolerance,
                    "use_engine": use_engine,
                    "size": size,
                },
            },
            arrays or None,
        )
        try:
            cells = [(payload.ref, lo, hi) for lo, hi in shards]
            for shard in parallel_map(
                _search_shard_cell, cells, processes=count, on_error="raise"
            ):
                for block_index, record in shard:
                    records[block_index] = record
        finally:
            payload.close()

    examined = 0
    found = 0
    first: Optional[StrategyProfile] = None
    exhausted = True
    for i in range(total_blocks):
        record = records.get(i)
        if record is None:  # beyond the block where a shard stopped early
            break
        examined += record["examined"]
        found += record["found"]
        if first is None and record["first"] is not None:
            first = _deserialize_profile(record["first"])
        if journal is not None and i not in journaled:
            journal.record(f"block:{i}", record)
        if record["stopped"]:
            exhausted = False
            break
    if journal is not None:
        journal.flush()
    return SearchSummary(
        profiles_examined=examined,
        equilibria_found=found,
        first_equilibrium=first,
        exhausted=exhausted,
    )


def find_equilibria(
    game: BBCGame,
    *,
    candidate_strategies: Optional[Mapping[Node, Sequence[Strategy]]] = None,
    candidate_targets: Optional[Mapping[Node, Sequence[Node]]] = None,
    max_results: Optional[int] = None,
    profile_limit: float = DEFAULT_PROFILE_LIMIT,
    deviation_limit: float = DEFAULT_ENUMERATION_LIMIT,
    tolerance: float = 1e-9,
    engine=None,
) -> List[StrategyProfile]:
    """Return (up to ``max_results``) pure Nash equilibria found by enumeration.

    Same sweep (Gray order, incremental checks, tri-state ``engine``) as
    :func:`exhaustive_equilibrium_search`, collecting the equilibria instead
    of summarising them.  ``deviation_limit`` bounds the per-node deviation
    enumeration exactly as there.
    """
    from ..engine.sweep import gray_code_profiles

    check = _nash_checker(game, tolerance, deviation_limit, engine)
    results: List[StrategyProfile] = []
    for profile in gray_code_profiles(
        game,
        candidate_strategies=candidate_strategies,
        candidate_targets=candidate_targets,
        limit=profile_limit,
    ):
        if check(profile):
            results.append(profile)
            if max_results is not None and len(results) >= max_results:
                break
    return results


def random_profile(game: BBCGame, seed: SeedLike = None) -> StrategyProfile:
    """Return a uniformly random budget-maximal profile of ``game``.

    Each node independently buys a maximal affordable set of links chosen by
    randomly permuting the other nodes and buying greedily until the budget
    runs out (for uniform link costs this is a uniformly random k-subset).
    """
    rng = as_rng(seed)
    strategies: Dict[Node, Strategy] = {}
    for node in game.nodes:
        others = [v for v in game.nodes if v != node]
        rng.shuffle(others)
        remaining = game.budget(node)
        chosen: List[Node] = []
        for target in others:
            price = game.link_cost(node, target)
            if price <= remaining + 1e-9:
                chosen.append(target)
                remaining -= price
        strategies[node] = frozenset(chosen)
    return StrategyProfile(strategies)


def sampled_equilibrium_search(
    game: BBCGame,
    *,
    samples: int = 100,
    seed: SeedLike = None,
    deviation_limit: float = DEFAULT_ENUMERATION_LIMIT,
    tolerance: float = 1e-9,
    engine=None,
) -> SearchSummary:
    """Look for equilibria among random budget-maximal profiles.

    A cheap, incomplete probe used by the experiment harness to estimate how
    common equilibria are in a game family.  Random samples rarely share
    environments, so the sweep evaluator's memo helps less here than in the
    exhaustive search — the win is the flat-array engine itself — but the
    tri-state ``engine`` contract and verdict parity are the same.
    """
    rng = as_rng(seed)
    check = _nash_checker(game, tolerance, deviation_limit, engine)
    examined = 0
    found = 0
    first: Optional[StrategyProfile] = None
    for _ in range(samples):
        profile = random_profile(game, seed=rng)
        examined += 1
        if check(profile):
            found += 1
            if first is None:
                first = profile
    return SearchSummary(
        profiles_examined=examined,
        equilibria_found=found,
        first_equilibrium=first,
        exhausted=False,
    )


def estimate_profile_space(game: BBCGame) -> float:
    """Return (an estimate of) the number of budget-maximal profiles of ``game``."""
    total = 1.0
    for node in game.nodes:
        candidates = [v for v in game.nodes if v != node]
        costs = {game.link_cost(node, v) for v in candidates}
        if len(costs) <= 1:
            per_link = next(iter(costs)) if costs else 0.0
            if per_link <= 0:
                count = 1
            else:
                max_links = min(len(candidates), int(game.budget(node) // per_link))
                count = math.comb(len(candidates), max_links)
        else:
            count = sum(1 for _ in game.feasible_strategies(node, maximal_only=True))
        total *= max(1, count)
    return total
