"""Exceptions raised by the BBC game core."""

from __future__ import annotations


class BBCError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class InvalidGameDefinition(BBCError):
    """Raised when a game specification is internally inconsistent."""


class InvalidStrategy(BBCError):
    """Raised when a strategy violates the game rules (budget, self links...)."""


class InvalidProfile(BBCError):
    """Raised when a strategy profile does not match the game's node set."""


class SearchSpaceTooLarge(BBCError):
    """Raised when an exhaustive enumeration would exceed its configured limit."""

    def __init__(self, description: str, size: float, limit: float) -> None:
        super().__init__(
            f"{description}: search space of size ~{size:g} exceeds the limit {limit:g}; "
            "restrict the candidate sets or raise the limit explicitly"
        )
        self.size = size
        self.limit = limit


class BestResponseUnavailable(BBCError):
    """Raised when no feasible strategy exists for a node (should not happen
    in well-formed games, since the empty strategy is always feasible)."""
