"""Social-cost metrics: fairness, price of anarchy, price of stability.

Theorem 4 of the paper is stated in terms of three quantities:

* the *social cost* of a profile — the sum of all node costs;
* the *price of anarchy* (PoA) — worst equilibrium social cost divided by the
  optimum social cost;
* the *price of stability* (PoS) — best equilibrium social cost divided by
  the optimum social cost.

The exact optimum is NP-hard in general, so the uniform-game helpers use the
paper's analytic lower bound (every out-degree-k node has cost at least the
layered ``k, k², ...`` distance profile) as the denominator, which only makes
the reported ratios conservative (they under-estimate PoA/PoS).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence

from .game import BBCGame, UniformBBCGame
from .profile import StrategyProfile

Node = Hashable


@dataclass(frozen=True)
class FairnessReport:
    """How evenly costs are spread across nodes (Lemma 1 studies this)."""

    min_cost: float
    max_cost: float
    mean_cost: float
    ratio: float
    additive_gap: float

    @staticmethod
    def from_costs(costs: Mapping[Node, float]) -> "FairnessReport":
        """Build a report from a ``{node: cost}`` mapping."""
        values = list(costs.values())
        if not values:
            return FairnessReport(0.0, 0.0, 0.0, 1.0, 0.0)
        low = min(values)
        high = max(values)
        mean = sum(values) / len(values)
        ratio = high / low if low > 0 else math.inf
        return FairnessReport(
            min_cost=low,
            max_cost=high,
            mean_cost=mean,
            ratio=ratio,
            additive_gap=high - low,
        )


def social_cost(game: BBCGame, profile: StrategyProfile) -> float:
    """Return the total cost of all players under ``profile``."""
    return game.social_cost(profile)


def fairness_report(game: BBCGame, profile: StrategyProfile) -> FairnessReport:
    """Return the fairness statistics of ``profile``."""
    return FairnessReport.from_costs(game.all_costs(profile))


def lemma1_additive_bound(game: UniformBBCGame) -> float:
    """Return the additive fairness bound ``n + n * floor(log_k n)`` of Lemma 1."""
    n, k = game.n, game.k
    return n + n * math.floor(math.log(n, k)) if k > 1 else n + n * (n - 1)


def lemma1_multiplicative_bound(game: UniformBBCGame) -> float:
    """Return the asymptotic multiplicative fairness bound ``2 + 1/k`` of Lemma 1.

    The paper's bound is ``2 + 1/k + o(1)``; callers comparing against it on
    finite instances should allow the ``o(1)`` slack.
    """
    return 2.0 + 1.0 / game.k


def uniform_social_optimum_lower_bound(game: UniformBBCGame) -> float:
    """Return the analytic lower bound on the social optimum of a uniform game."""
    return game.minimum_possible_social_cost()


def price_of_anarchy(
    game: BBCGame,
    equilibria: Iterable[StrategyProfile],
    optimum: Optional[float] = None,
) -> float:
    """Return the PoA estimate over the supplied equilibria.

    ``optimum`` defaults to the analytic lower bound for uniform games (and
    must be provided for non-uniform games).
    """
    costs = [game.social_cost(profile) for profile in equilibria]
    if not costs:
        raise ValueError("price_of_anarchy needs at least one equilibrium")
    denominator = _resolve_optimum(game, optimum)
    return max(costs) / denominator


def price_of_stability(
    game: BBCGame,
    equilibria: Iterable[StrategyProfile],
    optimum: Optional[float] = None,
) -> float:
    """Return the PoS estimate over the supplied equilibria."""
    costs = [game.social_cost(profile) for profile in equilibria]
    if not costs:
        raise ValueError("price_of_stability needs at least one equilibrium")
    denominator = _resolve_optimum(game, optimum)
    return min(costs) / denominator


def _resolve_optimum(game: BBCGame, optimum: Optional[float]) -> float:
    if optimum is not None:
        if optimum <= 0:
            raise ValueError("the social optimum must be positive")
        return optimum
    if isinstance(game, UniformBBCGame):
        return uniform_social_optimum_lower_bound(game)
    raise ValueError("an explicit social optimum is required for non-uniform games")


# --------------------------------------------------------------------------- #
# Theoretical bound helpers (used by the benchmark tables)
# --------------------------------------------------------------------------- #
def theorem4_poa_lower_bound(n: int, k: int) -> float:
    """Return the Ω(sqrt(n/k) / log_k n) PoA lower bound expression (no constant)."""
    if k < 2:
        raise ValueError("the bound is stated for k >= 2")
    return math.sqrt(n / k) / math.log(n, k)


def theorem4_poa_upper_bound(n: int, k: int) -> float:
    """Return the O(sqrt(n) * log_k n) PoA upper bound expression (no constant).

    Theorem 4 bounds the worst equilibrium's per-node cost by
    ``O(sqrt(n) log_k n)`` (via the Lemma 7 diameter bound) against a
    ``Ω(n log_k n)`` optimum per node, i.e. a ratio of ``O(sqrt(n)/log_k n)``
    — but the statement in the paper reports ``O(sqrt(n)·?)``; we expose the
    ratio form actually derived in the proof: ``sqrt(n) / log_k n``.
    """
    if k < 2:
        raise ValueError("the bound is stated for k >= 2")
    return math.sqrt(n) / math.log(n, k)


def theorem8_max_poa_lower_bound(n: int, k: int) -> float:
    """Return the Ω(n / (k log_k n)) BBC-max PoA lower bound expression."""
    if k < 2:
        raise ValueError("the bound is stated for k >= 2")
    return n / (k * math.log(n, k))


def willow_total_cost_upper_bound(n: int, k: int) -> float:
    """Return the O(n² log_k n) social-cost scale of tail-free willow forests."""
    if k < 2:
        raise ValueError("the bound is stated for k >= 2")
    return n * n * math.log(n, k)


def willow_total_cost_lower_bound(n: int, k: int) -> float:
    """Return the Ω(n² sqrt(n/k)) social-cost scale of maximal-tail willow forests."""
    return n * n * math.sqrt(n / k)


@dataclass(frozen=True)
class EfficiencyReport:
    """Summary of a family of equilibria against a social-cost baseline."""

    optimum_bound: float
    best_equilibrium_cost: float
    worst_equilibrium_cost: float
    price_of_stability: float
    price_of_anarchy: float

    @staticmethod
    def from_equilibria(
        game: BBCGame,
        equilibria: Sequence[StrategyProfile],
        optimum: Optional[float] = None,
    ) -> "EfficiencyReport":
        """Build a report from explicit equilibrium profiles."""
        if not equilibria:
            raise ValueError("need at least one equilibrium profile")
        denominator = _resolve_optimum(game, optimum)
        costs = [game.social_cost(profile) for profile in equilibria]
        return EfficiencyReport(
            optimum_bound=denominator,
            best_equilibrium_cost=min(costs),
            worst_equilibrium_cost=max(costs),
            price_of_stability=min(costs) / denominator,
            price_of_anarchy=max(costs) / denominator,
        )

    def as_row(self) -> Dict[str, float]:
        """Return the report as a flat dict (for table rendering)."""
        return {
            "optimum_bound": self.optimum_bound,
            "best_equilibrium_cost": self.best_equilibrium_cost,
            "worst_equilibrium_cost": self.worst_equilibrium_cost,
            "price_of_stability": self.price_of_stability,
            "price_of_anarchy": self.price_of_anarchy,
        }
