"""Cost objectives for BBC games.

The paper studies two per-node objectives:

* **sum** (Sections 2-4): the preference-weighted *sum* of shortest-path
  distances to all other nodes;
* **max** (Section 5, "BBC-max games"): the preference-weighted *maximum*
  distance.

Both share the same distance semantics, including the disconnection penalty
``M`` for unreachable targets, so the rest of the engine is parameterised by
an :class:`Objective` value rather than duplicated.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Hashable, Mapping

Node = Hashable


class Objective(enum.Enum):
    """Which aggregate of weighted distances a node minimises."""

    SUM = "sum"
    MAX = "max"

    def aggregate(self, weighted_distances: Mapping[Node, float]) -> float:
        """Aggregate a ``{target: weight * distance}`` mapping into a cost."""
        if self is Objective.SUM:
            return float(sum(weighted_distances.values()))
        if not weighted_distances:
            return 0.0
        return float(max(weighted_distances.values()))

    @property
    def description(self) -> str:
        """Human-readable description used in reports."""
        if self is Objective.SUM:
            return "preference-weighted sum of distances"
        return "preference-weighted maximum distance"


def aggregate_costs(
    objective: Objective,
    weights: Callable[[Node], float],
    distances: Mapping[Node, float],
    penalty: float,
    all_targets: Mapping[Node, float] | None = None,
) -> float:
    """Aggregate raw distances into a node cost.

    ``distances`` maps *reachable* targets to their distance.  Targets that
    appear in ``all_targets`` (a ``{target: weight}`` mapping) but not in
    ``distances`` contribute ``weight * penalty``.  When ``all_targets`` is
    ``None`` only the reachable targets are aggregated (used by callers that
    pre-fill missing distances themselves).
    """
    weighted: Dict[Node, float] = {}
    if all_targets is None:
        for target, distance in distances.items():
            weighted[target] = weights(target) * distance
    else:
        for target, weight in all_targets.items():
            distance = distances.get(target, penalty)
            weighted[target] = weight * distance
    return objective.aggregate(weighted)
