"""Exact and heuristic best responses.

The engine exploits the following exact decomposition.  Fix a node ``u`` and
the strategies of everyone else.  Any shortest path from ``u`` starts with one
of ``u``'s purchased links ``(u, a)`` and then never revisits ``u`` (revisiting
could not shorten it), so

    d(u, v)  =  min over purchased links (u, a) of  [ l(u, a) + d_{G-u}(a, v) ]

where ``d_{G-u}`` is the distance in the network formed by the *other* nodes'
links with ``u`` deleted.  The matrix ``d_{G-u}(a, v)`` does not depend on
``u``'s own strategy, so it is computed at most once per best response (one
BFS or Dijkstra per candidate target on the reference path; the engine serves
the same rows from its version-stamped cache, repairs them in place after a
single-node change, or fills them in giant batched traversals when a report
planned the working set) and every candidate strategy is then scored in
``O(|strategy| * |targets|)`` time.  This turns exact best responses over all
``C(n-1, k)`` strategies from thousands of graph traversals into one pass of
cheap arithmetic.

Two implementations share that decomposition:

* :class:`DeviationOracle` — the dict-based reference.  It rebuilds a
  label-keyed environment :class:`~repro.graphs.DiGraph` per probe and is kept
  for clarity and as the parity baseline;
* the flat-array :class:`~repro.engine.CostEngine` — the default.  It masks
  the probed node out of a shared int-indexed CSR snapshot of the profile and
  caches the ``d_{G-u}(a, ·)`` rows against a profile version stamp, so walks
  and equilibrium checks reuse everything a local strategy change did not
  invalidate.

``best_response``, ``greedy_response``, and ``single_swap_response`` route
through the engine by default; pass ``engine=False`` to force the reference
oracle, or an explicit :class:`~repro.engine.CostEngine` to control cache
sharing.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..graphs import DiGraph, bfs_distances, dijkstra_distances
from .game import BBCGame, DEFAULT_ENUMERATION_LIMIT
from .profile import StrategyProfile, Strategy

Node = Hashable


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of one best-response computation for a single node."""

    node: Node
    current_strategy: Strategy
    current_cost: float
    best_strategy: Strategy
    best_cost: float
    evaluated: int
    improved: bool

    @property
    def regret(self) -> float:
        """Return how much the node could gain by deviating (0 when stable)."""
        return max(0.0, self.current_cost - self.best_cost)

    def apply(self, profile: StrategyProfile) -> StrategyProfile:
        """Return ``profile`` with this node's best response substituted in."""
        return profile.with_strategy(self.node, self.best_strategy)


class DeviationOracle:
    """Scores candidate strategies of one node against a fixed environment.

    Parameters
    ----------
    game, profile, node:
        The game, the current profile (only the *other* nodes' strategies are
        read), and the deviating node.
    candidates:
        Restrict the targets the node may link to.  Defaults to every other
        node.
    """

    def __init__(
        self,
        game: BBCGame,
        profile: StrategyProfile,
        node: Node,
        candidates: Optional[Sequence[Node]] = None,
    ) -> None:
        self.game = game
        self.node = node
        self.candidates: Tuple[Node, ...] = _normalized_candidates(game, node, candidates)
        self.penalty = game.disconnection_penalty
        self.objective = game.objective

        # Targets the node actually cares about (zero-weight targets cannot
        # change the cost under either objective).
        self.targets: Tuple[Node, ...] = tuple(
            v for v in game.nodes if v != node and game.weight(node, v) > 0
        )
        self.target_weights: Dict[Node, float] = {
            v: game.weight(node, v) for v in self.targets
        }

        # Environment graph: everyone else's links, with `node` deleted.
        environment = DiGraph()
        for other in game.nodes:
            if other != node:
                environment.add_node(other)
        for buyer, target in profile.edges():
            if buyer == node or target == node:
                continue
            environment.add_edge(buyer, target, length=game.link_length(buyer, target))
        self._environment = environment

        # Distance matrix d_{G-u}(a, v) for every candidate first hop a.
        uniform = game.has_uniform_lengths
        self._env_distances: Dict[Node, Dict[Node, float]] = {}
        for first_hop in self.candidates:
            if uniform:
                raw = bfs_distances(environment, first_hop)
                scale = game.max_link_length()
                self._env_distances[first_hop] = {
                    v: float(d) * scale for v, d in raw.items()
                }
            else:
                self._env_distances[first_hop] = dijkstra_distances(environment, first_hop)

        # Pre-compute l(u, a) for every candidate.
        self._first_hop_length: Dict[Node, float] = {
            a: game.link_length(node, a) for a in self.candidates
        }

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def distances_for(self, strategy: Iterable[Node]) -> Dict[Node, float]:
        """Return ``{target: distance}`` for the node playing ``strategy``.

        Only targets with positive preference weight are returned; unreachable
        targets map to the disconnection penalty.
        """
        strategy = tuple(strategy)
        distances: Dict[Node, float] = {}
        for target in self.targets:
            best = math.inf
            for first_hop in strategy:
                hop_length = self._first_hop_length.get(first_hop)
                if hop_length is None:
                    hop_length = self.game.link_length(self.node, first_hop)
                env = self._env_distances.get(first_hop)
                if env is None:
                    env = self._compute_env_distances(first_hop)
                through = env.get(target)
                if through is not None and hop_length + through < best:
                    best = hop_length + through
            distances[target] = best if best < math.inf else self.penalty
        return distances

    def cost_of(self, strategy: Iterable[Node]) -> float:
        """Return the node's cost when it plays ``strategy``."""
        distances = self.distances_for(strategy)
        weighted = {
            target: self.target_weights[target] * distance
            for target, distance in distances.items()
        }
        return self.objective.aggregate(weighted)

    def _compute_env_distances(self, first_hop: Node) -> Dict[Node, float]:
        """Compute (and cache) environment distances for an out-of-set candidate."""
        if self.game.has_uniform_lengths:
            raw = bfs_distances(self._environment, first_hop)
            scale = self.game.max_link_length()
            result = {v: float(d) * scale for v, d in raw.items()}
        else:
            result = dijkstra_distances(self._environment, first_hop)
        self._env_distances[first_hop] = result
        return result


def _normalized_candidates(
    game: BBCGame, node: Node, candidates: Optional[Sequence[Node]]
) -> Tuple[Node, ...]:
    """Return the candidate targets in oracle order (dedup, ``node`` removed)."""
    if candidates is None:
        candidates = [v for v in game.nodes if v != node]
    else:
        candidates = [v for v in candidates if v != node]
    return tuple(dict.fromkeys(candidates))


def _resolve_scorer(
    game: BBCGame,
    profile: StrategyProfile,
    node: Node,
    candidates: Optional[Sequence[Node]],
    engine,
):
    """Return ``(score_callable, engine_scorer_or_None)`` for ``node``.

    ``engine=None`` uses the shared per-game :class:`~repro.engine.CostEngine`,
    ``engine=False`` forces the reference :class:`DeviationOracle` (second
    element ``None``), and an explicit engine instance is used as-is (synced
    to ``profile``).
    """
    from ..engine import resolve_engine

    engine = resolve_engine(game, engine)
    if engine is None:
        return DeviationOracle(game, profile, node, candidates).cost_of, None
    engine.sync(profile)
    scorer = engine.scorer(node)
    if engine.backend == "numpy":
        # Every row this probe can touch — the candidate first hops plus the
        # current strategy's — in one batched traversal up front, instead of
        # trickling out of the scorer one (slow single-source) kernel call
        # at a time.  Unknown labels are skipped; scoring surfaces them with
        # the same errors as before.  (When a report staged a giant-batch
        # plan covering this node — see CostEngine.plan_report_prefetch —
        # the prefetch call runs the node's whole planned chunk and the
        # per-node batch here becomes a mop-up of at most the stragglers;
        # the python backend reaches the same plan through env_row.)
        hops = candidates if candidates is not None else game.nodes
        if scorer.identity_labels:
            wanted = [a for a in hops if a != node]
            wanted.extend(a for a in profile.strategy(node) if a != node)
        else:
            index = scorer.index
            wanted = [index[a] for a in hops if a != node and a in index]
            wanted.extend(index[a] for a in profile.strategy(node) if a != node)
        engine.prefetch_env_rows(scorer.u, wanted)
    # With dense int labels `score` would just forward to `score_ints`; bind
    # the inner method directly and skip a call layer per candidate strategy.
    return (scorer.score_ints if scorer.identity_labels else scorer.score), scorer


def _make_scorer(
    game: BBCGame,
    profile: StrategyProfile,
    node: Node,
    candidates: Optional[Sequence[Node]],
    engine,
):
    """Return a ``score(strategy_labels) -> float`` callable for ``node``."""
    return _resolve_scorer(game, profile, node, candidates, engine)[0]


def chained_best_from_vector(costs, best_cost: float):
    """Replay the chained ``cost < best - 1e-9`` update rule over a cost vector.

    ``costs`` is a numpy vector in enumeration order; returns ``(best_cost,
    index_of_last_update)`` (index ``-1`` when nothing improved).  The
    comparisons are exactly the reference loop's, just driven by vectorised
    scans between updates.  Shared with the sweep layer so the bit-identity
    contract has a single implementation.
    """
    best_index = -1
    threshold = best_cost - 1e-9
    position = 0
    total = len(costs)
    while position < total:
        mask = costs[position:] < threshold
        step = int(mask.argmax())
        if not mask[step]:
            break
        position += step
        best_cost = float(costs[position])
        best_index = position
        threshold = best_cost - 1e-9
        position += 1
    return best_cost, best_index


def batched_combination_costs(game, scorer, node, candidates, limit):
    """Batch-score the whole enumeration when possible.

    Returns ``(plan_candidates, size, costs)`` — the candidate order, the
    single combination size, and a numpy cost vector in
    ``itertools.combinations`` order — or ``None`` when the enumeration
    cannot be batch-scored.  Batch scoring needs an exact-sum fast-path
    scorer and an enumeration that :meth:`BBCGame.combination_plan` describes
    as a single combination size of 1 or 2 (the hot shapes); anything else
    falls back to the per-strategy loop.  Shared with the sweep layer.
    """
    if scorer is None or not scorer.fast_batch:
        return None
    plan = game.combination_plan(node, candidates, maximal_only=True, limit=limit)
    if plan is None:
        return None
    plan_candidates, sizes = plan
    if len(sizes) != 1 or sizes[0] not in (1, 2):
        return None
    size = sizes[0]
    ints = (
        plan_candidates
        if scorer.identity_labels
        else [scorer.index[target] for target in plan_candidates]
    )
    return plan_candidates, size, scorer.score_combinations(ints, size)


def best_response(
    game: BBCGame,
    profile: StrategyProfile,
    node: Node,
    *,
    candidates: Optional[Sequence[Node]] = None,
    limit: float = DEFAULT_ENUMERATION_LIMIT,
    prefer_current: bool = True,
    engine=None,
) -> BestResponseResult:
    """Compute an exact best response for ``node`` against ``profile``.

    All budget-maximal strategies over ``candidates`` are enumerated and
    scored against the node's environment distances (flat-array engine by
    default, reference oracle with ``engine=False``).  Ties are broken in
    favour of the current strategy (so a stable node reports
    ``improved=False``) and otherwise by enumeration order, which is
    deterministic.
    """
    score, scorer = _resolve_scorer(game, profile, node, candidates, engine)
    current_strategy = profile.strategy(node)
    current_cost = score(current_strategy)

    best_strategy = current_strategy
    best_cost = current_cost if prefer_current else math.inf
    evaluated = 0
    batch = batched_combination_costs(game, scorer, node, candidates, limit)
    if batch is not None:
        plan_candidates, size, costs = batch
        evaluated = len(costs)
        best_cost, best_index = chained_best_from_vector(costs, best_cost)
        if best_index >= 0:
            best_strategy = frozenset(
                next(
                    itertools.islice(
                        itertools.combinations(plan_candidates, size),
                        best_index,
                        None,
                    )
                )
            )
    else:
        for strategy in game.feasible_strategies(
            node, candidates, maximal_only=True, limit=limit
        ):
            evaluated += 1
            cost = score(strategy)
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_strategy = strategy
    if not prefer_current and best_cost == math.inf:  # no feasible strategy enumerated
        best_strategy = current_strategy
        best_cost = current_cost
    improved = best_cost < current_cost - 1e-9
    return BestResponseResult(
        node=node,
        current_strategy=current_strategy,
        current_cost=current_cost,
        best_strategy=best_strategy,
        best_cost=best_cost,
        evaluated=evaluated,
        improved=improved,
    )


def best_response_cost(
    game: BBCGame,
    profile: StrategyProfile,
    node: Node,
    *,
    candidates: Optional[Sequence[Node]] = None,
    limit: float = DEFAULT_ENUMERATION_LIMIT,
    engine=None,
) -> float:
    """Return only the optimal achievable cost for ``node`` (convenience)."""
    return best_response(
        game, profile, node, candidates=candidates, limit=limit, engine=engine
    ).best_cost


def greedy_response(
    game: BBCGame,
    profile: StrategyProfile,
    node: Node,
    *,
    candidates: Optional[Sequence[Node]] = None,
    engine=None,
) -> BestResponseResult:
    """Compute a greedy (not necessarily optimal) response for ``node``.

    Links are added one at a time, each minimising the node's cost given the
    links already chosen, until the budget is exhausted.  This is the
    practical fallback for games where exact enumeration is too expensive
    (``C(n-1, k)`` grows quickly); it coincides with the exact best response
    when ``k = 1``.
    """
    score = _make_scorer(game, profile, node, candidates, engine)
    current_strategy = profile.strategy(node)
    current_cost = score(current_strategy)

    available = _normalized_candidates(game, node, candidates)
    chosen: List[Node] = []
    budget = game.budget(node)
    spent = 0.0
    evaluated = 0
    # The cost of `chosen` carries over between rounds (it equals the winning
    # candidate's cost), and `spent` is accumulated incrementally; neither
    # depends on the candidate target, so neither is recomputed per target.
    best_cost = score(chosen)
    while True:
        best_addition: Optional[Node] = None
        for target in available:
            if target in chosen:
                continue
            price = game.link_cost(node, target)
            if spent + price > budget + 1e-9:
                continue
            evaluated += 1
            cost = score(chosen + [target])
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_addition = target
        if best_addition is None:
            break
        chosen.append(best_addition)
        spent += game.link_cost(node, best_addition)

    greedy_strategy = frozenset(chosen)
    greedy_cost = best_cost
    if greedy_cost < current_cost - 1e-9:
        return BestResponseResult(
            node=node,
            current_strategy=current_strategy,
            current_cost=current_cost,
            best_strategy=greedy_strategy,
            best_cost=greedy_cost,
            evaluated=evaluated,
            improved=True,
        )
    return BestResponseResult(
        node=node,
        current_strategy=current_strategy,
        current_cost=current_cost,
        best_strategy=current_strategy,
        best_cost=current_cost,
        evaluated=evaluated,
        improved=False,
    )


def single_swap_response(
    game: BBCGame,
    profile: StrategyProfile,
    node: Node,
    *,
    candidates: Optional[Sequence[Node]] = None,
    engine=None,
) -> BestResponseResult:
    """Best response restricted to moving at most one existing link.

    Useful as a cheap stability *necessary condition* on large graphs: a
    profile that admits an improving single-link move is certainly not a Nash
    equilibrium (the converse does not hold).
    """
    score = _make_scorer(game, profile, node, candidates, engine)
    current_strategy = profile.strategy(node)
    current_cost = score(current_strategy)
    budget = game.budget(node)

    best_strategy = current_strategy
    best_cost = current_cost
    evaluated = 0
    available = _normalized_candidates(game, node, candidates)
    for removed in list(current_strategy) + [None]:
        base = set(current_strategy)
        if removed is not None:
            base.discard(removed)
        for target in available:
            if target in base:
                continue
            candidate = frozenset(base | {target})
            if game.strategy_cost(node, candidate) > budget + 1e-9:
                continue
            evaluated += 1
            cost = score(candidate)
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_strategy = candidate
    improved = best_cost < current_cost - 1e-9
    return BestResponseResult(
        node=node,
        current_strategy=current_strategy,
        current_cost=current_cost,
        best_strategy=best_strategy,
        best_cost=best_cost,
        evaluated=evaluated,
        improved=improved,
    )


def count_feasible_strategies(game: BBCGame, node: Node) -> int:
    """Return how many budget-maximal strategies ``node`` has (diagnostics)."""
    candidates = [v for v in game.nodes if v != node]
    costs = {game.link_cost(node, v) for v in candidates}
    if len(costs) <= 1:
        per_link = next(iter(costs)) if costs else 0.0
        if per_link <= 0:
            return 1
        max_links = min(len(candidates), int(game.budget(node) // per_link))
        return math.comb(len(candidates), max_links)
    return sum(1 for _ in game.feasible_strategies(node, maximal_only=True))
