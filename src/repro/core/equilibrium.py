"""Pure Nash equilibrium verification.

A profile is *stable* (a pure Nash equilibrium) when no single node can lower
its cost by unilaterally re-buying its links.  The verifier computes an exact
best response for every node and reports the per-node regret, so callers get
both a boolean verdict and a quantitative picture of how far a profile is
from stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from .best_response import BestResponseResult, best_response, single_swap_response
from .game import BBCGame, DEFAULT_ENUMERATION_LIMIT
from .profile import StrategyProfile

Node = Hashable


def _report_engine(game, profile, candidates, engine):
    """Resolve ``engine`` and stage a giant-batch plan for a full report.

    Reports probe *every* node against the same profile, so the whole row
    working set is known up front; handing it to
    :meth:`~repro.engine.cost_engine.CostEngine.plan_report_prefetch` lets
    the engine fill it chunk by chunk with giant multi-source, per-row-masked
    traversals instead of one small batch per node.  Returns the resolved
    engine to thread into the per-node probes (or ``engine`` unchanged when
    the reference path was requested or the engine subsystem resolves to
    none).  Planning never changes a computed value, only the batching.
    """
    from ..engine import resolve_engine

    resolved = resolve_engine(game, engine)
    if resolved is None:
        return engine
    resolved.plan_report_prefetch(profile, candidates)
    return resolved


@dataclass(frozen=True)
class EquilibriumReport:
    """Result of checking every node of a profile for profitable deviations."""

    is_equilibrium: bool
    responses: Mapping[Node, BestResponseResult]
    tolerance: float

    @property
    def max_regret(self) -> float:
        """Return the largest improvement any single node could achieve."""
        if not self.responses:
            return 0.0
        return max(result.regret for result in self.responses.values())

    @property
    def unstable_nodes(self) -> Tuple[Node, ...]:
        """Return the nodes that have a profitable deviation."""
        return tuple(
            node for node, result in self.responses.items() if result.regret > self.tolerance
        )

    def describe(self) -> str:
        """Return a one-line-per-node summary used by benchmarks and examples."""
        lines = []
        verdict = "STABLE (pure Nash equilibrium)" if self.is_equilibrium else "NOT stable"
        lines.append(verdict)
        for node, result in sorted(self.responses.items(), key=lambda kv: repr(kv[0])):
            marker = "ok " if result.regret <= self.tolerance else "DEV"
            lines.append(
                f"  [{marker}] {node}: cost={result.current_cost:g} "
                f"best={result.best_cost:g} regret={result.regret:g}"
            )
        return "\n".join(lines)


def equilibrium_report(
    game: BBCGame,
    profile: StrategyProfile,
    *,
    candidates: Optional[Mapping[Node, Sequence[Node]]] = None,
    tolerance: float = 1e-9,
    limit: float = DEFAULT_ENUMERATION_LIMIT,
    engine=None,
) -> EquilibriumReport:
    """Check every node of ``profile`` for profitable deviations.

    ``candidates`` optionally restricts, per node, the targets considered in
    the deviation search; by default every other node is considered, which
    makes a positive verdict an exact pure-Nash certificate.

    All nodes are probed against the same profile, so the default flat-array
    engine computes each environment-distance row at most once for the whole
    report — and, because the whole working set is known up front, fills it
    with giant chunked multi-source traversals (see
    :meth:`~repro.engine.cost_engine.CostEngine.plan_report_prefetch`)
    instead of one small batch per node; ``engine=False`` forces the
    reference dict-based oracle.
    """
    game.validate_profile(profile)
    engine = _report_engine(game, profile, candidates, engine)
    responses: Dict[Node, BestResponseResult] = {}
    stable = True
    for node in game.nodes:
        node_candidates = None if candidates is None else candidates.get(node)
        result = best_response(
            game, profile, node, candidates=node_candidates, limit=limit, engine=engine
        )
        responses[node] = result
        if result.regret > tolerance:
            stable = False
    return EquilibriumReport(is_equilibrium=stable, responses=responses, tolerance=tolerance)


def is_pure_nash(
    game: BBCGame,
    profile: StrategyProfile,
    *,
    tolerance: float = 1e-9,
    limit: float = DEFAULT_ENUMERATION_LIMIT,
    engine=None,
) -> bool:
    """Return ``True`` when ``profile`` is a pure Nash equilibrium of ``game``.

    Short-circuits on the first node with a profitable deviation.
    """
    game.validate_profile(profile)
    for node in game.nodes:
        result = best_response(game, profile, node, limit=limit, engine=engine)
        if result.regret > tolerance:
            return False
    return True


def first_unstable_node(
    game: BBCGame,
    profile: StrategyProfile,
    *,
    tolerance: float = 1e-9,
    limit: float = DEFAULT_ENUMERATION_LIMIT,
    engine=None,
) -> Optional[BestResponseResult]:
    """Return the best response of the first node that wants to deviate, if any."""
    game.validate_profile(profile)
    for node in game.nodes:
        result = best_response(game, profile, node, limit=limit, engine=engine)
        if result.regret > tolerance:
            return result
    return None


def swap_stability_report(
    game: BBCGame,
    profile: StrategyProfile,
    *,
    tolerance: float = 1e-9,
    engine=None,
) -> EquilibriumReport:
    """Cheap necessary condition for stability: no improving single-link move.

    Exact best responses enumerate ``C(n-1, k)`` strategies per node, which is
    infeasible for very large uniform games.  Single-link swaps are a strict
    subset of deviations, so a profile flagged unstable here is certainly not
    a Nash equilibrium, while a "stable" verdict is only evidence.

    Like :func:`equilibrium_report` (and unlike the short-circuiting
    :func:`is_pure_nash` / :func:`first_unstable_node`, where staging rows
    for nodes that may never be probed would be wasted work), the full
    per-node sweep stages a giant-batch row plan up front.
    """
    game.validate_profile(profile)
    engine = _report_engine(game, profile, None, engine)
    responses: Dict[Node, BestResponseResult] = {}
    stable = True
    for node in game.nodes:
        result = single_swap_response(game, profile, node, engine=engine)
        responses[node] = result
        if result.regret > tolerance:
            stable = False
    return EquilibriumReport(is_equilibrium=stable, responses=responses, tolerance=tolerance)
