"""Fractional BBC games (Section 3.2 of the paper).

In a fractional game a node may buy *fractions* of links: its strategy is a
vector ``a_u(v) >= 0`` with ``sum_v a_u(v) * c(u, v) <= b(u)``.  The cost of
reaching a destination ``v`` is the cost of a minimum-cost **unit flow** from
``u`` to ``v`` in the network whose edge capacities are the purchased
fractions (edge costs are the link lengths), plus an always-available edge of
cost ``M`` that absorbs whatever fraction of the unit cannot be routed — the
fractional analogue of the disconnection penalty.

Theorem 3 proves a pure Nash equilibrium always exists because each player's
strategy space is a convex polytope and its cost is convex in its own
strategy.  The reproduction exercises this computationally:

* node costs are evaluated as min-cost unit flows; by default the shared
  :class:`~repro.engine.fractional_engine.FractionalEngine` evaluates them on
  cached per-``(version, node)`` environment flow networks with the penalty
  applied as an overflow price, while ``engine=False`` selects the reference
  from-scratch :mod:`repro.graphs.flow` path;
* exact best responses are computed by a single linear program
  (:func:`fractional_best_response`) built on :func:`scipy.optimize.linprog`
  — sparse, assembled once per node, and patched per profile change on the
  engine path (with cached solves skipping the LP when the node's
  environment is unchanged); dense and from scratch on the reference path;
* :func:`iterated_best_response` runs best-response dynamics and
  :func:`epsilon_equilibrium_report` certifies (approximate) equilibria, the
  latter optionally fanning out across worker processes via
  :mod:`repro.experiments.parallel`.

Every evaluation entry point takes the tri-state ``engine`` keyword shared
with the integral paths: ``None`` (default) uses the shared per-game engine,
``False`` the reference implementation, and an explicit
:class:`~repro.engine.fractional_engine.FractionalEngine` controls cache
sharing.  ``tests/test_fractional_engine.py`` pins the two paths against each
other within ``1e-9``.

Only the sum objective is supported, matching the paper's fractional model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

try:  # The LP machinery is optional: cost evaluation (FlowNetwork) is not.
    import numpy as np
    from scipy.optimize import linprog
except ImportError:  # pragma: no cover - exercised on the minimal CI leg
    np = None
    linprog = None

from ..graphs import FlowNetwork
from .errors import BBCError, BestResponseUnavailable, InvalidStrategy
from .game import BBCGame
from .objectives import Objective

Node = Hashable

_EPS = 1e-7


class FractionalProfile(Mapping[Node, Mapping[Node, float]]):
    """An assignment of fractional link purchases to every node."""

    __slots__ = ("_strategies",)

    def __init__(self, strategies: Mapping[Node, Mapping[Node, float]]) -> None:
        cleaned: Dict[Node, Dict[Node, float]] = {}
        for node, amounts in strategies.items():
            row: Dict[Node, float] = {}
            for target, amount in amounts.items():
                if target == node:
                    raise InvalidStrategy(f"node {node!r} cannot buy capacity to itself")
                if amount < -_EPS:
                    raise InvalidStrategy(
                        f"negative capacity {amount!r} purchased by {node!r} towards {target!r}"
                    )
                if amount > _EPS:
                    row[target] = float(amount)
            cleaned[node] = row
        self._strategies = cleaned

    @staticmethod
    def empty(nodes: Iterable[Node]) -> "FractionalProfile":
        """Return the profile in which nobody buys any capacity."""
        return FractionalProfile({node: {} for node in nodes})

    def with_strategy(self, node: Node, amounts: Mapping[Node, float]) -> "FractionalProfile":
        """Return a new profile with ``node``'s purchases replaced by ``amounts``."""
        updated = {n: dict(row) for n, row in self._strategies.items()}
        if node not in updated:
            raise InvalidStrategy(f"node {node!r} is not part of this profile")
        updated[node] = dict(amounts)
        return FractionalProfile(updated)

    def capacity(self, tail: Node, head: Node) -> float:
        """Return the capacity purchased by ``tail`` towards ``head``."""
        return self._strategies.get(tail, {}).get(head, 0.0)

    def strategy(self, node: Node) -> Dict[Node, float]:
        """Return a copy of ``node``'s purchase vector."""
        return dict(self._strategies[node])

    def nodes(self) -> Tuple[Node, ...]:
        """Return the nodes covered by this profile."""
        return tuple(self._strategies)

    def __getitem__(self, node: Node) -> Mapping[Node, float]:
        return self._strategies[node]

    def __iter__(self):
        return iter(self._strategies)

    def __len__(self) -> int:
        return len(self._strategies)

    def describe(self) -> str:
        """Return a compact multi-line description of positive purchases."""
        lines = []
        for node in sorted(self._strategies, key=repr):
            row = self._strategies[node]
            parts = ", ".join(
                f"{target}:{amount:.3f}" for target, amount in sorted(row.items(), key=lambda kv: repr(kv[0]))
            )
            lines.append(f"{node} -> {{{parts}}}")
        return "\n".join(lines)


class FractionalBBCGame:
    """The fractional relaxation of a :class:`~repro.core.game.BBCGame`.

    The fractional game shares the node set, preferences, link costs, link
    lengths, budgets, and disconnection penalty of the underlying integral
    game; only the strategy space changes.
    """

    def __init__(self, base_game: BBCGame) -> None:
        if base_game.objective is not Objective.SUM:
            raise BBCError("fractional BBC games are defined for the sum objective only")
        self.base = base_game

    # ------------------------------------------------------------------ #
    # Validation and helpers
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """Return the players of the game."""
        return self.base.nodes

    def spend_of(self, node: Node, amounts: Mapping[Node, float]) -> float:
        """Return the budget consumed by the purchase vector ``amounts``."""
        return sum(
            amount * self.base.link_cost(node, target) for target, amount in amounts.items()
        )

    def is_feasible_strategy(self, node: Node, amounts: Mapping[Node, float]) -> bool:
        """Return ``True`` when ``amounts`` respects ``node``'s budget."""
        if any(amount < -_EPS for amount in amounts.values()):
            return False
        if node in amounts and amounts[node] > _EPS:
            return False
        return self.spend_of(node, amounts) <= self.base.budget(node) + 1e-6

    def validate_profile(self, profile: FractionalProfile) -> None:
        """Raise :class:`InvalidStrategy` when some node overspends."""
        for node in self.nodes:
            if node not in profile:
                raise InvalidStrategy(f"profile is missing node {node!r}")
            if not self.is_feasible_strategy(node, profile[node]):
                raise InvalidStrategy(
                    f"node {node!r} spends {self.spend_of(node, profile[node]):g} "
                    f"which exceeds its budget {self.base.budget(node):g}"
                )

    def empty_profile(self) -> FractionalProfile:
        """Return the all-zero profile."""
        return FractionalProfile.empty(self.nodes)

    def even_split_profile(self) -> FractionalProfile:
        """Return the profile where each node spreads its budget evenly.

        A natural symmetric starting point for best-response dynamics.
        """
        strategies: Dict[Node, Dict[Node, float]] = {}
        for node in self.nodes:
            others = [v for v in self.nodes if v != node]
            budget = self.base.budget(node)
            row: Dict[Node, float] = {}
            if others and budget > 0:
                per_target_budget = budget / len(others)
                for target in others:
                    price = self.base.link_cost(node, target)
                    if price > 0:
                        row[target] = per_target_budget / price
                    else:
                        # A zero-price link is free, so the even split buys
                        # the full unit of capacity a unit flow can ever use
                        # — deliberately more than the (meaningless) evenly
                        # split share.
                        row[target] = 1.0
            strategies[node] = row
        return FractionalProfile(strategies)

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    def destination_cost(
        self, profile: FractionalProfile, source: Node, destination: Node, *, engine=None
    ) -> float:
        """Return the min-cost unit-flow cost from ``source`` to ``destination``.

        The flow network contains one edge per positive purchased capacity
        (cost = link length) plus a single ``source -> destination`` edge of
        cost ``M`` with capacity ``1.0`` — exactly enough to absorb the whole
        unit flow, so it behaves like the paper's uncapacitated penalty edge.
        The paper places an ``M`` edge between *every* pair; because ``M``
        dominates every realisable path length, an optimal flow never uses
        more than one ``M`` edge, so the single direct edge yields the same
        optimum value.

        ``engine=None`` (default) evaluates on the shared
        :class:`~repro.engine.fractional_engine.FractionalEngine`'s cached
        environment networks; ``engine=False`` rebuilds the network from
        scratch as described above.
        """
        from ..engine import resolve_fractional_engine

        resolved_engine = resolve_fractional_engine(self, engine)
        if resolved_engine is not None:
            return resolved_engine.destination_cost(profile, source, destination)
        network = FlowNetwork()
        network.add_node(source)
        network.add_node(destination)
        for tail in self.nodes:
            for head, amount in profile[tail].items():
                if amount > _EPS:
                    network.add_edge(tail, head, amount, self.base.link_length(tail, head))
        network.add_edge(source, destination, 1.0, self.base.disconnection_penalty)
        cost, _ = network.min_cost_flow(source, destination, 1.0)
        return cost

    def node_cost(self, profile: FractionalProfile, node: Node, *, engine=None) -> float:
        """Return the preference-weighted sum of unit-flow costs for ``node``."""
        from ..engine import resolve_fractional_engine

        resolved_engine = resolve_fractional_engine(self, engine)
        if resolved_engine is not None:
            return resolved_engine.node_cost(profile, node)
        total = 0.0
        for target in self.nodes:
            if target == node:
                continue
            weight = self.base.weight(node, target)
            if weight <= 0:
                continue
            total += weight * self.destination_cost(profile, node, target, engine=False)
        return total

    def all_costs(self, profile: FractionalProfile, *, engine=None) -> Dict[Node, float]:
        """Return the cost of every node under ``profile``."""
        from ..engine import resolve_fractional_engine

        resolved_engine = resolve_fractional_engine(self, engine)
        if resolved_engine is not None:
            return resolved_engine.all_costs(profile)
        return {node: self.node_cost(profile, node, engine=False) for node in self.nodes}

    def social_cost(self, profile: FractionalProfile, *, engine=None) -> float:
        """Return the total cost over all nodes."""
        return sum(self.all_costs(profile, engine=engine).values())


@dataclass(frozen=True)
class FractionalBestResponse:
    """Outcome of one LP-based fractional best response."""

    node: Node
    current_cost: float
    best_cost: float
    best_strategy: Dict[Node, float]
    improved: bool

    @property
    def regret(self) -> float:
        """Return how much the node can gain by deviating."""
        return max(0.0, self.current_cost - self.best_cost)


def fractional_best_response(
    game: FractionalBBCGame, profile: FractionalProfile, node: Node, *, engine=None
) -> FractionalBestResponse:
    """Compute an exact best response for ``node`` by solving one LP.

    Decision variables are the node's purchase vector ``a_u(x)`` and, for
    every destination it cares about, a unit flow over the network formed by
    the *other* nodes' (fixed) capacities, the node's own (variable)
    capacities, and the penalty edge.  The LP minimises the preference-
    weighted total flow cost subject to flow conservation, capacity coupling,
    and the budget constraint.

    ``engine=None`` (default) solves on the shared
    :class:`~repro.engine.fractional_engine.FractionalEngine` — sparse
    assembly reused across calls, capacities patched per profile change, and
    the LP skipped outright when a cached solve against the same environment
    already certifies the minimum.  ``engine=False`` keeps the from-scratch
    dense assembly below as the reference.
    """
    from ..engine import resolve_fractional_engine

    resolved_engine = resolve_fractional_engine(game, engine)
    if resolved_engine is not None:
        return resolved_engine.best_response(profile, node)
    if linprog is None:
        raise BestResponseUnavailable(
            "fractional best responses solve an LP and require numpy and "
            "scipy; install them (cost evaluation works without)"
        )
    base = game.base
    current_cost = game.node_cost(profile, node, engine=False)

    candidates = [v for v in base.nodes if v != node]
    targets = [v for v in candidates if base.weight(node, v) > 0]
    if not targets:
        return FractionalBestResponse(
            node=node,
            current_cost=current_cost,
            best_cost=current_cost,
            best_strategy=profile.strategy(node),
            improved=False,
        )

    # Environment edges: purchases of every other node, with positive capacity.
    env_edges: List[Tuple[Node, Node, float, float]] = []
    for tail in base.nodes:
        if tail == node:
            continue
        for head, amount in profile[tail].items():
            if amount > _EPS:
                env_edges.append((tail, head, amount, base.link_length(tail, head)))

    # Own edges: one per candidate target, with variable capacity a_u(x).
    own_edges: List[Tuple[Node, Node, float]] = [
        (node, x, base.link_length(node, x)) for x in candidates
    ]

    num_capacity_vars = len(candidates)
    capacity_index = {x: i for i, x in enumerate(candidates)}

    # Per destination: env flows, own flows, penalty flow.
    flows_per_destination = len(env_edges) + len(own_edges) + 1
    num_vars = num_capacity_vars + len(targets) * flows_per_destination

    def flow_var(dest_index: int, edge_index: int) -> int:
        return num_capacity_vars + dest_index * flows_per_destination + edge_index

    objective = np.zeros(num_vars)
    for dest_index, destination in enumerate(targets):
        weight = base.weight(node, destination)
        for edge_index, (_, _, _, length) in enumerate(env_edges):
            objective[flow_var(dest_index, edge_index)] = weight * length
        for own_index, (_, _, length) in enumerate(own_edges):
            objective[flow_var(dest_index, len(env_edges) + own_index)] = weight * length
        objective[flow_var(dest_index, flows_per_destination - 1)] = (
            weight * base.disconnection_penalty
        )

    rows_ub: List[np.ndarray] = []
    rhs_ub: List[float] = []
    rows_eq: List[np.ndarray] = []
    rhs_eq: List[float] = []

    # Budget constraint on the purchase vector.
    budget_row = np.zeros(num_vars)
    for x, index in capacity_index.items():
        budget_row[index] = base.link_cost(node, x)
    rows_ub.append(budget_row)
    rhs_ub.append(base.budget(node))

    node_list = list(base.nodes)
    for dest_index, destination in enumerate(targets):
        # Capacity constraints.
        for edge_index, (_, _, capacity, _) in enumerate(env_edges):
            row = np.zeros(num_vars)
            row[flow_var(dest_index, edge_index)] = 1.0
            rows_ub.append(row)
            rhs_ub.append(capacity)
        for own_index, (_, x, _) in enumerate(own_edges):
            row = np.zeros(num_vars)
            row[flow_var(dest_index, len(env_edges) + own_index)] = 1.0
            row[capacity_index[x]] = -1.0
            rows_ub.append(row)
            rhs_ub.append(0.0)
        # Flow conservation at every node.
        for vertex in node_list:
            row = np.zeros(num_vars)
            for edge_index, (tail, head, _, _) in enumerate(env_edges):
                if tail == vertex:
                    row[flow_var(dest_index, edge_index)] += 1.0
                if head == vertex:
                    row[flow_var(dest_index, edge_index)] -= 1.0
            for own_index, (tail, head, _) in enumerate(own_edges):
                if tail == vertex:
                    row[flow_var(dest_index, len(env_edges) + own_index)] += 1.0
                if head == vertex:
                    row[flow_var(dest_index, len(env_edges) + own_index)] -= 1.0
            penalty_var = flow_var(dest_index, flows_per_destination - 1)
            if vertex == node:
                row[penalty_var] += 1.0
            if vertex == destination:
                row[penalty_var] -= 1.0
            if vertex == node:
                supply = 1.0
            elif vertex == destination:
                supply = -1.0
            else:
                supply = 0.0
            rows_eq.append(row)
            rhs_eq.append(supply)

    bounds = [(0.0, None)] * num_vars
    for index in range(num_capacity_vars):
        bounds[index] = (0.0, 1.0)  # >1 unit of capacity is never useful for unit flows

    result = linprog(
        c=objective,
        A_ub=np.array(rows_ub),
        b_ub=np.array(rhs_ub),
        A_eq=np.array(rows_eq),
        b_eq=np.array(rhs_eq),
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise BBCError(f"fractional best-response LP failed: {result.message}")

    best_cost = float(result.fun)
    best_strategy = {
        x: float(result.x[capacity_index[x]])
        for x in candidates
        if result.x[capacity_index[x]] > _EPS
    }
    improved = best_cost < current_cost - 1e-6
    if not improved:
        return FractionalBestResponse(
            node=node,
            current_cost=current_cost,
            best_cost=min(best_cost, current_cost),
            best_strategy=profile.strategy(node),
            improved=False,
        )
    return FractionalBestResponse(
        node=node,
        current_cost=current_cost,
        best_cost=best_cost,
        best_strategy=best_strategy,
        improved=True,
    )


@dataclass
class FractionalDynamicsResult:
    """Trace of an iterated fractional best-response run."""

    profile: FractionalProfile
    rounds: int
    converged: bool
    max_final_regret: float
    cost_history: List[float] = field(default_factory=list)


def iterated_best_response(
    game: FractionalBBCGame,
    initial: Optional[FractionalProfile] = None,
    *,
    max_rounds: int = 30,
    tolerance: float = 1e-5,
    engine=None,
) -> FractionalDynamicsResult:
    """Run round-robin fractional best-response dynamics.

    Theorem 3 guarantees an equilibrium *exists*; it does not guarantee this
    particular dynamic converges, so the result records whether the run
    stopped because no node could improve by more than ``tolerance``.  In
    *both* exit paths ``converged`` is derived from the certified closing
    report rather than from the absence of moves: moves are gated by the
    fixed ``1e-6`` improvement threshold inside
    :func:`fractional_best_response`, so with ``tolerance < 1e-6`` a
    no-move round may still leave regrets above ``tolerance``.
    """
    profile = initial if initial is not None else game.even_split_profile()
    game.validate_profile(profile)
    history: List[float] = [game.social_cost(profile, engine=engine)]
    for round_index in range(1, max_rounds + 1):
        any_improvement = False
        for node in game.nodes:
            response = fractional_best_response(game, profile, node, engine=engine)
            if response.improved and response.regret > tolerance:
                profile = profile.with_strategy(node, response.best_strategy)
                any_improvement = True
        history.append(game.social_cost(profile, engine=engine))
        if not any_improvement:
            report = epsilon_equilibrium_report(game, profile, tolerance, engine=engine)
            return FractionalDynamicsResult(
                profile=profile,
                rounds=round_index,
                converged=report.max_regret <= tolerance,
                max_final_regret=report.max_regret,
                cost_history=history,
            )
    report = epsilon_equilibrium_report(game, profile, tolerance, engine=engine)
    return FractionalDynamicsResult(
        profile=profile,
        rounds=max_rounds,
        converged=report.max_regret <= tolerance,
        max_final_regret=report.max_regret,
        cost_history=history,
    )


@dataclass(frozen=True)
class EpsilonEquilibriumReport:
    """Per-node regrets of a fractional profile."""

    regrets: Mapping[Node, float]
    epsilon: float

    @property
    def max_regret(self) -> float:
        """Return the largest per-node regret."""
        return max(self.regrets.values()) if self.regrets else 0.0

    @property
    def is_epsilon_equilibrium(self) -> bool:
        """Return ``True`` when no node can improve by more than ``epsilon``."""
        return self.max_regret <= self.epsilon


def _regret_cell(args) -> float:
    """Worker cell: one node's best-response regret, game rebuilt in-process.

    ``args`` is ``(spec, strategies, node, engine_flag)`` where ``spec`` is a
    picklable :class:`~repro.experiments.parallel.GameSpec` of the base game
    and ``strategies`` the profile as nested tuples — nothing derived (flow
    networks, LP skeletons, caches) ever crosses the process boundary.
    """
    spec, strategies, node, engine_flag = args
    game = spec.build_fractional()
    profile = FractionalProfile({n: dict(row) for n, row in strategies})
    return fractional_best_response(game, profile, node, engine=engine_flag).regret


def epsilon_equilibrium_report(
    game: FractionalBBCGame,
    profile: FractionalProfile,
    epsilon: float = 1e-5,
    *,
    engine=None,
    processes: Optional[int] = 1,
) -> EpsilonEquilibriumReport:
    """Certify ``profile`` as an epsilon-equilibrium (or report who deviates).

    ``processes`` fans the per-node best responses out over worker processes
    via :func:`repro.experiments.parallel.parallel_map` (``1`` — the default —
    runs the deterministic serial loop, ``None`` means one per CPU).  Regrets
    are identical at any process count; workers rebuild the game from a
    :class:`~repro.experiments.parallel.GameSpec` and honour ``engine=False``,
    while an explicit engine instance cannot cross the process boundary and
    each worker uses its own shared engine instead.
    """
    game.validate_profile(profile)
    from ..experiments.parallel import GameSpec, parallel_map, resolve_processes

    nodes = game.nodes
    if resolve_processes(processes) <= 1 or len(nodes) <= 1:
        regrets = {
            node: fractional_best_response(game, profile, node, engine=engine).regret
            for node in nodes
        }
    else:
        spec = GameSpec.from_fractional_game(game)
        strategies = tuple(
            (node, tuple(profile[node].items())) for node in profile
        )
        engine_flag = False if engine is False else None
        items = [(spec, strategies, node, engine_flag) for node in nodes]
        values = parallel_map(_regret_cell, items, processes=processes)
        regrets = dict(zip(nodes, values))
    return EpsilonEquilibriumReport(regrets=regrets, epsilon=epsilon)


def integral_to_fractional(profile_edges: Iterable[Tuple[Node, Node]], nodes: Iterable[Node]) -> FractionalProfile:
    """Lift an integral strategy profile (edge list) to a fractional profile.

    Each purchased link becomes one unit of capacity, which reproduces the
    integral distances exactly (a unit flow along a path of unit capacities).
    Every edge endpoint must belong to ``nodes``; an unknown tail or head
    raises :class:`InvalidStrategy` instead of silently inventing a player.
    """
    strategies: Dict[Node, Dict[Node, float]] = {node: {} for node in nodes}
    for tail, head in profile_edges:
        if tail not in strategies:
            raise InvalidStrategy(
                f"edge ({tail!r}, {head!r}) has a tail outside the node set"
            )
        if head not in strategies:
            raise InvalidStrategy(
                f"edge ({tail!r}, {head!r}) has a head outside the node set"
            )
        strategies[tail][head] = 1.0
    return FractionalProfile(strategies)
