"""Shared seed normalisation.

Every stochastic entry point in the package (profile samplers, walk
schedulers, workload generators) accepts a ``SeedLike``: an ``int`` seed, an
existing :class:`random.Random` to draw from (so callers can interleave
several consumers on one deterministic stream), or ``None`` for OS entropy.
:func:`as_rng` is the single place that convention is implemented.
"""

from __future__ import annotations

import random
from typing import Union

SeedLike = Union[int, random.Random, None]


def as_rng(seed: SeedLike) -> random.Random:
    """Return ``seed`` itself when it already is a :class:`random.Random`,
    otherwise a fresh generator seeded with it."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


__all__ = ["SeedLike", "as_rng"]
