"""Load generator and fault drill for the always-on game service.

Drives a :class:`~repro.service.GameService` hosting three live games — a
uniform game, a weighted "friend finder" preference game, and a fractional
game — with a seeded, fully deterministic query script: waves of concurrent
reads (cost / what-if / best-response, with a restricted equilibrium report
per game) submitted through ``GameService.gather`` so they coalesce into
giant batches, interleaved with single-node strategy updates that ride the
engines' incremental repair path.

The run records ``benchmarks/output/BENCH_service.json``: one row per game
(exact query/batch/cache counters from the per-game metrics registry plus
p50/p99 latency) and a ``service_total`` row whose throughput and batch
coalescing factor are floor-gated by ``scripts/bench_speed.py
--check-floors`` (the floors themselves live in ``bench_speed`` next to
every other regression floor).

``--drill`` additionally runs the fault drill CI executes on both dependency
legs: the same deterministic script twice — once healthy, once under a
seeded :class:`~repro.reliability.FaultPlan` injecting an LP solver failure,
a poisoned cache row, a chunk-build failure, and handler crashes at the two
service sites — asserting that **every** drilled response is either
bit-identical to its healthy twin or the documented
:class:`~repro.reliability.InjectedFault` typed error.  State-changing
injections are pinned by key to the final update of the script, so a drilled
failure can never fork the version history the remaining reads compare
against.

Usage::

    PYTHONPATH=src python scripts/bench_service.py             # record + floors
    PYTHONPATH=src python scripts/bench_service.py --smoke     # tiny sizes
    PYTHONPATH=src python scripts/bench_service.py --drill     # + fault drill
"""

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time
import warnings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from bench_speed import (  # noqa: E402
    SERVICE_COALESCING_FLOOR,
    SERVICE_QPS_FLOOR,
    _service_floor_violations,
)

from repro.core import FractionalBBCGame, UniformBBCGame  # noqa: E402
from repro.experiments.workloads import random_preference_game  # noqa: E402
from repro.reliability import (  # noqa: E402
    FaultPlan,
    FaultRule,
    active_faults,
    atomic_write_text,
)
from repro.rng import as_rng  # noqa: E402
from repro.service import GameService, Query  # noqa: E402

OUTPUT_DIR = REPO_ROOT / "benchmarks" / "output"
WORKLOAD_SEED = 20080  # PODC 2008, where the source paper appeared
WEIGHTED_GAME_SEED = 11

#: Errors a drilled response may show instead of its healthy twin's payload.
#: Everything else the service can return is deterministic under injection
#: (LP fallbacks, verified row rebuilds, chunk-build degradation), so the
#: only *visible* drill outcome is the injected handler failure itself.
DOCUMENTED_DRILL_ERRORS = frozenset({"InjectedFault"})

#: The reserved node whose final strategy update the drill's
#: ``service.update`` rule pins to (regular script updates avoid it, so the
#: one state-changing injection lands after every compared read).
DRILL_UPDATE_NODE = 0


# --------------------------------------------------------------------- #
# Deterministic workload script
# --------------------------------------------------------------------- #
def _integral_wave(game, rng, clients):
    """One wave of concurrent reads for an integral game."""
    nodes = list(game.nodes)
    queries = []
    for _ in range(clients):
        node = nodes[rng.randrange(len(nodes))]
        others = [v for v in nodes if v != node]
        roll = rng.random()
        if roll < 0.5:
            queries.append(Query(kind="cost", node=node))
        elif roll < 0.75:
            targets = rng.sample(others, min(2, len(others)))
            queries.append(Query(kind="what_if", node=node, strategy=tuple(targets)))
        else:
            candidates = rng.sample(others, min(3, len(others)))
            queries.append(
                Query(kind="best_response", node=node, candidates=tuple(candidates))
            )
    return queries


def _integral_update(game, rng, reserve_node=None):
    """One single-node strategy update (a ``reserve_node`` is never picked)."""
    nodes = [v for v in game.nodes if v != reserve_node]
    node = nodes[rng.randrange(len(nodes))]
    others = [v for v in game.nodes if v != node]
    return node, tuple(rng.sample(others, min(2, len(others))))


def _fractional_wave(game, rng, clients):
    nodes = list(game.nodes)
    queries = []
    for _ in range(clients):
        node = nodes[rng.randrange(len(nodes))]
        others = [v for v in nodes if v != node]
        roll = rng.random()
        if roll < 0.4:
            queries.append(Query(kind="cost", node=node))
        elif roll < 0.7:
            target = others[rng.randrange(len(others))]
            queries.append(Query(kind="what_if", node=node, strategy={target: 1.0}))
        else:
            queries.append(Query(kind="best_response", node=node))
    return queries


def _fractional_update(game, rng):
    nodes = list(game.nodes)
    node = nodes[rng.randrange(len(nodes))]
    others = [v for v in nodes if v != node]
    target = others[rng.randrange(len(others))]
    return node, {target: 1.0}


def build_script(game, kind, *, waves, clients, seed, reserve_node=None):
    """The deterministic per-game script: ``waves`` (queries, update) pairs.

    Every wave's reads are submitted together (one coalesced batch), then
    its update commits.  A restricted equilibrium report rides the final
    wave, so each script exercises the giant-batch report staging too.
    """
    rng = as_rng(seed)
    script = []
    for wave_index in range(waves):
        if kind == "fractional":
            queries = _fractional_wave(game, rng, clients)
            update = _fractional_update(game, rng)
        else:
            queries = _integral_wave(game, rng, clients)
            update = _integral_update(game, rng, reserve_node=reserve_node)
        if wave_index == waves - 1:
            if kind == "fractional":
                queries.append(Query(kind="report"))
            else:
                nodes = list(game.nodes)
                candidates = {
                    node: rng.sample([v for v in nodes if v != node], 2)
                    for node in nodes
                }
                queries.append(Query(kind="report", candidates=candidates))
        script.append((queries, update))
    return script


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
async def _drive_game(service, name, script):
    """Run one game's script; return its responses in submission order."""
    responses = []
    for queries, update in script:
        responses.extend(await service.gather(name, queries))
        if update is not None:
            responses.append(await service.update(name, update[0], update[1]))
    return responses


def _register_catalog(service, specs, *, verify_every=None):
    for name, game, kind in specs:
        if kind == "fractional":
            service.register(name, game)
        else:
            service.register(name, game, verify_every=verify_every)


async def _run_scripts(specs, scripts, *, verify_every=None, tail_updates=()):
    """One full service run: returns (per-game responses, stats, seconds)."""
    async with GameService() as service:
        _register_catalog(service, specs, verify_every=verify_every)
        started = time.perf_counter()
        streams = await asyncio.gather(
            *(_drive_game(service, name, scripts[name]) for name, _, _ in specs)
        )
        responses = {name: stream for (name, _, _), stream in zip(specs, streams)}
        for name, node, strategy in tail_updates:
            responses[name].append(await service.update(name, node, strategy))
        elapsed = time.perf_counter() - started
        stats = {}
        for name, _, _ in specs:
            stats[name] = (await service.stats(name)).payload
    return responses, stats, elapsed


# --------------------------------------------------------------------- #
# The load phase (records BENCH_service.json)
# --------------------------------------------------------------------- #
def load_specs(smoke):
    n_uniform = 8 if smoke else 24
    n_weighted = 6 if smoke else 16
    n_fractional = 4 if smoke else 6
    return [
        ("uniform", UniformBBCGame(n_uniform, 2), "integral"),
        (
            "weighted",
            random_preference_game(n_weighted, budget=2, seed=WEIGHTED_GAME_SEED),
            "integral",
        ),
        ("fractional", FractionalBBCGame(UniformBBCGame(n_fractional, 1)), "fractional"),
    ]


def run_load(smoke):
    specs = load_specs(smoke)
    waves = 2 if smoke else 6
    clients = 6 if smoke else 12
    scripts = {}
    for offset, (name, game, kind) in enumerate(specs):
        game_waves = max(2, waves // 2) if kind == "fractional" else waves
        game_clients = max(3, clients // 4) if kind == "fractional" else clients
        scripts[name] = build_script(
            game,
            kind,
            waves=game_waves,
            clients=game_clients,
            seed=WORKLOAD_SEED + offset,
        )
    responses, stats, elapsed = asyncio.run(_run_scripts(specs, scripts))

    rows = []
    total_queries = 0
    total_batches = 0
    total_batched = 0
    for name, game, kind in specs:
        payload = stats[name]
        queries = sum(payload["queries"].values())
        total_queries += queries
        total_batches += payload["batches"]
        total_batched += payload["batched_queries"]
        rows.append(
            {
                "task": "service_game",
                "game": name,
                "kind": kind,
                "n": len(tuple(game.nodes)),
                "queries": queries,
                "updates": payload["updates"],
                "errors": sum(payload["errors"].values()),
                "batches": payload["batches"],
                "max_batch": payload["max_batch"],
                "coalescing_factor": payload["coalescing_factor"],
                "cache_hit_rate": payload["cache_hit_rate"],
                "latency_p50_s": payload["latency_p50_s"],
                "latency_p99_s": payload["latency_p99_s"],
                "engine": payload["engine"],
            }
        )
    rows.append(
        {
            "task": "service_total",
            "games": len(specs),
            "queries": total_queries,
            "seconds": elapsed,
            "qps": total_queries / elapsed if elapsed > 0 else 0.0,
            "coalescing_factor": (
                total_batched / total_batches if total_batches else 0.0
            ),
        }
    )
    failed = {
        name: [r for r in stream if not r.ok]
        for name, stream in responses.items()
    }
    return rows, failed


# --------------------------------------------------------------------- #
# The fault drill (--drill)
# --------------------------------------------------------------------- #
def drill_plan():
    """The seeded injection set the drill arms on its second run."""
    return FaultPlan(
        seed=WORKLOAD_SEED,
        rules=(
            # Handler failure on the first two uniform cost dispatches:
            # surfaces as the documented InjectedFault typed error response.
            FaultRule(site="service.query", keys=[("uniform", "cost")], times=2),
            # Write-side failure, pinned to the reserved final update so the
            # rejected commit cannot fork the versions earlier reads compare.
            FaultRule(site="service.update", keys=[("uniform", DRILL_UPDATE_NODE)]),
            # Engine-level injections: all absorbed below the response
            # surface (verified rebuild, per-node degradation, LP fallback).
            FaultRule(site="engine.row-poison", times=1),
            FaultRule(site="engine.chunk-build", times=1),
            FaultRule(site="fractional.lp-solve", times=2),
        ),
    )


def run_drill(smoke):
    specs = [
        ("uniform", UniformBBCGame(6 if smoke else 10, 2), "integral"),
        ("fractional", FractionalBBCGame(UniformBBCGame(4 if smoke else 5, 1)), "fractional"),
    ]
    scripts = {}
    for offset, (name, game, kind) in enumerate(specs):
        scripts[name] = build_script(
            game,
            kind,
            waves=2 if smoke else 3,
            clients=3 if smoke else 6,
            seed=WORKLOAD_SEED + 100 + offset,
            reserve_node=DRILL_UPDATE_NODE if kind == "integral" else None,
        )
    # The reserved update the service.update rule is pinned to; it runs
    # after every compared read so its typed failure is the stream's tail.
    tail = [("uniform", DRILL_UPDATE_NODE, (1, 2))]

    healthy, _, _ = asyncio.run(
        _run_scripts(specs, scripts, verify_every=1, tail_updates=tail)
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with active_faults(drill_plan()):
            drilled, drilled_stats, _ = asyncio.run(
                _run_scripts(specs, scripts, verify_every=1, tail_updates=tail)
            )
    verify_warnings = sum(
        1 for w in caught if "self-verification" in str(w.message)
    )

    identical = 0
    typed_errors = 0
    mismatches = []
    for name, _, _ in specs:
        healthy_stream = healthy[name]
        drilled_stream = drilled[name]
        assert len(healthy_stream) == len(drilled_stream)
        for index, (want, got) in enumerate(zip(healthy_stream, drilled_stream)):
            if want.comparable() == got.comparable():
                identical += 1
            elif got.error in DOCUMENTED_DRILL_ERRORS:
                typed_errors += 1
            else:
                mismatches.append(
                    {
                        "game": name,
                        "index": index,
                        "kind": got.kind,
                        "healthy": repr(want.comparable()),
                        "drilled": repr(got.comparable()),
                    }
                )
    engine_counters = drilled_stats["uniform"]["engine"]
    return {
        "responses": identical + typed_errors + len(mismatches),
        "identical": identical,
        "typed_errors": typed_errors,
        "mismatches": mismatches,
        "row_verify_failures": engine_counters.get("row_verify_failures", 0),
        "verify_warnings": verify_warnings,
        "injected_rules": len(drill_plan().rules),
    }


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #
def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI wiring checks"
    )
    parser.add_argument(
        "--drill",
        action="store_true",
        help="also run the healthy-vs-injected fault drill and assert parity",
    )
    args = parser.parse_args()

    rows, failed = run_load(args.smoke)
    total = rows[-1]
    print(
        f"service load: {total['queries']} queries over {total['games']} games "
        f"in {total['seconds']:.3f}s -> {total['qps']:.1f} q/s, "
        f"coalescing factor {total['coalescing_factor']:.2f}"
    )
    for row in rows[:-1]:
        print(
            f"  {row['game']:<12} n={row['n']:<5} queries={row['queries']:<4} "
            f"errors={row['errors']:<3} batches={row['batches']:<3} "
            f"max_batch={row['max_batch']:<3} "
            f"hit_rate={row['cache_hit_rate']:.2f} "
            f"p50={row['latency_p50_s'] * 1e3:.2f}ms "
            f"p99={row['latency_p99_s'] * 1e3:.2f}ms"
        )
    for name, failures in failed.items():
        for response in failures:
            print(f"  note: {name} {response.kind} -> {response.error}")

    payload = {
        "benchmark": "bench_service",
        "service_meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "smoke": bool(args.smoke),
            "seed": WORKLOAD_SEED,
            "qps_floor": SERVICE_QPS_FLOOR,
            "coalescing_floor": SERVICE_COALESCING_FLOOR,
        },
        "service_results": rows,
    }

    exit_code = 0
    if args.drill:
        drill = run_drill(args.smoke)
        payload["service_drill"] = drill
        print(
            f"fault drill: {drill['responses']} responses -> "
            f"{drill['identical']} bit-identical, "
            f"{drill['typed_errors']} documented typed errors, "
            f"{len(drill['mismatches'])} mismatches "
            f"(row verify failures: {drill['row_verify_failures']})"
        )
        for mismatch in drill["mismatches"]:
            print(f"DRILL MISMATCH: {mismatch}", file=sys.stderr)
        if drill["mismatches"]:
            exit_code = 1
        if not drill["typed_errors"]:
            print(
                "DRILL MISMATCH: no injected handler failure surfaced — the "
                "service.query/service.update rules never fired",
                file=sys.stderr,
            )
            exit_code = 1

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    json_path = OUTPUT_DIR / "BENCH_service.json"
    atomic_write_text(json_path, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {json_path}")

    if not args.smoke:
        violations = _service_floor_violations(rows)
        for violation in violations:
            print(f"FLOOR VIOLATION: {violation}", file=sys.stderr)
        if violations:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
