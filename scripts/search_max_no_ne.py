"""Offline search for a small BBC-max game with no pure Nash equilibrium.

Randomly samples small non-uniform preference matrices (uniform link costs,
lengths, and budgets, k=1) and exhaustively checks whether the induced
BBC-max game has a pure Nash equilibrium.  Prints any witness found so it can
be hard-coded into ``repro.gadgets.max_gadget``.
"""

import itertools
import json
import random
import sys

from repro.core import BBCGame, Objective, StrategyProfile, is_pure_nash, best_response


def has_pure_nash_exhaustive(game):
    nodes = list(game.nodes)
    options = {u: [v for v in nodes if v != u] for u in nodes}
    for combo in itertools.product(*(options[u] for u in nodes)):
        profile = StrategyProfile({u: {t} for u, t in zip(nodes, combo)})
        if is_pure_nash(game, profile):
            return profile
    return None


def quick_has_nash(game, rng, starts=15, steps=60):
    nodes = list(game.nodes)
    for _ in range(starts):
        profile = StrategyProfile({u: {rng.choice([v for v in nodes if v != u])} for u in nodes})
        for _ in range(steps):
            moved = False
            for u in nodes:
                r = best_response(game, profile, u)
                if r.improved:
                    profile = r.apply(profile)
                    moved = True
            if not moved:
                return True
    return False


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    attempts = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 0
    rng = random.Random(seed)
    nodes = list(range(n))
    for attempt in range(attempts):
        weights = {}
        for u in nodes:
            for v in nodes:
                if u != v and rng.random() < 0.5:
                    weights[(u, v)] = float(rng.choice([1, 1, 2, 3]))
        game = BBCGame(
            nodes=nodes,
            weights=weights,
            default_weight=0.0,
            default_budget=1.0,
            objective=Objective.MAX,
        )
        if quick_has_nash(game, rng):
            continue
        witness = has_pure_nash_exhaustive(game)
        if witness is None:
            print("FOUND no-NE max game at attempt", attempt)
            print(json.dumps({f"{u},{v}": w for (u, v), w in weights.items()}, sort_keys=True))
            return
    print("no witness found after", attempts, "attempts")


if __name__ == "__main__":
    main()
