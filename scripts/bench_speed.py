"""Speed benchmark: flat-array engine vs dict-based reference hot paths.

Times full equilibrium checks (``equilibrium_report``) and best-response
walks (``run_best_response_walk``) at n in {8, 16, 32, 64} (k = 2), against
both the flat-array :class:`~repro.engine.CostEngine` path (the default) and
the reference :class:`~repro.core.best_response.DeviationOracle` path
(``engine=False`` / ``use_engine=False``).  Results go to
``benchmarks/output/BENCH_speed.json`` as a machine-readable trajectory for
future PRs, plus a rendered table in ``BENCH_speed.txt``.

Usage::

    PYTHONPATH=src python scripts/bench_speed.py            # full run
    PYTHONPATH=src python scripts/bench_speed.py --smoke    # seconds, CI-friendly

The reference path is skipped above ``--max-reference-n`` (default 32: at
n = 64 the dict-based oracle takes minutes for no extra information — the
speedup trend is already established).
"""

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import UniformBBCGame, equilibrium_report  # noqa: E402
from repro.dynamics import run_best_response_walk  # noqa: E402
from repro.engine import CostEngine  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    empty_initial_profile,
    random_initial_profile,
)

OUTPUT_DIR = REPO_ROOT / "benchmarks" / "output"
K = 2
PROFILE_SEED = 7
WALK_MAX_ROUNDS = 8


def time_call(fn, repeats):
    """Return (best wall-clock seconds, last result) over ``repeats`` runs."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_equilibrium(n, repeats, include_reference):
    game = UniformBBCGame(n, K)
    profile = random_initial_profile(game, seed=PROFILE_SEED)
    # A fresh engine per call: time the cold path (snapshot build + all SSSPs),
    # not a warmed cache, so the comparison against the oracle is fair.
    engine_time, engine_report = time_call(
        lambda: equilibrium_report(game, profile, engine=CostEngine(game)), repeats
    )
    row = {
        "task": "equilibrium_report",
        "n": n,
        "k": K,
        "engine_seconds": engine_time,
        "max_regret": engine_report.max_regret,
    }
    if include_reference:
        reference_time, reference_report = time_call(
            lambda: equilibrium_report(game, profile, engine=False), repeats
        )
        assert reference_report.max_regret == engine_report.max_regret
        row["reference_seconds"] = reference_time
        row["speedup"] = reference_time / engine_time
    return row


def bench_walk(n, repeats, include_reference):
    game = UniformBBCGame(n, K)
    initial = empty_initial_profile(game)

    def run(engine):
        return run_best_response_walk(
            game, initial, max_rounds=WALK_MAX_ROUNDS, engine=engine
        )

    # Fresh engine per timing so every repeat pays the cold path, matching
    # the per-call oracle construction of the reference.
    engine_time, engine_result = time_call(lambda: run(CostEngine(game)), repeats)
    row = {
        "task": "best_response_walk",
        "n": n,
        "k": K,
        "max_rounds": WALK_MAX_ROUNDS,
        "engine_seconds": engine_time,
        "probes": engine_result.probes,
        "deviations": engine_result.deviations,
    }
    if include_reference:
        reference_time, reference_result = time_call(lambda: run(False), repeats)
        assert reference_result.final_profile == engine_result.final_profile
        assert reference_result.probes == engine_result.probes
        row["reference_seconds"] = reference_time
        row["speedup"] = reference_time / engine_time
    return row


def render_table(rows):
    lines = [
        f"{'task':<22} {'n':>4} {'reference[s]':>13} {'engine[s]':>10} {'speedup':>8}"
    ]
    for row in rows:
        reference = row.get("reference_seconds")
        speedup = row.get("speedup")
        lines.append(
            f"{row['task']:<22} {row['n']:>4} "
            f"{(f'{reference:.4f}' if reference is not None else '-'):>13} "
            f"{row['engine_seconds']:>10.4f} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>8}"
        )
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes and one repeat so the whole run takes seconds",
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per cell")
    parser.add_argument(
        "--max-reference-n",
        type=int,
        default=32,
        help="largest n at which the dict-based reference path is also timed",
    )
    args = parser.parse_args()

    sizes = [8, 16] if args.smoke else [8, 16, 32, 64]
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    if repeats < 1:
        parser.error(f"--repeats must be at least 1 (got {repeats})")

    rows = []
    for n in sizes:
        include_reference = n <= args.max_reference_n
        print(f"benchmarking n={n} (reference={'yes' if include_reference else 'no'}) ...")
        rows.append(bench_equilibrium(n, repeats, include_reference))
        rows.append(bench_walk(n, repeats, include_reference))

    payload = {
        "benchmark": "bench_speed",
        "k": K,
        "sizes": sizes,
        "repeats": repeats,
        "smoke": args.smoke,
        "python": platform.python_version(),
        "results": rows,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    json_path = OUTPUT_DIR / "BENCH_speed.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    table = render_table(rows)
    (OUTPUT_DIR / "BENCH_speed.txt").write_text(table + "\n")
    print("\n" + table)
    print(f"\nwrote {json_path}")

    checked = [
        row for row in rows if row["task"] == "equilibrium_report" and "speedup" in row
    ]
    if any(row["n"] >= 32 and row["speedup"] < 3.0 for row in checked):
        print("WARNING: equilibrium_report speedup at n>=32 fell below 3x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
