"""Speed benchmark: flat-array engine vs dict-based reference hot paths.

Times full equilibrium checks (``equilibrium_report``) and best-response
walks (``run_best_response_walk``) at n in {8, 16, 32, 64} (k = 2), against
both the flat-array :class:`~repro.engine.CostEngine` path (the default) and
the reference :class:`~repro.core.best_response.DeviationOracle` path
(``engine=False`` / ``use_engine=False``).  Results go to
``benchmarks/output/BENCH_speed.json`` as a machine-readable trajectory for
future PRs, plus a rendered table in ``BENCH_speed.txt``.

``--sweep`` runs the sweep-engine scenarios instead — exhaustive equilibrium
search (n = 7, k = 2 uniform, Gray order + incremental checks vs a
from-scratch check per profile), the Figure 4 completion scan, one
process-parallel study grid, and the sharded exhaustive search (the same
restricted grid split into contiguous Gray-rank subranges over
``--processes`` shared-memory workers, certified bit-identical to the serial
summary) — and merges them into the same JSON under ``sweep_results``,
preserving whatever the other modes last wrote.  The sharded row's scaling
floor only gates non-smoke recordings taken with at least two workers on at
least two CPUs; single-core boxes record the fork overhead unfloored.

``--fractional`` runs the fractional-game scenarios — iterated best-response
dynamics from the empty profile and the epsilon-equilibrium report of the
resulting profile, both against the shared-structure
:class:`~repro.engine.FractionalEngine` (cached environment flow networks +
sparse patched LPs) and the from-scratch FlowNetwork / dense-LP reference —
and merges them under ``fractional_results`` the same way.

``--incremental`` runs the incremental-engine scenarios — long best-response
walks, single-deviation equilibrium rechecks, and the restricted exhaustive
sweep — against a reconstruction of the PR 3 engine
(``CostEngine(game, incremental=False, vectorized=False)``: drop-on-sync
invalidation, per-element scoring loops).  The recheck row additionally
isolates the repair win by timing ``incremental=False`` with vectorisation
kept on.  Results merge under ``incremental_results``.

``--backend`` runs the traversal-backend scenarios — equilibrium reports
with per-node restricted candidate targets at n in {64, 256, 1024} on a
uniform (BFS-backed) and an integer-weighted (Dijkstra-backed) game, plus
whole-profile ``all_costs`` sweeps at the largest size — timing
``CostEngine(game, backend="python")`` (list kernels) against
``backend="numpy"`` (vectorised frontier kernels).  On top of those, the
giant-batch scenarios time whole reports against the per-node-batch path
(``giant_batch=False``) at n = 4096 on both kernels plus a giant-only
n = 16384 BFS report, each row carrying a bottleneck profile (in-kernel
traversal seconds vs scoring/enumeration) and the engine's cache counters
(chunk evictions, rows per giant traversal, recomputes after eviction).
Results merge under ``backend_results``; the Dijkstra-backed report and the
giant-batch BFS report at their largest sizes must each clear a 3x floor.
Without numpy the mode runs a tiny python-kernel giant-batch parity check
(the fallback the minimal-deps CI leg exercises) and records nothing.

``--check-floors`` runs no benchmarks: it re-reads ``BENCH_speed.json`` and
exits non-zero if any recorded (non-smoke) mode fell below its enforced
floor — the reusable regression gate CI wires in.

Usage::

    PYTHONPATH=src python scripts/bench_speed.py                      # core scenarios
    PYTHONPATH=src python scripts/bench_speed.py --sweep              # sweep scenarios
    PYTHONPATH=src python scripts/bench_speed.py --fractional         # fractional scenarios
    PYTHONPATH=src python scripts/bench_speed.py --incremental        # incremental-engine scenarios
    PYTHONPATH=src python scripts/bench_speed.py --backend            # traversal-backend scenarios
    PYTHONPATH=src python scripts/bench_speed.py --smoke [--sweep | ...]
    PYTHONPATH=src python scripts/bench_speed.py --check-floors       # regression gate only

The reference path is skipped above ``--max-reference-n`` (default 32: at
n = 64 the dict-based oracle takes minutes for no extra information — the
speedup trend is already established).
"""

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    FractionalBBCGame,
    UniformBBCGame,
    epsilon_equilibrium_report,
    equilibrium_report,
    exhaustive_equilibrium_search,
    iterated_best_response,
)
from repro.core.search import candidate_strategy_sets  # noqa: E402
from repro.dynamics import reconstruct_figure4, run_best_response_walk  # noqa: E402
from repro.engine import CostEngine, FractionalEngine  # noqa: E402
from repro.experiments import (  # noqa: E402
    default_processes,
    last_run_stats,
    max_cost_first_convergence_study,
)
from repro.reliability import atomic_write_text  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    empty_initial_profile,
    random_initial_profile,
)

OUTPUT_DIR = REPO_ROOT / "benchmarks" / "output"
K = 2
PROFILE_SEED = 7
WALK_MAX_ROUNDS = 8
#: The exhaustive-search sweep scenario must stay at least this much faster
#: than the from-scratch reference; the script exits non-zero below it.
SWEEP_SPEEDUP_FLOOR = 5.0
#: The sharded exhaustive search must at least break even against the serial
#: sweep — but only on recordings that actually had parallelism available
#: (non-smoke, >= 2 workers, >= 2 CPUs); anything else just records.
SHARDED_SCALING_FLOOR = 1.0
#: The fractional dynamics scenario must stay at least this much faster than
#: the FlowNetwork / dense-LP reference at the largest size benchmarked.
FRACTIONAL_SPEEDUP_FLOOR = 3.0
#: The long-walk incremental scenario at the largest size must stay at least
#: this much faster than the reconstructed PR 3 engine.
INCREMENTAL_WALK_FLOOR = 2.0
#: The core equilibrium_report scenario must stay at least this much faster
#: than the dict-based oracle at every benchmarked n >= 32.
CORE_REPORT_FLOOR = 3.0
#: The Dijkstra-backed backend report at the largest benchmarked size must
#: stay at least this much faster on the numpy kernels than the list kernels.
BACKEND_DIJKSTRA_FLOOR = 3.0
#: The giant-batch BFS report at its largest compared size must stay at
#: least this much faster than the per-node-batch path (giant_batch=False)
#: on the same numpy kernels.
BACKEND_GIANT_FLOOR = 3.0
#: The service load generator (``scripts/bench_service.py``) must sustain at
#: least this many queries per second across its whole catalog; the floor is
#: deliberately an order of magnitude under warm-cache measurements so it
#: catches a serving-layer regression (per-query traversals, lost batching)
#: rather than machine noise.
SERVICE_QPS_FLOOR = 25.0
#: The service load run must coalesce concurrently-submitted reads into
#: giant batches: total batched queries per executed batch across the
#: catalog.  A value near 1.0 means the worker loop stopped batching.
SERVICE_COALESCING_FLOOR = 3.0
FRACTIONAL_MAX_ROUNDS = 12
FRACTIONAL_TOLERANCE = 1e-5
#: Candidate targets per node in the backend reports: restricting deviations
#: keeps thousand-node equilibrium checks enumerable (C(6, 2) strategies per
#: node) while every check still pays one masked SSSP per candidate per node.
BACKEND_CANDIDATES_PER_NODE = 6


def time_call(fn, repeats):
    """Return (best wall-clock seconds, last result) over ``repeats`` runs."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_equilibrium(n, repeats, include_reference):
    game = UniformBBCGame(n, K)
    profile = random_initial_profile(game, seed=PROFILE_SEED)
    # A fresh engine per call: time the cold path (snapshot build + all SSSPs),
    # not a warmed cache, so the comparison against the oracle is fair.
    engine_time, engine_report = time_call(
        lambda: equilibrium_report(game, profile, engine=CostEngine(game)), repeats
    )
    row = {
        "task": "equilibrium_report",
        "n": n,
        "k": K,
        "engine_seconds": engine_time,
        "max_regret": engine_report.max_regret,
    }
    if include_reference:
        reference_time, reference_report = time_call(
            lambda: equilibrium_report(game, profile, engine=False), repeats
        )
        assert reference_report.max_regret == engine_report.max_regret
        row["reference_seconds"] = reference_time
        row["speedup"] = reference_time / engine_time
    return row


def bench_walk(n, repeats, include_reference):
    game = UniformBBCGame(n, K)
    initial = empty_initial_profile(game)

    def run(engine):
        return run_best_response_walk(
            game, initial, max_rounds=WALK_MAX_ROUNDS, engine=engine
        )

    # Fresh engine per timing so every repeat pays the cold path, matching
    # the per-call oracle construction of the reference.
    engine_time, engine_result = time_call(lambda: run(CostEngine(game)), repeats)
    row = {
        "task": "best_response_walk",
        "n": n,
        "k": K,
        "max_rounds": WALK_MAX_ROUNDS,
        "engine_seconds": engine_time,
        "probes": engine_result.probes,
        "deviations": engine_result.deviations,
    }
    if include_reference:
        reference_time, reference_result = time_call(lambda: run(False), repeats)
        assert reference_result.final_profile == engine_result.final_profile
        assert reference_result.probes == engine_result.probes
        row["reference_seconds"] = reference_time
        row["speedup"] = reference_time / engine_time
    return row


def bench_exhaustive_search(repeats, smoke):
    """Exhaustive search over a restricted (7, 2)-uniform profile grid.

    The full 15^7 product is out of reach for a benchmark, so the tail nodes
    are pinned to their first budget-maximal strategy and the head nodes
    sweep their full strategy sets — the same restricted-candidates call
    both paths support, exhausted to the end (``stop_at_first=False``) so
    the timing covers the whole grid.
    """
    game = UniformBBCGame(7, K)
    sets = candidate_strategy_sets(game, None, None)
    free = 2 if smoke else 3
    candidates = {node: sets[node][:1] for node in range(free, 7)}
    kwargs = dict(candidate_strategies=candidates, stop_at_first=False)

    sweep_time, sweep_summary = time_call(
        lambda: exhaustive_equilibrium_search(game, engine=CostEngine(game), **kwargs),
        repeats,
    )
    reference_time, reference_summary = time_call(
        lambda: exhaustive_equilibrium_search(game, engine=False, **kwargs), repeats
    )
    assert reference_summary == sweep_summary
    return {
        "task": "exhaustive_search",
        "n": 7,
        "k": K,
        "free_nodes": free,
        "profiles": sweep_summary.profiles_examined,
        "equilibria": sweep_summary.equilibria_found,
        "engine_seconds": sweep_time,
        "reference_seconds": reference_time,
        "speedup": reference_time / sweep_time,
    }


def bench_figure4(repeats, include_reference):
    engine_time, engine_results = time_call(
        lambda: reconstruct_figure4(max_results=1), repeats
    )
    row = {
        "task": "figure4_reconstruction",
        "n": 7,
        "k": K,
        "reconstructions": len(engine_results),
        "engine_seconds": engine_time,
    }
    if include_reference:
        reference_time, reference_results = time_call(
            lambda: reconstruct_figure4(max_results=1, engine=False), repeats
        )
        assert [r.profile for r in reference_results] == [
            r.profile for r in engine_results
        ]
        row["reference_seconds"] = reference_time
        row["speedup"] = reference_time / engine_time
    return row


def bench_study_grid(repeats, smoke):
    """Process-parallel study grid: serial vs fan-out over worker processes.

    On a single-CPU box the parallel run records the fork overhead rather
    than a speedup; ``cpus`` is stored alongside so the trajectory stays
    interpretable across machines.
    """
    n = 7 if smoke else 8
    starts = 3 if smoke else 6
    processes = default_processes()

    def run(process_count):
        return max_cost_first_convergence_study(
            n, K, num_starts=starts, max_rounds=50, seed=0, processes=process_count
        )

    serial_time, serial_rows = time_call(lambda: run(1), repeats)
    parallel_time, parallel_rows = time_call(lambda: run(max(processes, 2)), repeats)
    assert serial_rows == parallel_rows
    # The fault-tolerant runtime's counters for the parallel leg: all zero on
    # a healthy box, and the first place to look when a CI run goes sideways.
    reliability = last_run_stats()
    return {
        "task": "study_grid",
        "n": n,
        "k": K,
        "starts": starts,
        "cpus": os.cpu_count(),
        "processes": max(processes, 2),
        "serial_seconds": serial_time,
        "parallel_seconds": parallel_time,
        "scaling": serial_time / parallel_time,
        "crashed": reliability["crashed"],
        "retried": reliability["retried"],
        "pool_restarts": reliability["pool_restarts"],
        "serial_fallback_cells": reliability["serial_fallback_cells"],
    }


def bench_sharded_search(repeats, smoke, processes):
    """Sharded exhaustive search: serial sweep vs contiguous subrange shards.

    The same restricted (7, 2)-uniform grid as the sweep scenario, run once
    serially and once sharded over ``processes`` workers attached to the
    parent's shared-memory payload.  The summaries must match bit for bit —
    that is the sharding contract, not a tolerance — and the row records the
    wall-clock scaling plus the fault-runtime counters so a CI run that
    limped home on pool restarts is visible in the trajectory.
    """
    game = UniformBBCGame(7, K)
    sets = candidate_strategy_sets(game, None, None)
    free = 2 if smoke else 3
    candidates = {node: sets[node][:1] for node in range(free, 7)}
    kwargs = dict(
        candidate_strategies=candidates, stop_at_first=False, checkpoint_every=64
    )

    serial_time, serial_summary = time_call(
        lambda: exhaustive_equilibrium_search(game, **kwargs), repeats
    )
    sharded_time, sharded_summary = time_call(
        lambda: exhaustive_equilibrium_search(game, processes=processes, **kwargs),
        repeats,
    )
    assert sharded_summary == serial_summary
    reliability = last_run_stats()
    return {
        "task": "sharded_search",
        "n": 7,
        "k": K,
        "free_nodes": free,
        "profiles": serial_summary.profiles_examined,
        "cpus": os.cpu_count(),
        "processes": processes,
        "serial_seconds": serial_time,
        "parallel_seconds": sharded_time,
        "scaling": serial_time / sharded_time,
        "crashed": reliability["crashed"],
        "retried": reliability["retried"],
        "pool_restarts": reliability["pool_restarts"],
        "serial_fallback_cells": reliability["serial_fallback_cells"],
    }


def bench_fractional_dynamics(n, repeats):
    """Iterated fractional best responses from the empty profile.

    A fresh :class:`FractionalEngine` per timed call keeps the comparison
    cold-for-cold against the per-call FlowNetwork / dense-LP reference.
    Returns the row plus both final profiles so the report scenario can
    certify them without re-running the dynamics.
    """
    game = FractionalBBCGame(UniformBBCGame(n, K))
    initial = game.empty_profile()

    def run(engine):
        return iterated_best_response(
            game,
            initial,
            max_rounds=FRACTIONAL_MAX_ROUNDS,
            tolerance=FRACTIONAL_TOLERANCE,
            engine=engine,
        )

    engine_time, engine_result = time_call(lambda: run(FractionalEngine(game)), repeats)
    reference_time, reference_result = time_call(lambda: run(False), repeats)
    assert engine_result.rounds == reference_result.rounds
    assert engine_result.converged == reference_result.converged
    assert abs(engine_result.max_final_regret - reference_result.max_final_regret) < 1e-9
    row = {
        "task": "fractional_dynamics",
        "n": n,
        "k": K,
        "rounds": engine_result.rounds,
        "converged": engine_result.converged,
        "engine_seconds": engine_time,
        "reference_seconds": reference_time,
        "speedup": reference_time / engine_time,
    }
    return row, game, engine_result.profile


def bench_fractional_report(n, repeats, game, profile):
    """Epsilon-equilibrium certification of the dynamics' final profile."""
    engine_time, engine_report = time_call(
        lambda: epsilon_equilibrium_report(
            game, profile, FRACTIONAL_TOLERANCE, engine=FractionalEngine(game)
        ),
        repeats,
    )
    reference_time, reference_report = time_call(
        lambda: epsilon_equilibrium_report(
            game, profile, FRACTIONAL_TOLERANCE, engine=False
        ),
        repeats,
    )
    assert abs(engine_report.max_regret - reference_report.max_regret) < 1e-9
    return {
        "task": "fractional_report",
        "n": n,
        "k": K,
        "max_regret": engine_report.max_regret,
        "engine_seconds": engine_time,
        "reference_seconds": reference_time,
        "speedup": reference_time / engine_time,
    }


def _pr3_engine(game):
    """Reconstruct the PR 3 engine: drop-on-sync rows, per-element scoring."""
    return CostEngine(game, incremental=False, vectorized=False)


def bench_incremental_walk(n, rounds, repeats):
    """Long deviating walk: default engine vs the reconstructed PR 3 engine."""
    game = UniformBBCGame(n, K)
    initial = random_initial_profile(game, seed=PROFILE_SEED)

    def run(engine):
        return run_best_response_walk(game, initial, max_rounds=rounds, engine=engine)

    new_time, new_result = time_call(lambda: run(CostEngine(game)), repeats)
    pr3_time, pr3_result = time_call(lambda: run(_pr3_engine(game)), repeats)
    assert pr3_result.final_profile == new_result.final_profile
    assert pr3_result.probes == new_result.probes
    assert pr3_result.deviations == new_result.deviations
    return {
        "task": "incremental_walk",
        "n": n,
        "k": K,
        "max_rounds": rounds,
        "probes": new_result.probes,
        "deviations": new_result.deviations,
        "engine_seconds": new_time,
        "reference_seconds": pr3_time,
        "speedup": pr3_time / new_time,
    }


def bench_incremental_recheck(n, steps, repeats):
    """Equilibrium rechecks after single deviations: the repair hot path.

    A warmed engine re-certifies the profile after each of ``steps``
    single-node perturbations.  The default engine repairs its cached rows
    and patches the batched cost vectors in place; ``incremental=False``
    (drop) recomputes every invalidated row, and the PR 3 reconstruction
    additionally loses the vectorised scoring.
    """
    import random as random_module

    game = UniformBBCGame(n, K)
    rng = random_module.Random(PROFILE_SEED)
    nodes = list(game.nodes)
    sequence = [random_initial_profile(game, seed=PROFILE_SEED)]
    for _ in range(steps):
        node = rng.choice(nodes)
        others = [v for v in nodes if v != node]
        sequence.append(
            sequence[-1].with_strategy(node, frozenset(rng.sample(others, K)))
        )

    def timed(make_engine):
        best = None
        regrets = None
        for _ in range(repeats):
            engine = make_engine()
            equilibrium_report(game, sequence[0], engine=engine)  # warm
            start = time.perf_counter()
            regrets = [
                equilibrium_report(game, p, engine=engine).max_regret
                for p in sequence[1:]
            ]
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, regrets

    repair_time, repair_regrets = timed(lambda: CostEngine(game))
    drop_time, drop_regrets = timed(lambda: CostEngine(game, incremental=False))
    pr3_time, pr3_regrets = timed(lambda: _pr3_engine(game))
    assert repair_regrets == drop_regrets == pr3_regrets
    return {
        "task": "incremental_recheck",
        "n": n,
        "k": K,
        "perturbations": steps,
        "engine_seconds": repair_time,
        "drop_seconds": drop_time,
        "reference_seconds": pr3_time,
        "speedup": pr3_time / repair_time,
        "repair_vs_drop": drop_time / repair_time,
    }


def bench_incremental_sweep(repeats, smoke):
    """Restricted exhaustive sweep: default engine vs the PR 3 reconstruction."""
    game = UniformBBCGame(7, K)
    sets = candidate_strategy_sets(game, None, None)
    free = 2 if smoke else 3
    candidates = {node: sets[node][:1] for node in range(free, 7)}
    kwargs = dict(candidate_strategies=candidates, stop_at_first=False)

    new_time, new_summary = time_call(
        lambda: exhaustive_equilibrium_search(game, engine=CostEngine(game), **kwargs),
        repeats,
    )
    pr3_time, pr3_summary = time_call(
        lambda: exhaustive_equilibrium_search(game, engine=_pr3_engine(game), **kwargs),
        repeats,
    )
    assert pr3_summary == new_summary
    return {
        "task": "incremental_sweep",
        "n": 7,
        "k": K,
        "free_nodes": free,
        "profiles": new_summary.profiles_examined,
        "engine_seconds": new_time,
        "reference_seconds": pr3_time,
        "speedup": pr3_time / new_time,
    }


def _backend_available():
    """Whether the numpy traversal backend can be constructed at all."""
    from repro.engine import resolve_backend

    try:
        resolve_backend("numpy", 1)
    except ValueError:
        return False
    return True


def _backend_candidates(game, per_node, seed):
    """Deterministic per-node candidate-target restriction for big-n reports."""
    import random as random_module

    rng = random_module.Random(seed)
    nodes = list(game.nodes)
    return {
        u: rng.sample([v for v in nodes if v != u], min(per_node, len(nodes) - 1))
        for u in nodes
    }


def _backend_weighted_game(n, seed=5):
    """An integer-weighted game (lengths 2..9 on 6 arcs per node, 1 elsewhere).

    Non-uniform lengths route every row through the Dijkstra kernels, and the
    integer values keep the numpy backend in exact int64 space — the
    configuration the backend floor certifies.
    """
    import random as random_module

    from repro.core import BBCGame

    rng = random_module.Random(seed)
    lengths = {}
    for u in range(n):
        for v in rng.sample([x for x in range(n) if x != u], min(6, n - 1)):
            lengths[(u, v)] = float(rng.randint(2, 9))
    return BBCGame(nodes=range(n), link_lengths=lengths, default_budget=2.0)


def _timed_backend_report(game, profile, candidates, backend, repeats):
    """Best time of an equilibrium report on a cold engine of ``backend``.

    The engine (snapshot build, numpy CSR views) is constructed outside the
    timed region so the row records kernel time, not IndexedGame
    construction, which both backends share.
    """
    best = None
    report = None
    for _ in range(repeats):
        engine = CostEngine(game, backend=backend)
        start = time.perf_counter()
        report = equilibrium_report(game, profile, candidates=candidates, engine=engine)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, report


def bench_backend_report(game, kernel, n, repeats):
    """Python-vs-numpy kernels on one restricted-candidate equilibrium report."""
    profile = random_initial_profile(game, seed=PROFILE_SEED)
    candidates = _backend_candidates(game, BACKEND_CANDIDATES_PER_NODE, seed=11)
    numpy_time, numpy_report = _timed_backend_report(
        game, profile, candidates, "numpy", repeats
    )
    python_time, python_report = _timed_backend_report(
        game, profile, candidates, "python", repeats
    )
    assert numpy_report.responses == python_report.responses
    return {
        "task": f"backend_{kernel}_report",
        "kernel": kernel,
        "n": n,
        "k": K,
        "candidates_per_node": BACKEND_CANDIDATES_PER_NODE,
        "max_regret": numpy_report.max_regret,
        "engine_seconds": numpy_time,
        "reference_seconds": python_time,
        "speedup": python_time / numpy_time,
    }


def bench_backend_all_costs(game, kernel, n, repeats):
    """Python-vs-numpy kernels on a whole-profile ``all_costs`` sweep."""
    profile = random_initial_profile(game, seed=PROFILE_SEED)

    def timed(backend):
        best = None
        costs = None
        for _ in range(repeats):
            engine = CostEngine(game, backend=backend)
            start = time.perf_counter()
            costs = engine.all_costs(profile)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, costs

    numpy_time, numpy_costs = timed("numpy")
    python_time, python_costs = timed("python")
    assert numpy_costs == python_costs
    return {
        "task": f"backend_{kernel}_all_costs",
        "kernel": kernel,
        "n": n,
        "k": K,
        "engine_seconds": numpy_time,
        "reference_seconds": python_time,
        "speedup": python_time / numpy_time,
    }


def _timed_giant_report(game, profile, candidates, backend, giant_batch, repeats):
    """Best time of a report on a cold engine; returns the best run's engine too."""
    best = None
    report = None
    engine = None
    for _ in range(repeats):
        candidate_engine = CostEngine(game, backend=backend, giant_batch=giant_batch)
        start = time.perf_counter()
        result = equilibrium_report(
            game, profile, candidates=candidates, engine=candidate_engine
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, report, engine = elapsed, result, candidate_engine
    return best, report, engine


def bench_backend_giant_report(
    game,
    kernel,
    n,
    repeats,
    include_reference,
    backend="numpy",
    candidates_per_node=BACKEND_CANDIDATES_PER_NODE,
):
    """Giant chunked multi-mask traversals vs the per-node-batch path.

    Both arms run the same kernels on the same restricted-candidate report;
    the only difference is whether ``equilibrium_report``'s staged row plan
    fills the cache in giant per-row-masked chunks (``giant_batch=True``,
    the default) or one small batch per probed node (``giant_batch=False``,
    the PR 5 behaviour).  The row doubles as a bottleneck profile:
    ``traversal_seconds`` is the engine's in-kernel time and
    ``scoring_seconds`` the rest of the report (candidate enumeration,
    vectorised scoring, bookkeeping), so the trajectory records where the
    next optimisation target sits.  ``include_reference=False`` records a
    giant-only row for sizes where the per-node arm would take minutes.
    """
    profile = random_initial_profile(game, seed=PROFILE_SEED)
    candidates = _backend_candidates(game, candidates_per_node, seed=11)
    giant_time, report, engine = _timed_giant_report(
        game, profile, candidates, backend, True, repeats
    )
    stats = engine.snapshot_stats()
    row = {
        "task": f"backend_giant_{kernel}_report",
        "kernel": kernel,
        "backend": backend,
        "n": n,
        "k": K,
        "candidates_per_node": candidates_per_node,
        "max_regret": report.max_regret,
        "engine_seconds": giant_time,
        "traversal_seconds": stats["traversal_seconds"],
        "scoring_seconds": max(0.0, giant_time - stats["traversal_seconds"]),
        "giant_batch_traversals": stats["giant_batch_traversals"],
        "giant_batch_rows": stats["giant_batch_rows"],
        "rows_per_traversal": (
            stats["giant_batch_rows"] / stats["giant_batch_traversals"]
            if stats["giant_batch_traversals"]
            else 0.0
        ),
        "rows_evicted": stats["rows_evicted"],
        "chunks_evicted": stats["chunks_evicted"],
        "evicted_recomputes": stats["evicted_recomputes"],
        "cache_bytes": stats["cache_bytes"],
        "memory_budget_bytes": stats["memory_budget_bytes"],
    }
    if include_reference:
        per_node_time, per_node_report, _ = _timed_giant_report(
            game, profile, candidates, backend, False, repeats
        )
        assert per_node_report.responses == report.responses
        row["reference_seconds"] = per_node_time
        row["speedup"] = per_node_time / giant_time
    print(
        f"  giant stats: {stats['giant_batch_rows']} rows in "
        f"{stats['giant_batch_traversals']} traversals "
        f"({row['rows_per_traversal']:.0f} rows/traversal), "
        f"{stats['chunks_evicted']} chunks / {stats['rows_evicted']} rows evicted, "
        f"{stats['evicted_recomputes']} recomputes after eviction, "
        f"cache {stats['cache_bytes'] / 2**20:.1f} MiB of "
        f"{stats['memory_budget_bytes'] / 2**20:.0f} MiB budget"
    )
    print(
        f"  profile: traversal {row['traversal_seconds']:.3f}s, "
        f"scoring+enumeration {row['scoring_seconds']:.3f}s"
    )
    return row


def _python_giant_fallback_check():
    """The minimal-deps leg: giant-batch planning on the pure-list kernels.

    Without numpy there is no vectorised arm to compare, but the staged row
    plan still drains through the list multi-kernels one chunk at a time —
    this checks that fallback end to end against the dict oracle and reports
    how it ran, recording nothing (there is no speedup to gate).
    """
    game = UniformBBCGame(24, K)
    profile = random_initial_profile(game, seed=PROFILE_SEED)
    candidates = _backend_candidates(game, BACKEND_CANDIDATES_PER_NODE, seed=11)
    engine = CostEngine(game, backend="python")
    start = time.perf_counter()
    report = equilibrium_report(game, profile, candidates=candidates, engine=engine)
    elapsed = time.perf_counter() - start
    reference = equilibrium_report(game, profile, candidates=candidates, engine=False)
    assert report.responses == reference.responses
    assert engine.stats["giant_batch_traversals"] > 0
    print(
        "numpy is not installed; ran the python-kernel giant-batch fallback "
        f"check instead: n=24 report in {elapsed:.3f}s, "
        f"{engine.stats['giant_batch_rows']} rows in "
        f"{engine.stats['giant_batch_traversals']} giant traversals, "
        "matches the reference oracle"
    )
    return 0


def run_backend_scenarios(args, repeats):
    sizes = [32, 64] if args.smoke else [64, 256, 1024]
    rows = []
    for n in sizes:
        print(f"benchmarking backend report n={n} (BFS kernels) ...")
        rows.append(bench_backend_report(UniformBBCGame(n, K), "bfs", n, repeats))
        print(f"benchmarking backend report n={n} (Dijkstra kernels) ...")
        rows.append(
            bench_backend_report(_backend_weighted_game(n), "dijkstra", n, repeats)
        )
    largest = sizes[-1]
    print(f"benchmarking backend all_costs n={largest} ...")
    rows.append(
        bench_backend_all_costs(UniformBBCGame(largest, K), "bfs", largest, repeats)
    )
    rows.append(
        bench_backend_all_costs(
            _backend_weighted_game(largest), "dijkstra", largest, repeats
        )
    )
    if args.smoke:
        # Tiny giant-batch runs on both backends: the point is exercising the
        # staged-plan path end to end, not the ratios.
        for backend in ("numpy", "python"):
            print(f"benchmarking giant-batch report n=48 ({backend} kernels) ...")
            rows.append(
                bench_backend_giant_report(
                    UniformBBCGame(48, K),
                    "bfs",
                    48,
                    repeats,
                    include_reference=True,
                    backend=backend,
                )
            )
        sizes = sizes + [48]
    else:
        n = 4096
        print(f"benchmarking giant-batch report n={n} (BFS kernels) ...")
        rows.append(
            bench_backend_giant_report(
                UniformBBCGame(n, K), "bfs", n, repeats, include_reference=True
            )
        )
        print(f"benchmarking giant-batch report n={n} (Dijkstra kernels) ...")
        rows.append(
            bench_backend_giant_report(
                _backend_weighted_game(n), "dijkstra", n, repeats, include_reference=True
            )
        )
        n = 16384
        print(f"benchmarking giant-batch report n={n} (BFS kernels, giant only) ...")
        rows.append(
            bench_backend_giant_report(
                UniformBBCGame(n, K),
                "bfs",
                n,
                repeats,
                include_reference=False,
                candidates_per_node=4,
            )
        )
        sizes = sizes + [4096, 16384]
    return sizes, rows


# --------------------------------------------------------------------- #
# Floor checks (shared by post-run gating and --check-floors)
# --------------------------------------------------------------------- #
def _core_floor_violations(rows):
    return [
        f"core: equilibrium_report speedup {row['speedup']:.2f}x at n={row['n']} "
        f"is below {CORE_REPORT_FLOOR:g}x"
        for row in rows
        if row["task"] == "equilibrium_report"
        and "speedup" in row
        and row["n"] >= 32
        and row["speedup"] < CORE_REPORT_FLOOR
    ]


def _sweep_floor_violations(rows):
    violations = [
        f"sweep: exhaustive_search speedup {row['speedup']:.2f}x is below "
        f"{SWEEP_SPEEDUP_FLOOR:g}x"
        for row in rows
        if row["task"] == "exhaustive_search" and row["speedup"] < SWEEP_SPEEDUP_FLOOR
    ]
    violations.extend(
        f"sweep: sharded_search scaling {row['scaling']:.2f}x with "
        f"{row['processes']} workers on {row['cpus']} CPUs is below "
        f"{SHARDED_SCALING_FLOOR:g}x"
        for row in rows
        if row["task"] == "sharded_search"
        and row.get("processes", 1) >= 2
        and (row.get("cpus") or 1) >= 2
        and row["scaling"] < SHARDED_SCALING_FLOOR
    )
    return violations


def _largest_row(rows, task):
    matching = [row for row in rows if row["task"] == task]
    return max(matching, key=lambda row: row["n"]) if matching else None


def _fractional_floor_violations(rows):
    largest = _largest_row(rows, "fractional_dynamics")
    if largest is not None and largest["speedup"] < FRACTIONAL_SPEEDUP_FLOOR:
        return [
            f"fractional: fractional_dynamics speedup {largest['speedup']:.2f}x at "
            f"n={largest['n']} is below {FRACTIONAL_SPEEDUP_FLOOR:g}x"
        ]
    return []


def _incremental_floor_violations(rows):
    largest = _largest_row(rows, "incremental_walk")
    if largest is not None and largest["speedup"] < INCREMENTAL_WALK_FLOOR:
        return [
            f"incremental: incremental_walk speedup {largest['speedup']:.2f}x at "
            f"n={largest['n']} is below {INCREMENTAL_WALK_FLOOR:g}x"
        ]
    return []


def _backend_floor_violations(rows):
    violations = []
    largest = _largest_row(rows, "backend_dijkstra_report")
    if largest is not None and largest["speedup"] < BACKEND_DIJKSTRA_FLOOR:
        violations.append(
            f"backend: backend_dijkstra_report speedup {largest['speedup']:.2f}x at "
            f"n={largest['n']} is below {BACKEND_DIJKSTRA_FLOOR:g}x"
        )
    # The giant-only rows (no per-node arm at the largest sizes) carry no
    # speedup; the floor gates the largest *compared* giant BFS report.
    compared = [
        row
        for row in rows
        if row["task"] == "backend_giant_bfs_report" and "speedup" in row
    ]
    if compared:
        largest = max(compared, key=lambda row: row["n"])
        if largest["speedup"] < BACKEND_GIANT_FLOOR:
            violations.append(
                f"backend: backend_giant_bfs_report speedup "
                f"{largest['speedup']:.2f}x at n={largest['n']} is below "
                f"{BACKEND_GIANT_FLOOR:g}x"
            )
    return violations


def _service_floor_violations(rows):
    """Floor checks for the ``BENCH_service.json`` load-generator recording."""
    total = next((row for row in rows if row.get("task") == "service_total"), None)
    if total is None:
        return ["service: recording has no service_total row"]
    violations = []
    if total["qps"] < SERVICE_QPS_FLOOR:
        violations.append(
            f"service: total throughput {total['qps']:.1f} q/s is below "
            f"{SERVICE_QPS_FLOOR:g} q/s"
        )
    if total["coalescing_factor"] < SERVICE_COALESCING_FLOOR:
        violations.append(
            f"service: batch coalescing factor {total['coalescing_factor']:.2f} "
            f"is below {SERVICE_COALESCING_FLOOR:g}"
        )
    return violations


#: mode -> (results key, meta key, checker).  Smoke-recorded rows are skipped:
#: smoke sizes are deliberately tiny and their ratios are noise, exactly as
#: the per-mode post-run gates always treated them.
FLOOR_CHECKS = {
    "core": ("results", "core_meta", _core_floor_violations),
    "sweep": ("sweep_results", "sweep_meta", _sweep_floor_violations),
    "fractional": ("fractional_results", "fractional_meta", _fractional_floor_violations),
    "incremental": (
        "incremental_results",
        "incremental_meta",
        _incremental_floor_violations,
    ),
    "backend": ("backend_results", "backend_meta", _backend_floor_violations),
}


def floor_violations(payload, only_mode=None):
    """Return every floor violation recorded in ``payload`` (non-smoke rows)."""
    violations = []
    for mode, (results_key, meta_key, checker) in FLOOR_CHECKS.items():
        if only_mode is not None and mode != only_mode:
            continue
        rows = payload.get(results_key)
        if not rows:
            continue
        if payload.get(meta_key, {}).get("smoke"):
            continue
        violations.extend(checker(rows))
    return violations


def check_floors(json_path, service_json_path=None):
    """The ``--check-floors`` entry point: validate the recorded trajectory.

    Also validates the service load-generator recording
    (``BENCH_service.json``, written by ``scripts/bench_service.py``) when
    one sits next to ``json_path`` — the serving layer shares this one
    regression gate rather than growing a second checker.

    Exit codes are distinct so CI can tell the failure classes apart:
    ``1`` for a missing recording or a floor violation, ``2`` for a
    recording that exists but cannot be parsed (corrupt or truncated —
    which the atomic writes should make impossible short of disk
    corruption, hence its own loud signal).
    """
    if not json_path.exists():
        print(f"no {json_path} to check; run the benchmarks first", file=sys.stderr)
        return 1
    try:
        payload = json.loads(json_path.read_text())
    except ValueError as exc:
        print(
            f"CORRUPT RECORDING: {json_path} exists but is not parseable JSON "
            f"({exc}); the benchmark writes are atomic, so this points at disk "
            "corruption or a manual edit — delete the file and re-run the "
            "benchmarks",
            file=sys.stderr,
        )
        return 2
    violations = floor_violations(payload)
    checked = [
        mode
        for mode, (results_key, meta_key, _) in FLOOR_CHECKS.items()
        if payload.get(results_key) and not payload.get(meta_key, {}).get("smoke")
    ]
    if service_json_path is None:
        service_json_path = json_path.parent / "BENCH_service.json"
    if service_json_path.exists():
        try:
            service_payload = json.loads(service_json_path.read_text())
        except ValueError as exc:
            print(
                f"CORRUPT RECORDING: {service_json_path} exists but is not "
                f"parseable JSON ({exc}); delete the file and re-run "
                "scripts/bench_service.py",
                file=sys.stderr,
            )
            return 2
        if not service_payload.get("service_meta", {}).get("smoke"):
            violations.extend(
                _service_floor_violations(
                    service_payload.get("service_results") or []
                )
            )
            checked.append("service")
    if violations:
        for violation in violations:
            print(f"FLOOR VIOLATION: {violation}", file=sys.stderr)
        return 1
    print(f"floors ok for recorded modes: {', '.join(checked) if checked else '(none)'}")
    return 0


#: The rows README.md's trajectory table shows: one representative task per
#: recorded mode (the task each mode's floor gates, where one exists).
README_TABLE_TASKS = (
    ("results", "equilibrium_report", "Equilibrium report (flat-array engine vs dict oracle)"),
    ("sweep_results", "exhaustive_search", "Exhaustive sweep (Gray-code + memoised engine)"),
    ("incremental_results", "incremental_walk", "Best-response walk (incremental row repair)"),
    ("fractional_results", "fractional_dynamics", "Fractional dynamics (warm LP engine vs reference)"),
    ("backend_results", "backend_dijkstra_report", "Dijkstra report (numpy kernels vs list kernels)"),
    ("backend_results", "backend_giant_bfs_report", "Giant-batch BFS report (vs per-node batches)"),
)


def print_readme_table(json_path):
    """Print the recorded trajectory as the markdown table README.md embeds.

    The table is *generated from* ``BENCH_speed.json`` — after re-recording
    a mode, re-run ``--readme-table`` and paste the output over the table in
    README.md so the prose never drifts from the recording.
    """
    if not json_path.exists():
        print(f"no {json_path}; run the benchmarks first", file=sys.stderr)
        return 1
    payload = json.loads(json_path.read_text())
    lines = [
        "| Scenario | n | Reference [s] | Engine [s] | Speedup |",
        "| --- | ---: | ---: | ---: | ---: |",
    ]
    for results_key, task, label in README_TABLE_TASKS:
        rows = [
            row
            for row in payload.get(results_key, [])
            if row.get("task") == task and row.get("speedup") is not None
        ]
        if not rows:
            continue
        row = max(rows, key=lambda r: r["n"])
        lines.append(
            f"| {label} | {row['n']} | {row['reference_seconds']:.2f} "
            f"| {row['engine_seconds']:.2f} | {row['speedup']:.1f}x |"
        )
    print("\n".join(lines))
    return 0


def render_table(rows):
    lines = [
        f"{'task':<30} {'n':>5} {'reference[s]':>13} {'engine[s]':>10} {'speedup':>8}"
    ]
    for row in rows:
        # The study-grid scenario times serial vs parallel instead of
        # reference vs engine; the columns line up the same way.
        reference = row.get("reference_seconds", row.get("serial_seconds"))
        engine = row.get("engine_seconds", row.get("parallel_seconds"))
        speedup = row.get("speedup", row.get("scaling"))
        lines.append(
            f"{row['task']:<30} {row['n']:>5} "
            f"{(f'{reference:.4f}' if reference is not None else '-'):>13} "
            f"{engine:>10.4f} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>8}"
        )
    return "\n".join(lines)


def run_core_scenarios(args, repeats):
    sizes = [8, 16] if args.smoke else [8, 16, 32, 64]
    rows = []
    for n in sizes:
        include_reference = n <= args.max_reference_n
        print(f"benchmarking n={n} (reference={'yes' if include_reference else 'no'}) ...")
        rows.append(bench_equilibrium(n, repeats, include_reference))
        rows.append(bench_walk(n, repeats, include_reference))
    return sizes, rows


def run_sweep_scenarios(args, repeats):
    print("benchmarking exhaustive equilibrium search (sweep vs from-scratch) ...")
    rows = [bench_exhaustive_search(repeats, args.smoke)]
    print("benchmarking figure-4 completion scan ...")
    rows.append(bench_figure4(repeats, include_reference=not args.smoke))
    print("benchmarking process-parallel study grid ...")
    grid_row = bench_study_grid(repeats, args.smoke)
    print(
        "study grid reliability: "
        f"crashed={grid_row['crashed']} retried={grid_row['retried']} "
        f"pool_restarts={grid_row['pool_restarts']} "
        f"serial_fallback_cells={grid_row['serial_fallback_cells']}"
    )
    rows.append(grid_row)
    processes = args.processes or max(default_processes(), 2)
    print(f"benchmarking sharded exhaustive search ({processes} workers) ...")
    sharded_row = bench_sharded_search(repeats, args.smoke, processes)
    print(
        "sharded search reliability: "
        f"crashed={sharded_row['crashed']} retried={sharded_row['retried']} "
        f"pool_restarts={sharded_row['pool_restarts']} "
        f"serial_fallback_cells={sharded_row['serial_fallback_cells']}"
    )
    rows.append(sharded_row)
    return rows


def run_incremental_scenarios(args, repeats):
    sizes = [16] if args.smoke else [32, 64]
    rounds = 6 if args.smoke else 30
    rows = []
    for n in sizes:
        print(f"benchmarking incremental walk n={n} (engine vs PR 3 reconstruction) ...")
        rows.append(bench_incremental_walk(n, rounds, repeats))
    n = 16 if args.smoke else 64
    steps = 4 if args.smoke else 12
    print(f"benchmarking single-deviation equilibrium rechecks n={n} ...")
    rows.append(bench_incremental_recheck(n, steps, repeats))
    print("benchmarking incremental sweep (exhaustive search) ...")
    rows.append(bench_incremental_sweep(repeats, args.smoke))
    return sizes, rows


def run_fractional_scenarios(args, repeats):
    sizes = [5, 6] if args.smoke else [8, 10, 12, 14]
    rows = []
    for n in sizes:
        print(f"benchmarking fractional dynamics n={n} (engine vs reference) ...")
        row, game, profile = bench_fractional_dynamics(n, repeats)
        rows.append(row)
        print(f"benchmarking fractional equilibrium report n={n} ...")
        rows.append(bench_fractional_report(n, repeats, game, profile))
    return sizes, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes and one repeat so the whole run takes seconds",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="run the sweep-engine scenarios (exhaustive search, figure-4 "
        "scan, parallel study grid) instead of the core per-call scenarios",
    )
    parser.add_argument(
        "--fractional",
        action="store_true",
        help="run the fractional-game scenarios (iterated best-response "
        "dynamics and epsilon-equilibrium reports, FractionalEngine vs the "
        "FlowNetwork / dense-LP reference) instead of the core scenarios",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="run the incremental-engine scenarios (long walks, "
        "single-deviation equilibrium rechecks, restricted exhaustive sweep) "
        "against a reconstruction of the PR 3 engine",
    )
    parser.add_argument(
        "--backend",
        action="store_true",
        help="run the traversal-backend scenarios (restricted-candidate "
        "equilibrium reports and all_costs sweeps, numpy frontier kernels vs "
        "the list kernels) instead of the core scenarios",
    )
    parser.add_argument(
        "--check-floors",
        action="store_true",
        help="run no benchmarks; exit non-zero if any recorded (non-smoke) "
        "mode in BENCH_speed.json is below its enforced speedup floor",
    )
    parser.add_argument(
        "--readme-table",
        action="store_true",
        help="run no benchmarks; print the recorded trajectory as the "
        "markdown table README.md embeds (regenerate it after re-recording)",
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per cell")
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker count for the --sweep sharded-search scenario (default: "
        "the affinity-aware default, at least 2 so the sharded path is real)",
    )
    parser.add_argument(
        "--max-reference-n",
        type=int,
        default=32,
        help="largest n at which the dict-based reference path is also timed",
    )
    args = parser.parse_args()

    json_path = OUTPUT_DIR / "BENCH_speed.json"
    if args.readme_table:
        return print_readme_table(json_path)
    if args.check_floors:
        if args.sweep or args.fractional or args.incremental or args.backend or args.smoke:
            parser.error("--check-floors runs no benchmarks; pass it alone")
        return check_floors(json_path)

    if args.repeats is not None:
        repeats = args.repeats
    elif args.smoke or args.incremental or args.backend:
        # The incremental walks and the backend reports time deliberately
        # slow baselines; one repeat keeps each mode under a couple of
        # minutes.
        repeats = 1
    else:
        repeats = 3
    if repeats < 1:
        parser.error(f"--repeats must be at least 1 (got {repeats})")

    OUTPUT_DIR.mkdir(exist_ok=True)
    # Each mode owns its own key in the payload and appends around the other
    # mode's last results, so `--sweep` runs extend the trajectory instead of
    # erasing the core scenarios (and vice versa).
    payload = {}
    if json_path.exists():
        try:
            payload = json.loads(json_path.read_text())
        except ValueError:
            payload = {}
    payload.update({"benchmark": "bench_speed", "k": K})
    # Provenance lives next to each mode's rows: the other mode's results are
    # preserved as-is, so top-level repeats/smoke would misstate how they ran.
    meta = {
        "repeats": repeats,
        "smoke": args.smoke,
        "python": platform.python_version(),
    }

    if sum(map(bool, (args.sweep, args.fractional, args.incremental, args.backend))) > 1:
        parser.error(
            "--sweep, --fractional, --incremental, and --backend are mutually exclusive"
        )

    if args.backend and not _backend_available():
        # The minimal-deps CI leg lands here: the selector refuses "numpy"
        # and every auto resolution degrades to the list kernels, so there is
        # no vectorised arm to record — but the giant-batch plan still has a
        # pure-python drain path, which this checks end to end.
        return _python_giant_fallback_check()

    if args.sweep:
        rows = run_sweep_scenarios(args, repeats)
        payload["sweep_results"] = rows
        payload["sweep_meta"] = meta
    elif args.backend:
        sizes, rows = run_backend_scenarios(args, repeats)
        payload["backend_sizes"] = sizes
        payload["backend_results"] = rows
        payload["backend_meta"] = meta
    elif args.incremental:
        sizes, rows = run_incremental_scenarios(args, repeats)
        payload["incremental_sizes"] = sizes
        payload["incremental_results"] = rows
        payload["incremental_meta"] = meta
    elif args.fractional:
        sizes, rows = run_fractional_scenarios(args, repeats)
        payload["fractional_sizes"] = sizes
        payload["fractional_results"] = rows
        payload["fractional_meta"] = meta
    else:
        sizes, rows = run_core_scenarios(args, repeats)
        payload["sizes"] = sizes
        payload["results"] = rows
        payload["core_meta"] = meta
    payload.pop("repeats", None)  # top-level provenance from older payloads
    payload.pop("smoke", None)
    payload.pop("python", None)

    # Atomic writes (tmp + os.replace): a benchmark killed mid-write must
    # leave the previous recording intact, never a truncated JSON that a
    # later --check-floors run would choke on.
    atomic_write_text(json_path, json.dumps(payload, indent=2) + "\n")
    table = render_table(rows)
    if args.sweep:
        mode, table_name = "sweep", "BENCH_speed_sweep.txt"
    elif args.incremental:
        mode, table_name = "incremental", "BENCH_speed_incremental.txt"
    elif args.fractional:
        mode, table_name = "fractional", "BENCH_speed_fractional.txt"
    elif args.backend:
        mode, table_name = "backend", "BENCH_speed_backend.txt"
    else:
        mode, table_name = "core", "BENCH_speed.txt"
    table_path = OUTPUT_DIR / table_name
    atomic_write_text(table_path, table + "\n")
    print("\n" + table)
    print(f"\nwrote {json_path}")

    if args.smoke:
        # Smoke sizes are deliberately tiny and their ratios are noise; the
        # floors only gate real recordings (and --check-floors skips
        # smoke-recorded modes for the same reason).
        return 0
    violations = floor_violations(payload, only_mode=mode)
    for violation in violations:
        print(f"WARNING: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
