"""Social-network formation with heterogeneous interests.

The "friend finder" motivation: people have bounded attention (a budget of
ties) and asymmetric interest in one another.  This example builds a
clustered-interest game, runs best-response dynamics, and examines whether
the selfish network serves the community well (price-of-anarchy style
comparison) and how unfair the outcome is across members.

Run with ``python examples/social_preferences.py``.
"""

from repro.analysis import format_table
from repro.core import equilibrium_report, fairness_report
from repro.dynamics import run_best_response_walk
from repro.experiments import interest_cluster_game, random_initial_profile, random_preference_game


def main() -> None:
    # Two communities of five people; strong in-cluster interest, weak across.
    game = interest_cluster_game(num_clusters=2, cluster_size=5, budget=2)
    initial = random_initial_profile(game, seed=1)
    walk = run_best_response_walk(game, initial, max_rounds=60)
    report = equilibrium_report(game, walk.final_profile)
    fairness = fairness_report(game, walk.final_profile)

    print("clustered-interest network (10 people, 2 ties each)")
    print("  reached pure equilibrium:", walk.reached_equilibrium and report.is_equilibrium)
    print("  social cost:", game.social_cost(walk.final_profile))
    print("  cost spread across members: "
          f"min={fairness.min_cost:.0f} max={fairness.max_cost:.0f} ratio={fairness.ratio:.2f}")
    print("\nfinal friendship graph:")
    print(walk.final_profile.describe())

    # Sparse idiosyncratic interests: who ends up poorly served?
    sparse = random_preference_game(9, budget=1, preference_density=0.4, seed=5)
    sparse_walk = run_best_response_walk(sparse, random_initial_profile(sparse, seed=2), max_rounds=60)
    costs = sparse.all_costs(sparse_walk.final_profile)
    rows = [
        {"person": node, "ties": sorted(sparse_walk.final_profile.strategy(node)), "cost": cost}
        for node, cost in sorted(costs.items())
    ]
    print()
    print(format_table(rows, title="Sparse-interest network: per-person outcome (budget 1)"))
    print("walk cycled (no stable network):", sparse_walk.cycle_detected)


if __name__ == "__main__":
    main()
