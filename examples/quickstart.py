"""Quickstart: define a uniform BBC game, run dynamics, verify an equilibrium.

Run with ``python examples/quickstart.py``.
"""

from repro import StrategyProfile, UniformBBCGame, best_response, equilibrium_report
from repro.constructions import build_forest_of_willows
from repro.dynamics import run_best_response_walk
from repro.experiments import random_initial_profile


def main() -> None:
    # 1. An (8, 2)-uniform game: 8 players, each may buy 2 outgoing links.
    game = UniformBBCGame(8, 2)
    print(game.describe())

    # 2. Start from a random configuration and let nodes best-respond.
    initial = random_initial_profile(game, seed=7)
    print("\ninitial configuration:")
    print(initial.describe())
    print("initial social cost:", game.social_cost(initial))

    walk = run_best_response_walk(game, initial, max_rounds=50, record_steps=True)
    print(f"\nwalk: {walk.deviations} deviations over {walk.rounds} rounds")
    print("reached a pure Nash equilibrium:", walk.reached_equilibrium)
    print("final social cost:", game.social_cost(walk.final_profile))

    # 3. Inspect a single node's incentives in the final configuration.
    response = best_response(game, walk.final_profile, node=0)
    print(f"\nnode 0: current cost {response.current_cost}, best achievable {response.best_cost}")

    # 4. The paper's explicit stable family: a Forest of Willows.
    forest = build_forest_of_willows(k=2, height=2, tail_length=1)
    report = equilibrium_report(forest.game, forest.profile)
    print(f"\nForest of Willows (k=2, h=2, l=1): n={forest.num_nodes}")
    print("is a pure Nash equilibrium:", report.is_equilibrium)
    print("social cost:", forest.social_cost())

    # 5. Hand-built profiles work too: the directed cycle for k = 1.
    cycle_game = UniformBBCGame(6, 1)
    cycle = StrategyProfile({i: {(i + 1) % 6} for i in range(6)})
    print("\n6-cycle stable for (6,1)-uniform game:", equilibrium_report(cycle_game, cycle).is_equilibrium)


if __name__ == "__main__":
    main()
