"""Overlay / P2P neighbour selection: regularity versus stability.

The paper's overlay-network motivation asks whether a structured overlay
(every peer using the same offset rule, as in Chord) can be a Nash
equilibrium of selfish neighbour selection.  Theorem 5 says no once the
network is large enough; this example measures it, then shows what selfish
dynamics produce instead and how far from the social optimum they land.

Run with ``python examples/p2p_overlay.py``.
"""

from repro.analysis import format_table
from repro.constructions import (
    chord_like_offsets,
    is_cayley_stable,
    kary_tree_with_back_links,
    offset_graph,
    theorem5_deviation,
)
from repro.core import UniformBBCGame, equilibrium_report
from repro.dynamics import run_best_response_walk
from repro.experiments import random_initial_profile


def main() -> None:
    k = 2
    rows = []
    for n in (12, 16, 24, 32):
        offsets = chord_like_offsets(n, k)
        overlay = offset_graph(n, offsets)
        deviations = theorem5_deviation(overlay)
        best_gain = max((d.improvement for d in deviations), default=0.0)
        rows.append(
            {
                "peers": n,
                "offsets": str(list(offsets)),
                "overlay_is_stable": is_cayley_stable(overlay),
                "gain_from_thm5_rewire": best_gain,
                "overlay_social_cost": overlay.game.social_cost(overlay.profile),
            }
        )
    print(format_table(rows, title="Structured overlays are not Nash equilibria (Theorem 5)"))

    # What do selfish peers converge to instead?
    n = 16
    game = UniformBBCGame(n, k)
    walk = run_best_response_walk(game, random_initial_profile(game, seed=3), max_rounds=60)
    tree_baseline = kary_tree_with_back_links(n, k)
    comparison = [
        {
            "configuration": "selfish best-response outcome",
            "stable": equilibrium_report(game, walk.final_profile).is_equilibrium,
            "social_cost": game.social_cost(walk.final_profile),
        },
        {
            "configuration": "engineered tree + back links",
            "stable": equilibrium_report(tree_baseline.game, tree_baseline.profile).is_equilibrium,
            "social_cost": tree_baseline.social_cost(),
        },
        {
            "configuration": "analytic optimum lower bound",
            "stable": "-",
            "social_cost": game.minimum_possible_social_cost(),
        },
    ]
    print()
    print(format_table(comparison, title=f"Selfish outcome vs engineered overlay (n={n}, k={k})"))


if __name__ == "__main__":
    main()
