"""Campaign-on-a-budget: non-uniform preferences, lengths, and fractional links.

The introduction's campaign-manager story: a few strategic actors with
limited budgets buy connections to maximise influence (minimise weighted
distance) over a landscape of operatives with their own agendas.  This
example builds a small non-uniform game with latency-like link lengths,
compares integral equilibrium search with the fractional relaxation of
Theorem 3 (buying fractions of relationships always admits an equilibrium),
and prints both outcomes.

Run with ``python examples/campaign_influence.py``.
"""

from repro.analysis import format_table
from repro.core import (
    FractionalBBCGame,
    equilibrium_report,
    iterated_best_response,
    sampled_equilibrium_search,
)
from repro.dynamics import run_best_response_walk
from repro.experiments import latency_overlay_game, random_initial_profile, random_preference_game


def main() -> None:
    # A 7-actor influence game: sparse, asymmetric interests, budget 1 each.
    game = random_preference_game(7, budget=1, preference_density=0.5, seed=42)

    # Integral links: search for a pure equilibrium by sampling + dynamics.
    sampled = sampled_equilibrium_search(game, samples=60, seed=0)
    walk = run_best_response_walk(game, random_initial_profile(game, seed=0), max_rounds=60)
    print("integral campaign game (links are all-or-nothing)")
    print("  equilibria among 60 sampled configurations:", sampled.equilibria_found)
    print("  best-response dynamics converged:", walk.reached_equilibrium,
          "| cycled:", walk.cycle_detected)

    # Fractional links (Theorem 3): an equilibrium always exists.
    fractional = FractionalBBCGame(game)
    result = iterated_best_response(fractional, max_rounds=15, tolerance=1e-4)
    print("\nfractional campaign game (time-shared relationships)")
    print("  rounds of best response:", result.rounds)
    print("  converged to an epsilon-equilibrium:", result.converged,
          f"(max regret {result.max_final_regret:.2e})")
    print("  fractional allocation:")
    print(result.profile.describe())

    # Latency-aware variant: same story on a non-uniform-length substrate.
    overlay = latency_overlay_game(6, budget=2, seed=9)
    overlay_walk = run_best_response_walk(overlay, random_initial_profile(overlay, seed=4), max_rounds=60)
    report = equilibrium_report(overlay, overlay_walk.final_profile)
    rows = [
        {
            "actor": node,
            "buys": sorted(overlay_walk.final_profile.strategy(node)),
            "weighted_distance": round(cost, 1),
        }
        for node, cost in sorted(overlay.all_costs(overlay_walk.final_profile).items())
    ]
    print()
    print(format_table(rows, title="Latency-aware influence network (budget 2)"))
    print("stable:", report.is_equilibrium)


if __name__ == "__main__":
    main()
