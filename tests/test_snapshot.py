"""The immutable EngineSnapshot layer and its cross-process byte packing.

These tests pin the "Snapshot ownership and lifetime" contract documented in
:mod:`repro.engine`:

* the engine publishes a *fresh* frozen snapshot per profile version and
  never mutates an old one — a reader holding a snapshot is immune to later
  ``sync`` calls;
* :func:`pack_payload` / :func:`unpack_payload` round-trip an arbitrary
  header object plus named numpy arrays through one contiguous byte layout,
  returning read-only zero-copy views on the full leg;
* :func:`export_tables` / :func:`restore_tables` ship an ``IndexedGame``'s
  probed static tables bit-exactly, so an adopting engine in a pool worker
  is indistinguishable (``all_costs`` equal on every probed profile) from
  one that probed locally — including the zero-copy adoption of the dense
  length matrix on the array path.
"""

import random

import pytest

from repro.core import BBCGame, Objective, UniformBBCGame
from repro.core.profile import StrategyProfile
from repro.engine import CostEngine, export_tables, restore_tables
from repro.engine.indexed import IndexedGame
from repro.engine.snapshot import (
    PAYLOAD_ALIGN,
    TABLE_ARRAY_KEYS,
    csr_arrays_of,
    csr_of,
    pack_payload,
    unpack_payload,
)

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


def weighted_game(seed, n=5, objective=Objective.SUM):
    """A non-uniform game whose tables need real n^2 probing to build."""
    rng = random.Random(seed)
    weights, lengths, costs = {}, {}, {}
    for u in range(n):
        for v in range(n):
            if u != v:
                if rng.random() < 0.6:
                    weights[(u, v)] = float(rng.randint(1, 3))
                lengths[(u, v)] = float(rng.randint(1, 4))
                costs[(u, v)] = float(rng.choice([1, 1, 2]))
    budgets = {u: float(rng.randint(1, 3)) for u in range(n)}
    return BBCGame(
        nodes=range(n),
        weights=weights,
        link_lengths=lengths,
        link_costs=costs,
        budgets=budgets,
        default_weight=0.0,
        objective=objective,
    )


def ring_profile(game, shift=1):
    nodes = list(game.nodes)
    n = len(nodes)
    return StrategyProfile(
        {u: frozenset({nodes[(i + shift) % n]}) for i, u in enumerate(nodes)}
    )


# --------------------------------------------------------------------------- #
# Snapshot immutability and per-version freshness
# --------------------------------------------------------------------------- #
class TestSnapshotLifetime:
    def test_snapshot_is_stable_until_the_profile_changes(self):
        game = UniformBBCGame(5, 1)
        engine = CostEngine(game)
        profile = ring_profile(game)
        engine.sync(profile)
        first = engine.snapshot()
        engine.sync(profile)  # unchanged profile: same version, same object
        assert engine.snapshot() is first

    def test_sync_publishes_a_fresh_snapshot_and_never_mutates_old_ones(self):
        game = weighted_game(11)
        engine = CostEngine(game)
        engine.sync(ring_profile(game, shift=1))
        old = engine.snapshot()
        old_version = old.version
        old_csr = (list(old.indptr), list(old.indices))
        old_strategies = old.strategies

        engine.sync(ring_profile(game, shift=2))
        new = engine.snapshot()
        assert new is not old
        assert new.version > old_version
        # The old snapshot is frozen: every field a traversal reads is
        # byte-for-byte what it was when it was published.
        assert old.version == old_version
        assert (list(old.indptr), list(old.indices)) == old_csr
        assert old.strategies is old_strategies
        with pytest.raises(Exception):
            old.version = 99  # frozen dataclass

    def test_snapshot_reads_through_to_static_tables(self):
        game = weighted_game(3)
        engine = CostEngine(game)
        engine.sync(ring_profile(game))
        snap = engine.snapshot()
        assert snap.n == engine.indexed.n
        assert snap.labels == engine.indexed.labels
        assert snap.penalty == engine.indexed.penalty
        assert snap.length_rows is engine.indexed.length_rows
        indptr, indices, edge_lengths = csr_of(snap)
        assert indptr is snap.indptr and indices is snap.indices
        assert len(indptr) == snap.n + 1
        if edge_lengths is not None:
            assert len(edge_lengths) == len(indices)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="array mirrors require numpy")
    def test_array_mirrors_match_list_space(self):
        game = weighted_game(7)
        engine = CostEngine(game)
        engine.sync(ring_profile(game))
        snap = engine.snapshot()
        indptr_np, indices_np, lengths_np, _ = csr_arrays_of(snap)
        if indptr_np is None:
            pytest.skip("list backend selected; no array mirrors to compare")
        assert indptr_np.tolist() == list(snap.indptr)
        assert indices_np.tolist() == list(snap.indices)
        if snap.edge_lengths is not None:
            assert lengths_np.tolist() == list(snap.edge_lengths)


# --------------------------------------------------------------------------- #
# Byte packing: header + aligned zero-copy array blocks
# --------------------------------------------------------------------------- #
class TestPayloadPacking:
    def test_header_only_round_trip(self):
        obj = {"params": {"tolerance": 1e-9}, "sets": [(0, [1, 2]), (1, [0])]}
        blob = pack_payload(obj)
        decoded, arrays = unpack_payload(blob)
        assert decoded == obj
        assert arrays == {}

    @pytest.mark.skipif(not HAVE_NUMPY, reason="array blocks require numpy")
    def test_arrays_come_back_as_readonly_aligned_views(self):
        obj = {"k": 1}
        source = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.linspace(0.0, 1.0, 7),
        }
        blob = pack_payload(obj, source)
        decoded, arrays = unpack_payload(blob)
        assert decoded == obj
        assert set(arrays) == {"a", "b"}
        for name, original in source.items():
            view = arrays[name]
            assert view.dtype == original.dtype
            assert view.shape == original.shape
            assert view.tolist() == original.tolist()
            assert not view.flags.writeable
            # Zero copy: the view's memory lives inside the packed buffer,
            # aligned to the payload grain.
            offset = view.__array_interface__["data"][0] - (
                np.frombuffer(blob, dtype=np.uint8).__array_interface__["data"][0]
            )
            assert offset % PAYLOAD_ALIGN == 0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="float64 bit-exactness via numpy")
    def test_float64_round_trip_is_bit_exact(self):
        values = np.array([0.1, 1e300, -7.25, 2.0**53 - 1.0, 3.141592653589793])
        blob = pack_payload(None, {"v": values})
        _, arrays = unpack_payload(blob)
        assert arrays["v"].tobytes() == values.tobytes()


# --------------------------------------------------------------------------- #
# Static-table export/restore/adopt: bit-identical engines in pool workers
# --------------------------------------------------------------------------- #
class TestTableExport:
    def test_uniform_games_ship_a_compact_marker(self):
        indexed = IndexedGame(UniformBBCGame(6, 2))
        tables, arrays = export_tables(indexed)
        assert tables.compact
        assert arrays == {}
        assert restore_tables(tables, {}) is tables
        # Adoption treats compact as "construct normally".
        rebuilt = IndexedGame(UniformBBCGame(6, 2), tables=tables)
        assert rebuilt.length_rows == indexed.length_rows

    def test_restore_is_bit_identical_through_pack_unpack(self):
        game = weighted_game(5)
        probed = IndexedGame(game)
        tables, arrays = export_tables(probed)
        assert not tables.compact
        blob = pack_payload({"tables": tables}, arrays or None)
        obj, shipped = unpack_payload(blob)
        restored = restore_tables(obj["tables"], shipped)
        adopted = IndexedGame(game, tables=restored)
        assert adopted.length_rows == probed.length_rows
        assert adopted.target_rows == probed.target_rows
        assert adopted.target_weight_rows == probed.target_weight_rows
        assert adopted.unit_weight_nodes == probed.unit_weight_nodes
        assert adopted.integral_lengths == probed.integral_lengths
        assert adopted.exact_sums == probed.exact_sums
        if HAVE_NUMPY:
            assert set(shipped) == set(TABLE_ARRAY_KEYS)

    def test_adopting_engine_scores_identically(self):
        game = weighted_game(9)
        reference = CostEngine(game)
        tables, arrays = export_tables(reference.indexed)
        obj, shipped = unpack_payload(pack_payload(tables, arrays or None))
        adopted = CostEngine(game, tables=restore_tables(obj, shipped))
        for shift in (1, 2, 3):
            profile = ring_profile(game, shift=shift)
            assert adopted.all_costs(profile) == reference.all_costs(profile)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="zero-copy path requires numpy")
    def test_length_matrix_is_adopted_zero_copy(self):
        game = weighted_game(13)
        probed = IndexedGame(game)
        tables, arrays = export_tables(probed)
        obj, shipped = unpack_payload(pack_payload(tables, arrays))
        restored = restore_tables(obj, shipped)
        assert restored.length_matrix is shipped["tables.lengths"]
        assert not restored.length_matrix.flags.writeable
        adopted = IndexedGame(game, tables=restored)
        # The adopted game's dense matrix *is* the shared-segment view — no
        # private copy is ever materialised.
        assert adopted.length_matrix() is shipped["tables.lengths"]
        assert adopted.length_matrix().tolist() == [
            list(row) for row in probed.length_rows
        ]

    def test_adoption_rejects_a_foreign_node_set(self):
        tables, _ = export_tables(IndexedGame(weighted_game(5, n=5)))
        with pytest.raises(ValueError, match="different node set"):
            IndexedGame(weighted_game(5, n=6), tables=tables)
