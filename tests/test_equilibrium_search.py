"""Equilibrium verification and exhaustive search."""

import pytest

from repro.core import (
    SearchSpaceTooLarge,
    StrategyProfile,
    UniformBBCGame,
    enumerate_profiles,
    equilibrium_report,
    estimate_profile_space,
    exhaustive_equilibrium_search,
    find_equilibria,
    first_unstable_node,
    is_pure_nash,
    random_profile,
    sampled_equilibrium_search,
    swap_stability_report,
)


def test_cycle_is_equilibrium_for_k1(cycle_profile):
    game = UniformBBCGame(5, 1)
    assert is_pure_nash(game, cycle_profile)
    report = equilibrium_report(game, cycle_profile)
    assert report.is_equilibrium
    assert report.max_regret == 0.0
    assert report.unstable_nodes == ()
    assert "STABLE" in report.describe()


def test_empty_profile_is_not_equilibrium():
    game = UniformBBCGame(5, 1)
    empty = game.empty_profile()
    assert not is_pure_nash(game, empty)
    unstable = first_unstable_node(game, empty)
    assert unstable is not None and unstable.improved


def test_broken_cycle_is_not_equilibrium():
    game = UniformBBCGame(5, 1)
    profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: {3}})
    assert not is_pure_nash(game, profile)
    report = equilibrium_report(game, profile)
    assert report.max_regret > 0
    assert len(report.unstable_nodes) >= 1


def test_swap_report_agrees_on_cycle(cycle_profile):
    game = UniformBBCGame(5, 1)
    assert swap_stability_report(game, cycle_profile).is_equilibrium


def test_enumerate_profiles_and_space_estimate():
    game = UniformBBCGame(4, 1)
    profiles = list(enumerate_profiles(game))
    assert len(profiles) == 3 ** 4
    assert estimate_profile_space(game) == 3 ** 4
    with pytest.raises(SearchSpaceTooLarge):
        list(enumerate_profiles(game, limit=10))


def test_exhaustive_search_finds_cycle_equilibria():
    game = UniformBBCGame(4, 1)
    summary = exhaustive_equilibrium_search(game, stop_at_first=True)
    assert summary.has_equilibrium
    assert is_pure_nash(game, summary.first_equilibrium)


def test_find_equilibria_returns_verified_profiles():
    game = UniformBBCGame(4, 1)
    equilibria = find_equilibria(game, max_results=3)
    assert 1 <= len(equilibria) <= 3
    assert all(is_pure_nash(game, profile) for profile in equilibria)


def test_candidate_restriction_in_search():
    game = UniformBBCGame(4, 1)
    # Restrict every node to link to its successor on the cycle: the only
    # profile in the restricted space is the 4-cycle, which is stable.
    candidates = {i: [(i + 1) % 4] for i in range(4)}
    summary = exhaustive_equilibrium_search(game, candidate_targets=candidates)
    assert summary.profiles_examined == 1
    assert summary.equilibria_found == 1


def test_sampled_search_and_random_profile_feasibility():
    game = UniformBBCGame(6, 2)
    profile = random_profile(game, seed=11)
    game.validate_profile(profile)
    summary = sampled_equilibrium_search(game, samples=5, seed=1)
    assert summary.profiles_examined == 5
