"""Sweep engine: Gray enumeration invariants, incremental-check parity, parallel maps.

The sweep path (:func:`repro.engine.gray_code_profiles` +
:class:`repro.engine.SweepEvaluator`) replaces a from-scratch
``is_pure_nash`` per profile in every search; these tests pin

* the Gray-order contract — consecutive profiles differ in exactly one
  node's strategy and the full cartesian product is covered exactly once;
* bit-identical search results between the sweep path and the
  ``engine=False`` reference for exhaustive / sampled search and the
  Figure 4 completion scan;
* the ``CostEngine.sync`` changed-node return value the sweep layer relies
  on; and
* order- and process-count-independence of ``parallel_map`` studies plus the
  ``GameSpec`` rebuild round-trip.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BBCGame,
    Objective,
    SearchSpaceTooLarge,
    UniformBBCGame,
    enumerate_profiles,
    exhaustive_equilibrium_search,
    find_equilibria,
    is_pure_nash,
    random_profile,
    sampled_equilibrium_search,
)
from repro.core.search import candidate_strategy_sets
from repro.engine import CostEngine, SweepEvaluator, gray_code_profiles, profile_at
from repro.experiments import GameSpec, parallel_map
from repro.experiments.workloads import latency_overlay_game


def random_weighted_game(seed, n=6, objective=Objective.SUM):
    """A non-uniform game with sparse weights and varied lengths/costs/budgets."""
    rng = random.Random(seed)
    weights, lengths, costs = {}, {}, {}
    for u in range(n):
        for v in range(n):
            if u != v:
                if rng.random() < 0.6:
                    weights[(u, v)] = float(rng.randint(1, 3))
                lengths[(u, v)] = float(rng.randint(1, 4))
                costs[(u, v)] = float(rng.choice([1, 1, 2]))
    budgets = {u: float(rng.randint(1, 3)) for u in range(n)}
    return BBCGame(
        nodes=range(n),
        weights=weights,
        link_lengths=lengths,
        link_costs=costs,
        budgets=budgets,
        default_weight=0.0,
        objective=objective,
    )


# --------------------------------------------------------------------- #
# Gray-code enumeration invariants
# --------------------------------------------------------------------- #
def test_gray_profiles_single_edit_and_full_coverage():
    game = UniformBBCGame(5, 2)
    profiles = list(gray_code_profiles(game))
    sets = candidate_strategy_sets(game, None, None)
    expected = 1
    for node in game.nodes:
        expected *= len(sets[node])
    assert len(profiles) == expected
    assert len(set(profiles)) == expected  # covers the product exactly once
    for previous, current in zip(profiles, profiles[1:]):
        differing = [
            node
            for node in game.nodes
            if previous.strategy(node) != current.strategy(node)
        ]
        assert len(differing) == 1  # Gray: exactly one node changes per step
    # Same product as the lexicographic enumeration, different order.
    assert set(profiles) == set(enumerate_profiles(game))


def test_gray_profiles_respects_candidate_sets_and_limit():
    game = UniformBBCGame(4, 1)
    fixed = {0: [frozenset({1})], 1: [frozenset({2}), frozenset({3})]}
    profiles = list(gray_code_profiles(game, fixed))
    assert len(profiles) == 1 * 2 * 3 * 3
    assert all(profile.strategy(0) == frozenset({1}) for profile in profiles)
    with pytest.raises(SearchSpaceTooLarge):
        list(gray_code_profiles(game, limit=10))
    with pytest.raises(ValueError):
        list(gray_code_profiles(game, fixed, candidate_strategies=fixed))


def test_gray_profiles_all_singleton_sets_yields_one_profile():
    game = UniformBBCGame(4, 1)
    sets = {node: [frozenset({(node + 1) % 4})] for node in range(4)}
    profiles = list(gray_code_profiles(game, sets))
    assert len(profiles) == 1


# --------------------------------------------------------------------- #
# O(1) Gray seeking: profile_at and start/stop subranges
# --------------------------------------------------------------------- #
@st.composite
def _mixed_radix_spaces(draw):
    """A uniform game plus candidate sets of mixed radices 1..4 per node.

    Radix-1 draws pin nodes to singleton sets and prefix draws restrict the
    candidate pool — the degenerate shapes a seek formula is likeliest to
    get wrong (the pre-fix parity bug only surfaced past radix 4).
    """
    game = UniformBBCGame(5, 1)
    sets = {}
    for node in game.nodes:
        options = sorted(
            game.feasible_strategies(node, maximal_only=True), key=repr
        )
        order = draw(st.permutations(options))
        radix = draw(st.integers(min_value=1, max_value=len(options)))
        sets[node] = list(order[:radix])
    return game, sets


@settings(max_examples=40, deadline=None)
@given(space=_mixed_radix_spaces(), data=st.data())
def test_profile_at_matches_enumeration(space, data):
    game, sets = space
    full = list(gray_code_profiles(game, sets))
    size = 1
    for node in game.nodes:
        size *= len(sets[node])
    assert len(full) == size
    for rank in range(size):
        assert profile_at(game, rank, sets) == full[rank]
    for rank in (-1, size):
        with pytest.raises(IndexError):
            profile_at(game, rank, sets)
    # Any subrange is exactly the serial stream, sliced.
    start = data.draw(st.integers(min_value=0, max_value=size))
    stop = data.draw(st.integers(min_value=start, max_value=size + 2))
    assert list(gray_code_profiles(game, sets, start=start, stop=stop)) == (
        full[start:stop]
    )
    assert list(gray_code_profiles(game, sets, start=start)) == full[start:]


def test_gray_subranges_partition_the_serial_stream():
    # Radices [6, 6, 6, 6, 6]: large enough to catch the reflection-parity
    # regression (digit-sum parity first diverges from quotient parity at
    # rank 36 of a radix-6 space).
    game = UniformBBCGame(5, 2)
    full = list(gray_code_profiles(game))
    assert len(full) == 6 ** 5
    for pieces in (2, 3, 7):
        bounds = [len(full) * i // pieces for i in range(pieces + 1)]
        glued = []
        for lo, hi in zip(bounds, bounds[1:]):
            glued.extend(gray_code_profiles(game, start=lo, stop=hi))
        assert glued == full
    strides = list(range(0, len(full), 611)) + [35, 36, 37, len(full) - 1]
    for rank in strides:
        assert profile_at(game, rank) == full[rank]
    with pytest.raises(ValueError):
        list(gray_code_profiles(game, start=-1))
    with pytest.raises(ValueError):
        list(gray_code_profiles(game, start=5, stop=4))


# --------------------------------------------------------------------- #
# sync() reports the changed nodes
# --------------------------------------------------------------------- #
def test_sync_returns_changed_node_ids():
    game = UniformBBCGame(6, 2)
    engine = CostEngine(game)
    profile = random_profile(game, seed=1)
    assert engine.sync(profile) is None  # first sync: no previous snapshot
    assert engine.sync(profile) == ()
    deviated = profile.with_strategy(2, frozenset({0, 1}) if profile.strategy(2) != frozenset({0, 1}) else frozenset({0, 3}))
    assert engine.sync(deviated) == (2,)
    other = random_profile(game, seed=9)
    changed = engine.sync(other)
    assert changed == tuple(
        u for u in range(6) if deviated.strategy(u) != other.strategy(u)
    )


# --------------------------------------------------------------------- #
# SweepEvaluator parity with the reference checker
# --------------------------------------------------------------------- #
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(4, 6), k=st.integers(1, 2))
def test_sweep_evaluator_matches_reference_on_gray_sweeps(seed, n, k):
    if k >= n:
        k = n - 1
    game = UniformBBCGame(n, k)
    sets = candidate_strategy_sets(game, None, None)
    rng = random.Random(seed)
    # Restrict to a small random sub-grid so the sweep stays tiny.
    restricted = {
        node: rng.sample(sets[node], min(3, len(sets[node]))) for node in game.nodes
    }
    evaluator = SweepEvaluator(game, engine=CostEngine(game))
    for profile in gray_code_profiles(game, restricted):
        assert evaluator.is_nash(profile) == is_pure_nash(game, profile, engine=False)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_sweep_evaluator_matches_reference_on_random_jumps(seed):
    # Arbitrary (multi-node) profile deltas and non-uniform float costs: the
    # memo fast paths must stay bit-identical to the chained reference rule.
    for game in (
        random_weighted_game(seed),
        random_weighted_game(seed, objective=Objective.MAX),
    ):
        evaluator = SweepEvaluator(game, engine=CostEngine(game))
        rng = random.Random(seed)
        for _ in range(6):
            profile = random_profile(game, seed=rng)
            assert evaluator.is_nash(profile) == is_pure_nash(game, profile, engine=False)


def test_sweep_evaluator_repeated_profile_uses_cached_verdict():
    game = UniformBBCGame(5, 2)
    evaluator = SweepEvaluator(game, engine=CostEngine(game))
    profile = random_profile(game, seed=4)
    first = evaluator.is_nash(profile)
    assert evaluator.is_nash(profile) == first
    assert evaluator.stats["noop_checks"] == 1


def test_sweep_evaluator_memo_reset_keeps_verdicts_correct():
    game = UniformBBCGame(5, 2)
    evaluator = SweepEvaluator(game, engine=CostEngine(game), memo_entry_limit=4)
    for profile in gray_code_profiles(game):
        assert evaluator.is_nash(profile) == is_pure_nash(game, profile, engine=False)
    assert evaluator.stats["memo_resets"] > 0


def test_sweep_evaluator_rejects_engine_false():
    game = UniformBBCGame(5, 2)
    with pytest.raises(ValueError):
        SweepEvaluator(game, engine=False)


# --------------------------------------------------------------------- #
# Search entry points: sweep path vs reference path
# --------------------------------------------------------------------- #
def test_exhaustive_search_summary_parity_uniform():
    game = UniformBBCGame(4, 1)
    for stop in (True, False):
        sweep = exhaustive_equilibrium_search(game, stop_at_first=stop)
        reference = exhaustive_equilibrium_search(game, stop_at_first=stop, engine=False)
        assert sweep == reference
    assert exhaustive_equilibrium_search(game, stop_at_first=False).equilibria_found == 6


def test_exhaustive_search_summary_parity_restricted_7_2():
    game = UniformBBCGame(7, 2)
    sets = candidate_strategy_sets(game, None, None)
    candidates = {node: sets[node][:1] for node in range(2, 7)}
    sweep = exhaustive_equilibrium_search(
        game, candidate_strategies=candidates, stop_at_first=False
    )
    reference = exhaustive_equilibrium_search(
        game, candidate_strategies=candidates, stop_at_first=False, engine=False
    )
    assert sweep == reference
    assert sweep.profiles_examined == 15 * 15


def test_exhaustive_search_summary_parity_non_uniform():
    for seed in (0, 3):
        game = random_weighted_game(seed, n=5)
        sweep = exhaustive_equilibrium_search(game, stop_at_first=False)
        reference = exhaustive_equilibrium_search(game, stop_at_first=False, engine=False)
        assert sweep == reference


def test_find_equilibria_parity_and_deviation_limit():
    game = UniformBBCGame(4, 1)
    assert find_equilibria(game, max_results=4) == find_equilibria(
        game, max_results=4, engine=False
    )
    # The drift fix: find_equilibria now threads deviation_limit into the
    # per-node deviation enumeration, like exhaustive_equilibrium_search.
    with pytest.raises(SearchSpaceTooLarge):
        find_equilibria(game, deviation_limit=1)
    with pytest.raises(SearchSpaceTooLarge):
        find_equilibria(game, deviation_limit=1, engine=False)
    with pytest.raises(SearchSpaceTooLarge):
        sampled_equilibrium_search(game, samples=1, deviation_limit=1)


def test_sampled_search_parity():
    game = UniformBBCGame(6, 2)
    sweep = sampled_equilibrium_search(game, samples=25, seed=11)
    reference = sampled_equilibrium_search(game, samples=25, seed=11, engine=False)
    assert sweep == reference
    assert sweep.profiles_examined == 25


def test_figure4_reconstruction_parity():
    from repro.dynamics import reconstruct_figure4, verify_figure4_loop

    sweep = reconstruct_figure4(max_results=1)
    reference = reconstruct_figure4(max_results=1, engine=False)
    assert [r.profile for r in sweep] == [r.profile for r in reference]
    assert [r.deviation_sequence for r in sweep] == [
        r.deviation_sequence for r in reference
    ]
    assert [r.initial_costs for r in sweep] == [r.initial_costs for r in reference]
    assert sweep and verify_figure4_loop(sweep[0])


# --------------------------------------------------------------------- #
# Process-parallel sweeps
# --------------------------------------------------------------------- #
def test_game_spec_roundtrip_uniform_and_general():
    import pickle

    uniform = UniformBBCGame(6, 2, objective=Objective.MAX)
    rebuilt = pickle.loads(pickle.dumps(GameSpec.from_game(uniform))).build()
    assert rebuilt.n == 6 and rebuilt.k == 2
    assert rebuilt.objective is Objective.MAX
    assert rebuilt.disconnection_penalty == uniform.disconnection_penalty

    general = latency_overlay_game(6, seed=3)
    spec = pickle.loads(pickle.dumps(GameSpec.from_game(general)))
    rebuilt = spec.build()
    assert rebuilt.nodes == general.nodes
    profile = random_profile(general, seed=0)
    assert rebuilt.all_costs(profile) == general.all_costs(profile)
    assert is_pure_nash(rebuilt, profile) == is_pure_nash(general, profile)


def test_parallel_map_preserves_order_and_matches_serial():
    items = list(range(17))
    serial = parallel_map(_square, items, processes=1)
    assert serial == [x * x for x in items]
    parallel = parallel_map(_square, items, processes=2)
    assert parallel == serial
    assert parallel_map(_square, [], processes=2) == []
    with pytest.raises(ValueError):
        parallel_map(_square, items, processes=0)


def _square(x):
    return x * x


def test_sharded_search_bit_identical_to_serial():
    game = UniformBBCGame(4, 2)
    for stop in (True, False):
        serial = exhaustive_equilibrium_search(game, stop_at_first=stop)
        for processes in (2, 3):
            sharded = exhaustive_equilibrium_search(
                game, stop_at_first=stop, processes=processes
            )
            assert sharded == serial
    # The reference path shards too (workers skip engine construction).
    assert exhaustive_equilibrium_search(
        game, stop_at_first=False, processes=2, engine=False
    ) == exhaustive_equilibrium_search(game, stop_at_first=False, engine=False)


def test_sharded_search_general_game_adopts_exported_tables():
    game = random_weighted_game(3, n=5)
    serial = exhaustive_equilibrium_search(
        game, stop_at_first=False, checkpoint_every=64
    )
    sharded = exhaustive_equilibrium_search(
        game, stop_at_first=False, checkpoint_every=64, processes=2
    )
    assert sharded == serial


def test_sharded_search_rejects_explicit_engine_instance():
    game = UniformBBCGame(4, 1)
    with pytest.raises(ValueError):
        exhaustive_equilibrium_search(game, engine=CostEngine(game), processes=2)
    # processes=1 keeps accepting an explicit instance (the serial loop).
    summary = exhaustive_equilibrium_search(game, engine=CostEngine(game))
    assert summary == exhaustive_equilibrium_search(game)


def test_equilibrium_census_study_shards_identically():
    from repro.analysis import equilibrium_census_study

    grid = [(4, 1), (4, 2)]
    serial = equilibrium_census_study(grid)
    assert equilibrium_census_study(grid, processes=2) == serial
    assert serial[0]["equilibria"] == 6
    assert all(row["exhausted"] for row in serial)


def test_equilibrium_census_study_journal_resume(tmp_path):
    from repro.analysis import equilibrium_census_study

    grid = [(4, 1)]
    first = equilibrium_census_study(grid, journal_dir=tmp_path)
    assert (tmp_path / "census-n4-k1.json").exists()
    resumed = equilibrium_census_study(grid, journal_dir=tmp_path, processes=2)
    assert resumed == first


def test_studies_identical_across_process_counts():
    from repro.analysis.studies import connectivity_convergence_study, fairness_study
    from repro.experiments import max_cost_first_convergence_study

    assert fairness_study([(2, 2, 1)], processes=1) == fairness_study(
        [(2, 2, 1)], processes=2
    )
    assert connectivity_convergence_study([6], 2, processes=1) == (
        connectivity_convergence_study([6], 2, processes=2)
    )
    serial = max_cost_first_convergence_study(
        7, 2, num_starts=3, max_rounds=25, seed=0, processes=1
    )
    fanned = max_cost_first_convergence_study(
        7, 2, num_starts=3, max_rounds=25, seed=0, processes=2
    )
    assert serial == fanned
    assert [row["start"] for row in serial] == [0, 1, 2]
