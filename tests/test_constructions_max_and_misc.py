"""Figure 6 BBC-max equilibrium, ring+path instance, and baselines."""

import pytest

from repro.constructions import (
    analytic_optimum_per_node,
    analytic_optimum_total,
    build_max_distance_equilibrium,
    build_ring_with_path,
    kary_tree_with_back_links,
    log_k,
    max_distance_cost_row,
    random_k_out_baseline,
)
from repro.core import Objective, equilibrium_report
from repro.graphs import is_strongly_connected


def test_figure6_structure():
    instance = build_max_distance_equilibrium(3, 3)
    assert instance.num_nodes == 1 + 5 * 3
    game, profile = instance.game, instance.profile
    game.validate_profile(profile)
    assert game.objective is Objective.MAX
    assert profile.out_degree(instance.root) == 3
    assert is_strongly_connected(profile.graph())


def test_figure6_is_exact_max_equilibrium():
    instance = build_max_distance_equilibrium(3, 3)
    report = equilibrium_report(instance.game, instance.profile)
    assert report.is_equilibrium


def test_figure6_social_cost_scales_linearly_with_tail():
    short = build_max_distance_equilibrium(3, 3)
    long = build_max_distance_equilibrium(3, 6)
    assert long.social_cost() / long.num_nodes > short.social_cost() / short.num_nodes


def test_figure6_cost_row_fields():
    row = max_distance_cost_row(3, 4)
    assert row["poa_estimate"] > 1.0
    assert row["n"] == 1 + 5 * 4
    assert row["social_cost"] >= row["optimum_lower_bound"]


def test_figure6_parameter_validation():
    with pytest.raises(Exception):
        build_max_distance_equilibrium(2, 4)
    with pytest.raises(Exception):
        build_max_distance_equilibrium(3, 1)


def test_ring_with_path_instance():
    instance = build_ring_with_path(8, 4)
    assert instance.num_nodes == 12
    instance.game.validate_profile(instance.profile)
    assert not is_strongly_connected(instance.profile.graph())
    assert instance.path_tail == 8
    assert instance.round_order[0] == 8
    assert len(instance.round_order) == 12
    with pytest.raises(Exception):
        build_ring_with_path(3, 5)


def test_baseline_profiles_are_feasible_and_cheap():
    baseline = kary_tree_with_back_links(20, 2)
    baseline.game.validate_profile(baseline.profile)
    assert is_strongly_connected(baseline.profile.graph())
    random_baseline = random_k_out_baseline(20, 2, seed=1)
    random_baseline.game.validate_profile(random_baseline.profile)
    # The organised baseline should not be worse than the random one.
    assert baseline.per_node_cost() <= random_baseline.per_node_cost() * 1.5


def test_analytic_optimum_helpers():
    assert analytic_optimum_per_node(7, 2) == 10.0
    assert analytic_optimum_total(7, 2) == 70.0
    assert log_k(16, 2) == pytest.approx(4.0)
    with pytest.raises(Exception):
        log_k(16, 1)
