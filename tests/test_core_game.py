"""BBCGame and UniformBBCGame behaviour."""

import pytest

from repro.core import (
    BBCGame,
    InvalidGameDefinition,
    InvalidProfile,
    InvalidStrategy,
    Objective,
    SearchSpaceTooLarge,
    StrategyProfile,
    UniformBBCGame,
    make_weight_table,
)


def test_uniform_game_basic_properties():
    game = UniformBBCGame(6, 2)
    assert game.n == 6 and game.k == 2
    assert game.is_uniform
    assert game.has_uniform_lengths
    assert game.weight(0, 1) == 1.0
    assert game.weight(0, 0) == 0.0
    assert game.budget(3) == 2.0
    assert game.disconnection_penalty > game.num_nodes


def test_uniform_game_argument_validation():
    with pytest.raises(InvalidGameDefinition):
        UniformBBCGame(1, 1)
    with pytest.raises(InvalidGameDefinition):
        UniformBBCGame(5, 0)
    with pytest.raises(InvalidGameDefinition):
        UniformBBCGame(5, 5)


def test_nonuniform_tables_and_validation():
    game = BBCGame(
        nodes=["a", "b", "c"],
        weights={("a", "b"): 2.0},
        link_costs={("a", "c"): 3.0},
        link_lengths={("b", "c"): 4.0},
        budgets={"a": 2.0},
        default_weight=0.0,
    )
    assert game.weight("a", "b") == 2.0
    assert game.weight("a", "c") == 0.0
    assert game.link_cost("a", "c") == 3.0
    assert game.link_length("b", "c") == 4.0
    assert not game.is_uniform
    assert not game.has_uniform_lengths
    with pytest.raises(InvalidGameDefinition):
        BBCGame(nodes=["a", "a"])
    with pytest.raises(InvalidGameDefinition):
        BBCGame(nodes=["a", "b"], weights={("a", "z"): 1.0})
    with pytest.raises(InvalidGameDefinition):
        BBCGame(nodes=["a", "b"], weights={("a", "b"): -1.0})


def test_strategy_validation_and_feasibility():
    game = UniformBBCGame(5, 2)
    assert game.is_feasible_strategy(0, {1, 2})
    assert not game.is_feasible_strategy(0, {1, 2, 3})
    assert not game.is_feasible_strategy(0, {0})
    with pytest.raises(InvalidStrategy):
        game.validate_strategy(0, {1, 2, 3})
    with pytest.raises(InvalidStrategy):
        game.validate_strategy(0, {"missing"})


def test_feasible_strategies_enumeration_uniform_costs():
    game = UniformBBCGame(5, 2)
    maximal = list(game.feasible_strategies(0))
    assert len(maximal) == 6  # C(4, 2)
    everything = list(game.feasible_strategies(0, maximal_only=False))
    assert len(everything) == 1 + 4 + 6


def test_feasible_strategies_respects_candidates_and_limit():
    game = UniformBBCGame(8, 2)
    restricted = list(game.feasible_strategies(0, candidates=[1, 2, 3]))
    assert len(restricted) == 3
    with pytest.raises(SearchSpaceTooLarge):
        list(game.feasible_strategies(0, limit=3))


def test_feasible_strategies_nonuniform_costs():
    game = BBCGame(
        nodes=[0, 1, 2, 3],
        link_costs={(0, 1): 1.0, (0, 2): 2.0, (0, 3): 2.0},
        budgets={0: 3.0},
    )
    maximal = {frozenset(s) for s in game.feasible_strategies(0)}
    assert frozenset({1, 2}) in maximal
    assert frozenset({1, 3}) in maximal
    # {1} alone is not maximal (budget 3 could still afford node 2 or 3).
    assert frozenset({1}) not in maximal


def test_node_cost_cycle_and_disconnection(cycle_profile):
    game = UniformBBCGame(5, 1)
    assert game.node_cost(cycle_profile, 0) == 10.0
    empty = game.empty_profile()
    assert game.node_cost(empty, 0) == 4 * game.disconnection_penalty
    assert game.social_cost(cycle_profile) == 50.0


def test_max_objective_cost(cycle_profile):
    game = UniformBBCGame(5, 1, objective=Objective.MAX)
    assert game.node_cost(cycle_profile, 0) == 4.0


def test_profile_validation_against_game():
    game = UniformBBCGame(4, 1)
    bad = StrategyProfile({0: {1, 2}, 1: {2}, 2: {3}, 3: {0}})
    with pytest.raises(InvalidProfile):
        game.validate_profile(bad)
    missing_nodes = StrategyProfile({0: {1}})
    with pytest.raises(InvalidProfile):
        game.validate_profile(missing_nodes)


def test_minimum_possible_costs():
    game = UniformBBCGame(7, 2)
    # Layered profile: 2 nodes at distance 1, 4 at distance 2 => 2 + 8 = 10.
    assert game.minimum_possible_node_cost() == 10.0
    assert game.minimum_possible_social_cost() == 70.0
    max_game = UniformBBCGame(7, 2, objective=Objective.MAX)
    assert max_game.minimum_possible_node_cost() == 2.0


def test_make_weight_table():
    table = make_weight_table([0, 1, 2], lambda u, v: float(u + v))
    assert table[(0, 1)] == 1.0
    assert (1, 1) not in table
