"""The fault-tolerant execution runtime, driven by deterministic fault injection.

Every entry point must, under any seeded :class:`FaultPlan`, either return a
result bit-identical to its fault-free run or raise the documented typed
error — never a wrong answer, never an unhandled ``multiprocessing``/scipy
traceback.  These tests pin that contract for the fault harness itself, the
crash-safe ``parallel_map`` (worker crashes, hung tasks, dead pools, retry
policies), the checkpoint journal (kill/resume parity for study grids and
exhaustive sweeps), and the engines' graceful-degradation paths
(``verify_every`` row self-verification, chunk-build fallback, LP
retry-then-reference fallback, numpy-import gating).
"""

import json
import warnings
from typing import ClassVar, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import UniformBBCGame
from repro.core.profile import StrategyProfile
from repro.core.search import exhaustive_equilibrium_search
from repro.engine import CostEngine, resolve_backend
from repro.experiments.dynamics_study import max_cost_first_convergence_study
from repro.experiments.parallel import (
    SHM_NAME_PREFIX,
    GameSpec,
    SharedPayload,
    active_export_names,
    attach_payload,
    default_processes,
    last_run_stats,
    parallel_map,
    resolve_processes,
)
from repro.reliability import (
    CheckpointError,
    CheckpointJournal,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_faults,
    atomic_write_text,
    current_plan,
    fault_point,
)

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


def square(x):
    return x * x


def ring_profile(game):
    nodes = list(game.nodes)
    n = len(nodes)
    return StrategyProfile(
        {u: frozenset({nodes[(i + 1) % n]}) for i, u in enumerate(nodes)}
    )


# --------------------------------------------------------------------------- #
# The fault harness itself
# --------------------------------------------------------------------------- #
class TestFaultHarness:
    def test_sites_are_inert_without_a_plan(self):
        assert current_plan() is None
        fault_point("test.anything", key=(1, 2))  # must be a no-op

    def test_error_rule_raises_typed_injected_fault(self):
        plan = FaultPlan(rules=(FaultRule(site="test.s"),))
        with active_faults(plan):
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("test.s", key=7)
        assert excinfo.value.site == "test.s"
        assert excinfo.value.key == 7
        assert isinstance(excinfo.value, Exception)

    def test_active_faults_restores_previous_plan(self):
        outer = FaultPlan(rules=(FaultRule(site="test.outer"),))
        inner = FaultPlan(rules=(FaultRule(site="test.inner"),))
        with active_faults(outer):
            with active_faults(inner):
                assert current_plan() is inner
            assert current_plan() is outer
        assert current_plan() is None

    def test_keys_restrict_firing(self):
        plan = FaultPlan(rules=(FaultRule(site="test.s", keys=frozenset({3}), times=None),))
        with active_faults(plan):
            fault_point("test.s", key=2)
            with pytest.raises(InjectedFault):
                fault_point("test.s", key=3)

    def test_after_and_times_open_an_occurrence_window(self):
        plan = FaultPlan(rules=(FaultRule(site="test.s", after=2, times=1),))
        with active_faults(plan):
            fault_point("test.s")
            fault_point("test.s")
            with pytest.raises(InjectedFault):
                fault_point("test.s")
            fault_point("test.s")  # window exhausted

    def test_crash_rules_default_to_worker_scope(self):
        rule = FaultRule(site="test.s", kind="crash")
        assert rule.where == "worker"
        # ... so an armed crash rule cannot kill the test process itself.
        with active_faults(FaultPlan(rules=(rule,))):
            fault_point("test.s")

    def test_seeded_coin_is_deterministic_and_seed_dependent(self):
        plan_a = FaultPlan.seeded(1, ["test.s"], probability=0.5)
        plan_b = FaultPlan.seeded(1, ["test.s"], probability=0.5)
        fired_a = [plan_a.match("test.s", key=i) is not None for i in range(64)]
        fired_b = [plan_b.match("test.s", key=i) is not None for i in range(64)]
        assert fired_a == fired_b
        assert any(fired_a) and not all(fired_a)
        plan_c = FaultPlan.seeded(2, ["test.s"], probability=0.5)
        assert fired_a != [plan_c.match("test.s", key=i) is not None for i in range(64)]

    def test_unknown_kind_and_scope_are_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="test.s", kind="meltdown")
        with pytest.raises(ValueError):
            FaultRule(site="test.s", where="moon")


# --------------------------------------------------------------------------- #
# Checkpoint journal
# --------------------------------------------------------------------------- #
class TestCheckpointJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "j.json"
        journal = CheckpointJournal(path)
        journal.record("cell:0", {"x": 1.5})
        journal.record("cell:1", None)
        reloaded = CheckpointJournal(path)
        assert len(reloaded) == 2
        assert "cell:0" in reloaded and reloaded.get("cell:0") == {"x": 1.5}
        assert reloaded.get("cell:1", "missing") is None
        assert reloaded.get("cell:9", "missing") == "missing"

    def test_writes_are_atomic(self, tmp_path):
        path = tmp_path / "j.json"
        journal = CheckpointJournal(path)
        journal.record("k", 1)
        assert not (tmp_path / "j.json.tmp").exists()
        assert json.loads(path.read_text())["entries"] == {"k": 1}

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="unreadable or corrupt"):
            CheckpointJournal(path)

    def test_foreign_json_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text('{"some": "other file"}')
        with pytest.raises(CheckpointError, match="not a repro-checkpoint-v1"):
            CheckpointJournal(path)

    def test_meta_binding_rejects_a_different_run(self, tmp_path):
        path = tmp_path / "j.json"
        journal = CheckpointJournal(path)
        journal.bind_meta({"radices": [2, 2]})
        reloaded = CheckpointJournal(path)
        reloaded.bind_meta({"radices": [2, 2]})  # same shape: fine
        with pytest.raises(CheckpointError, match="different run"):
            reloaded.bind_meta({"radices": [3, 2]})

    def test_flush_every_batches_disk_writes(self, tmp_path):
        path = tmp_path / "j.json"
        journal = CheckpointJournal(path, flush_every=3)
        journal.record("a", 1)
        journal.record("b", 2)
        assert not path.exists()
        journal.record("c", 3)
        assert len(CheckpointJournal(path)) == 3

    def test_atomic_write_text_replaces_whole_file(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert not (tmp_path / "out.txt.tmp").exists()


# --------------------------------------------------------------------------- #
# parallel_map: crash-safe fan-out
# --------------------------------------------------------------------------- #
class TestParallelMap:
    ITEMS: ClassVar[List[int]] = list(range(6))
    EXPECTED: ClassVar[List[int]] = [0, 1, 4, 9, 16, 25]

    def test_serial_and_pool_agree(self):
        assert parallel_map(square, self.ITEMS, processes=1) == self.EXPECTED
        assert parallel_map(square, self.ITEMS, processes=3) == self.EXPECTED

    def test_injected_error_is_retried_in_pool(self):
        plan = FaultPlan(
            rules=(FaultRule(site="parallel.task", keys=frozenset({(2, 0)})),)
        )
        with active_faults(plan):
            assert parallel_map(square, self.ITEMS, processes=2) == self.EXPECTED
        assert last_run_stats()["retried"] == 1

    def test_worker_crash_restarts_the_pool_bit_identically(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="parallel.task", kind="crash", keys=frozenset({(1, 0)})),
            )
        )
        with active_faults(plan):
            assert parallel_map(square, self.ITEMS, processes=2) == self.EXPECTED
        stats = last_run_stats()
        assert stats["pool_restarts"] >= 1
        assert stats["crashed"] >= 1
        assert stats["serial_fallback_cells"] == 0

    def test_exhausted_restarts_fall_back_serially_with_warning(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="parallel.task", kind="crash", keys=frozenset({(1, 0), (1, 1)})
                ),
            )
        )
        with active_faults(plan):
            with pytest.warns(RuntimeWarning, match="pool died mid-run.*serially"):
                got = parallel_map(
                    square, self.ITEMS, processes=2, max_pool_restarts=0
                )
        assert got == self.EXPECTED
        assert last_run_stats()["serial_fallback_cells"] >= 1

    def test_pool_start_failure_degrades_to_serial(self):
        plan = FaultPlan(rules=(FaultRule(site="parallel.pool-start"),))
        with active_faults(plan):
            with pytest.warns(RuntimeWarning, match="process pool unavailable"):
                got = parallel_map(square, self.ITEMS, processes=2)
        assert got == self.EXPECTED

    def test_hung_task_is_recovered_via_timeout(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="parallel.task",
                    kind="sleep",
                    seconds=5.0,
                    keys=frozenset({(0, 0)}),
                ),
            )
        )
        with active_faults(plan):
            got = parallel_map(square, self.ITEMS, processes=2, timeout=0.4)
        assert got == self.EXPECTED
        stats = last_run_stats()
        assert stats["timeouts"] >= 1

    def test_on_error_raise_propagates_the_typed_error(self):
        plan = FaultPlan(rules=(FaultRule(site="parallel.task", times=None),))
        with active_faults(plan):
            with pytest.raises(InjectedFault):
                parallel_map(square, self.ITEMS, processes=2, retries=1)

    def test_on_error_skip_yields_none_with_warning(self):
        # Fail cell 2 on every pool attempt; the serial rung runs in the
        # parent where worker-scoped rules stay silent, so scope this rule
        # everywhere to keep the cell failing through all rungs.
        keys = frozenset((2, attempt) for attempt in range(4))
        plan = FaultPlan(
            rules=(FaultRule(site="parallel.task", keys=keys, times=None),)
        )
        with active_faults(plan):
            with pytest.warns(RuntimeWarning, match="skipped 1 of 6 cells"):
                got = parallel_map(
                    square, self.ITEMS, processes=2, retries=1, on_error="skip"
                )
        assert got == [0, 1, None, 9, 16, 25]
        assert last_run_stats()["skipped"] == 1

    def test_on_error_retry_serial_recovers_worker_only_failures(self):
        # The rule fires only inside workers, so the final serial re-run in
        # the parent process succeeds.
        keys = frozenset((2, attempt) for attempt in range(4))
        plan = FaultPlan(
            rules=(
                FaultRule(site="parallel.task", keys=keys, times=None, where="worker"),
            )
        )
        with active_faults(plan):
            got = parallel_map(
                square, self.ITEMS, processes=2, retries=1, on_error="retry-serial"
            )
        assert got == self.EXPECTED

    def test_invalid_arguments_are_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            parallel_map(square, [1], on_error="explode")
        with pytest.raises(ValueError, match="retries"):
            parallel_map(square, [1], retries=-1)
        with pytest.raises(ValueError, match="max_pool_restarts"):
            parallel_map(square, [1], max_pool_restarts=-1)

    def test_journal_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "cells.json"
        first = parallel_map(square, self.ITEMS, journal=path)
        assert first == self.EXPECTED
        # Resume: arm a fault on every task attempt — it must never fire,
        # proving no cell re-executes.
        plan = FaultPlan(rules=(FaultRule(site="parallel.task", times=None),))
        with active_faults(plan):
            second = parallel_map(square, self.ITEMS, processes=2, journal=path)
        assert second == self.EXPECTED
        assert last_run_stats()["journal_hits"] == len(self.ITEMS)

    def test_partial_journal_fills_only_missing_cells(self, tmp_path):
        path = tmp_path / "cells.json"
        journal = CheckpointJournal(path)
        journal.record("cell:0", 0)
        journal.record("cell:3", 9)
        got = parallel_map(square, self.ITEMS, journal=journal)
        assert got == self.EXPECTED
        assert last_run_stats()["journal_hits"] == 2
        assert len(journal) == len(self.ITEMS)

    @settings(max_examples=15, deadline=None)
    @given(
        processes=st.sampled_from([1, 2, 3]),
        retries=st.integers(0, 2),
        crash_seed=st.integers(0, 1_000),
    )
    def test_results_are_bit_identical_under_any_crash_schedule(
        self, processes, retries, crash_seed
    ):
        """The acceptance invariant, across all three axes at once.

        A seeded plan crashes a pseudo-random subset of first task attempts
        (worker-scoped, so pool generations die and restart); results must
        equal the fault-free serial run no matter the process count, retry
        budget, or crash schedule.
        """
        items = list(range(8))
        expected = [x * x for x in items]
        plan = FaultPlan.seeded(
            crash_seed, ["parallel.task"], probability=0.25, kind="crash", times=3
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with active_faults(plan):
                got = parallel_map(
                    square, items, processes=processes, retries=retries
                )
        assert got == expected


# --------------------------------------------------------------------------- #
# GameSpec regression
# --------------------------------------------------------------------------- #
class OverriddenUniform(UniformBBCGame):
    """A uniform subclass whose tables (n, k) alone cannot encode."""

    def __init__(self, n, k):
        super().__init__(n, k)
        self._budgets[0] = 0.0


class TestGameSpec:
    def test_exact_uniform_type_takes_the_uniform_spec(self):
        assert GameSpec.from_game(UniformBBCGame(5, 2)).kind == "uniform"

    def test_uniform_subclass_takes_the_general_spec(self):
        spec = GameSpec.from_game(OverriddenUniform(5, 2))
        assert spec.kind == "general"
        rebuilt = spec.build()
        # The general spec captured the subclass's actual budget table,
        # which the (n, k) uniform spec would have lost.
        assert rebuilt.budget(0) == 0.0
        assert rebuilt.budget(1) == UniformBBCGame(5, 2).budget(1)


# --------------------------------------------------------------------------- #
# Acceptance: study grid with a worker killed mid-run == serial
# --------------------------------------------------------------------------- #
class TestStudyGridCrashParity:
    def test_killed_worker_mid_grid_completes_identical_to_serial(self):
        serial = max_cost_first_convergence_study(
            7, 2, num_starts=4, max_rounds=15, seed=0, processes=1
        )
        plan = FaultPlan(
            rules=(
                FaultRule(site="parallel.task", kind="crash", keys=frozenset({(2, 0)})),
            )
        )
        with active_faults(plan):
            crashed = max_cost_first_convergence_study(
                7, 2, num_starts=4, max_rounds=15, seed=0, processes=2
            )
        assert crashed == serial
        assert last_run_stats()["pool_restarts"] >= 1

    def test_killed_grid_resumes_from_journal(self, tmp_path):
        path = tmp_path / "grid.json"
        serial = max_cost_first_convergence_study(
            7, 2, num_starts=4, max_rounds=15, seed=0, processes=1
        )
        # First run dies on cell 2: fail every pool retry attempt so the
        # default on_error="raise" policy aborts the grid mid-run.  The other
        # cells were journalled as they completed.
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="parallel.task",
                    keys=frozenset((2, attempt) for attempt in range(4)),
                    times=None,
                ),
            )
        )
        with active_faults(plan):
            with pytest.raises(InjectedFault):
                max_cost_first_convergence_study(
                    7, 2, num_starts=4, max_rounds=15, seed=0,
                    processes=2, journal=path,
                )
        assert len(CheckpointJournal(path)) >= 1
        resumed = max_cost_first_convergence_study(
            7, 2, num_starts=4, max_rounds=15, seed=0, processes=1, journal=path
        )
        assert resumed == serial
        assert last_run_stats()["journal_hits"] >= 1


# --------------------------------------------------------------------------- #
# Checkpointed exhaustive sweeps
# --------------------------------------------------------------------------- #
class TestSearchJournal:
    def run(self, game, **kwargs):
        return exhaustive_equilibrium_search(game, stop_at_first=False, **kwargs)

    def test_killed_sweep_resumes_without_recomputing(self, tmp_path):
        game = UniformBBCGame(4, 1)
        path = tmp_path / "search.json"
        baseline = self.run(game)
        # Kill the sweep at profile 10 (block 2 of checkpoint_every=4).
        plan = FaultPlan(rules=(FaultRule(site="search.profile", keys=frozenset({10})),))
        with active_faults(plan):
            with pytest.raises(InjectedFault):
                self.run(game, journal=path, checkpoint_every=4)
        assert len(CheckpointJournal(path)) >= 2
        # Resume with a fault armed *inside a completed block*: it must never
        # fire, proving journalled profiles are not re-checked.
        plan = FaultPlan(rules=(FaultRule(site="search.profile", keys=frozenset({1})),))
        with active_faults(plan):
            resumed = self.run(game, journal=path, checkpoint_every=4)
        assert resumed == baseline

    def test_stop_at_first_parity_fresh_and_resumed(self, tmp_path):
        game = UniformBBCGame(4, 1)
        path = tmp_path / "search.json"
        baseline = exhaustive_equilibrium_search(game, stop_at_first=True)
        fresh = exhaustive_equilibrium_search(
            game, stop_at_first=True, journal=path, checkpoint_every=3
        )
        resumed = exhaustive_equilibrium_search(
            game, stop_at_first=True, journal=path, checkpoint_every=3
        )
        assert fresh == baseline
        assert resumed == baseline

    def test_journal_is_bound_to_the_search_shape(self, tmp_path):
        game = UniformBBCGame(4, 1)
        path = tmp_path / "search.json"
        self.run(game, journal=path, checkpoint_every=4)
        with pytest.raises(CheckpointError, match="different run"):
            self.run(game, journal=path, checkpoint_every=8)

    def test_invalid_checkpoint_every_is_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            self.run(UniformBBCGame(4, 1), checkpoint_every=0)

    @settings(max_examples=10, deadline=None)
    @given(checkpoint_every=st.integers(1, 20), kill_at=st.integers(0, 80))
    def test_resume_parity_for_any_block_size_and_kill_point(
        self, tmp_path_factory, checkpoint_every, kill_at
    ):
        game = UniformBBCGame(4, 1)
        baseline = self.run(game)
        path = tmp_path_factory.mktemp("journals") / "search.json"
        plan = FaultPlan(
            rules=(FaultRule(site="search.profile", keys=frozenset({kill_at})),)
        )
        try:
            with active_faults(plan):
                self.run(game, journal=path, checkpoint_every=checkpoint_every)
        except InjectedFault:
            pass
        resumed = self.run(game, journal=path, checkpoint_every=checkpoint_every)
        assert resumed == baseline


# --------------------------------------------------------------------------- #
# Engine graceful degradation
# --------------------------------------------------------------------------- #
class TestCostEngineDegradation:
    def test_verify_every_detects_a_poisoned_row(self):
        game = UniformBBCGame(8, 2)
        profile = ring_profile(game)
        reference = CostEngine(game)
        reference.sync(profile)
        clean = [float(x) for x in reference.env_row(0, 1)]

        plan = FaultPlan(rules=(FaultRule(site="engine.row-poison", times=1),))
        with active_faults(plan):
            engine = CostEngine(game, verify_every=1)
            engine.sync(profile)
            first = engine.env_row(0, 1)  # fill: the cached copy is poisoned
            assert [float(x) for x in first] == clean
            with pytest.warns(RuntimeWarning, match="self-verification"):
                second = engine.env_row(0, 1)  # hit: verification catches it
        assert [float(x) for x in second] == clean
        assert engine.stats["row_verify_failures"] == 1
        assert engine.stats["rows_verified"] == 1
        # The rebuilt row stays clean on later hits.
        assert [float(x) for x in engine.env_row(0, 1)] == clean

    def test_without_verification_the_poisoned_row_is_served(self):
        # Documents why verify_every exists: an unverified engine serves the
        # corrupted copy.
        game = UniformBBCGame(8, 2)
        profile = ring_profile(game)
        reference = CostEngine(game)
        reference.sync(profile)
        clean = [float(x) for x in reference.env_row(0, 1)]
        plan = FaultPlan(rules=(FaultRule(site="engine.row-poison", times=1),))
        with active_faults(plan):
            engine = CostEngine(game)
            engine.sync(profile)
            engine.env_row(0, 1)
            served = engine.env_row(0, 1)
        assert [float(x) for x in served] != clean

    def test_verify_every_validates_its_argument(self):
        with pytest.raises(ValueError, match="verify_every"):
            CostEngine(UniformBBCGame(4, 1), verify_every=0)

    def test_adversarial_evictions_stay_bit_identical(self):
        from repro.core.best_response import best_response

        game = UniformBBCGame(8, 2)
        profile = ring_profile(game)
        reference = [
            best_response(game, profile, node, engine=False) for node in game.nodes
        ]
        plan = FaultPlan(rules=(FaultRule(site="engine.forced-evict", times=None),))
        with active_faults(plan):
            engine = CostEngine(game)
            injected = [
                best_response(game, profile, node, engine=engine)
                for node in game.nodes
            ]
        assert injected == reference

    def test_chunk_build_failure_degrades_to_per_node_fills(self):
        game = UniformBBCGame(8, 2)
        profile = ring_profile(game)
        baseline = CostEngine(game)
        baseline.sync(profile)
        baseline.plan_report_prefetch(profile)
        clean = [float(x) for x in baseline.env_row(0, 1)]
        plan = FaultPlan(rules=(FaultRule(site="engine.chunk-build", times=None),))
        with active_faults(plan):
            engine = CostEngine(game)
            engine.sync(profile)
            engine.plan_report_prefetch(profile)
            got = [float(x) for x in engine.env_row(0, 1)]
        assert got == clean
        if engine.giant_batch and engine.stats["chunk_build_failures"] == 0:
            pytest.skip("game too small for a giant-batch plan")

    def test_numpy_import_fault_degrades_auto_and_fails_explicit(self):
        plan = FaultPlan(rules=(FaultRule(site="engine.numpy-import", times=None),))
        with active_faults(plan):
            assert resolve_backend("auto", 100_000, True) == "python"
            assert resolve_backend(None, 100_000, False) == "python"
            with pytest.raises(ValueError, match="requires numpy"):
                resolve_backend("numpy", 100_000, True)
        if HAVE_NUMPY:
            assert resolve_backend("auto", 100_000, True) == "numpy"


@pytest.mark.skipif(not HAVE_NUMPY, reason="FractionalEngine requires numpy/scipy")
class TestFractionalLPFallback:
    def setup_method(self):
        pytest.importorskip("scipy")

    def make(self):
        from repro.core.fractional import FractionalBBCGame, FractionalProfile

        game = FractionalBBCGame(UniformBBCGame(5, 2))
        nodes = list(game.nodes)
        profile = FractionalProfile(
            {node: {nodes[(i + 1) % 5]: 1.0} for i, node in enumerate(nodes)}
        )
        return game, profile, nodes[0]

    def test_failed_solve_is_retried_once(self):
        from repro.core.fractional import fractional_best_response
        from repro.engine import FractionalEngine

        game, profile, node = self.make()
        reference = fractional_best_response(game, profile, node, engine=False)
        plan = FaultPlan(rules=(FaultRule(site="fractional.lp-solve", times=1),))
        with active_faults(plan):
            engine = FractionalEngine(game)
            got = engine.best_response(profile, node)
        assert abs(got.best_cost - reference.best_cost) < 1e-9
        assert engine.stats["lp_retries"] == 1
        assert engine.stats["lp_fallbacks"] == 0

    def test_persistent_failure_falls_back_to_the_reference_path(self):
        from repro.core.fractional import fractional_best_response
        from repro.engine import FractionalEngine

        game, profile, node = self.make()
        reference = fractional_best_response(game, profile, node, engine=False)
        plan = FaultPlan(rules=(FaultRule(site="fractional.lp-solve", times=None),))
        with active_faults(plan):
            engine = FractionalEngine(game)
            with pytest.warns(RuntimeWarning, match="falling back to the reference"):
                got = engine.best_response(profile, node)
        assert abs(got.best_cost - reference.best_cost) < 1e-9
        assert engine.stats["lp_fallbacks"] == 1
        # A healthy later call resumes the LP fast path.
        healthy = engine.best_response(profile, node)
        assert abs(healthy.best_cost - reference.best_cost) < 1e-9
        assert engine.stats["lp_solved"] == 1


# --------------------------------------------------------------------------- #
# Fault-site registry (runtime counterpart of lint rule RPR004)
# --------------------------------------------------------------------------- #
class TestFaultSiteRegistry:
    def _fresh_warn_state(self):
        from repro.reliability import faults

        faults._WARNED_UNKNOWN_SITES.clear()

    def test_unregistered_site_warns_once_per_process(self):
        from repro.reliability import UnknownFaultSiteWarning

        self._fresh_warn_state()
        with pytest.warns(UnknownFaultSiteWarning, match="engine.chunk-biuld"):
            FaultPlan(
                rules=(FaultRule(site="engine.chunk-biuld"),)  # repro: noqa[RPR004] — deliberate typo under test
            )
        # The same typo again (e.g. the plan pickled to a worker and back)
        # stays quiet: one warning per site per process.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FaultPlan(
                rules=(FaultRule(site="engine.chunk-biuld"),)  # repro: noqa[RPR004] — deliberate typo under test
            )

    def test_registered_and_test_namespace_sites_stay_silent(self):
        self._fresh_warn_state()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FaultPlan(
                rules=(
                    FaultRule(site="parallel.task"),
                    FaultRule(site="test.made-up"),
                )
            )

    def test_every_compiled_site_is_registered(self):
        from repro.reliability import REGISTERED_FAULT_SITES

        for site in (
            "engine.chunk-build",
            "engine.forced-evict",
            "engine.numpy-import",
            "engine.row-poison",
            "fractional.lp-solve",
            "parallel.pool-start",
            "parallel.shm-attach",
            "parallel.shm-create",
            "parallel.task",
            "search.profile",
        ):
            assert site in REGISTERED_FAULT_SITES
            assert REGISTERED_FAULT_SITES[site]  # every entry documents itself

    def test_register_fault_site_is_idempotent_but_rejects_conflicts(self):
        from repro.reliability import (
            REGISTERED_FAULT_SITES,
            is_registered_fault_site,
            register_fault_site,
        )

        register_fault_site("ext.demo", "an extension site")
        try:
            assert is_registered_fault_site("ext.demo")
            register_fault_site("ext.demo", "an extension site")  # idempotent
            with pytest.raises(ValueError, match="different"):
                register_fault_site("ext.demo", "something else entirely")
        finally:
            REGISTERED_FAULT_SITES.pop("ext.demo", None)

    def test_seeded_plan_with_unknown_site_warns(self):
        from repro.reliability import UnknownFaultSiteWarning

        self._fresh_warn_state()
        with pytest.warns(UnknownFaultSiteWarning):
            FaultPlan.seeded(  # repro: noqa[RPR004] — deliberate typo under test
                3, ["parallel.tsak"], probability=0.5
            )


# --------------------------------------------------------------------------- #
# Worker-count resolution: affinity-aware defaults, REPRO_PROCESSES override
# --------------------------------------------------------------------------- #
class TestProcessResolution:
    def test_explicit_counts_pass_through_validated(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        assert resolve_processes(3) == 3
        with pytest.raises(ValueError):
            resolve_processes(0)

    def test_none_means_one_worker_per_available_cpu(self, monkeypatch):
        from repro.experiments import parallel as parallel_mod

        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        monkeypatch.setattr(parallel_mod, "_available_cpus", lambda: 3)
        assert resolve_processes(None) == 3
        assert default_processes(cap=2) == 2  # the benchmark default caps
        assert default_processes(cap=8) == 3

    def test_available_cpus_respects_affinity_mask(self):
        import os

        from repro.experiments.parallel import _available_cpus

        count = _available_cpus()
        assert count >= 1
        if hasattr(os, "sched_getaffinity"):
            assert count == len(os.sched_getaffinity(0))

    def test_env_override_replaces_detected_default_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "5")
        assert resolve_processes(None) == 5
        assert default_processes(cap=2) == 5  # configuration bypasses the cap
        assert resolve_processes(4) == 4  # explicit counts always win
        for bad in ("zero", "0", "-1"):
            monkeypatch.setenv("REPRO_PROCESSES", bad)
            with pytest.raises(ValueError):
                resolve_processes(None)


# --------------------------------------------------------------------------- #
# Shared-memory payload exports: lifecycle, degradation, leak-freedom
# --------------------------------------------------------------------------- #
def _devshm_strays():
    import os

    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(SHM_NAME_PREFIX)]
    except FileNotFoundError:  # no shared-memory mount on this platform
        return []


class TestSharedPayload:
    def test_create_attach_close_roundtrip(self):
        payload = SharedPayload.create({"base": 2, "row": [1.5, 2.5]})
        try:
            obj, arrays = attach_payload(payload.ref)
            assert obj == {"base": 2, "row": [1.5, 2.5]}
            assert arrays == {}
        finally:
            payload.close()
        payload.close()  # idempotent
        assert active_export_names() == []
        assert _devshm_strays() == []
        with pytest.raises(ValueError):
            payload.ref  # a closed shm payload has no shippable handle

    @pytest.mark.skipif(not HAVE_NUMPY, reason="array blocks require numpy")
    def test_array_blocks_attach_as_readonly_views(self):
        import numpy as np

        arr = np.arange(6, dtype=np.int64) * 7
        payload = SharedPayload.create({"k": 1}, {"a": arr})
        try:
            obj, arrays = attach_payload(payload.ref)
            assert obj == {"k": 1}
            assert arrays["a"].tolist() == arr.tolist()
            assert not arrays["a"].flags.writeable
            # Second attach in the same process is a cache hit.
            again, arrays2 = attach_payload(payload.ref)
            assert again is obj
        finally:
            payload.close()
        assert _devshm_strays() == []

    def test_create_fault_degrades_to_inline_bytes(self):
        plan = FaultPlan(
            rules=(FaultRule(site="parallel.shm-create", kind="error", times=1),)
        )
        with active_faults(plan):
            with pytest.warns(RuntimeWarning, match="inline"):
                payload = SharedPayload.create({"x": 9})
        assert payload.ref[0] == "inline"
        obj, arrays = attach_payload(payload.ref)
        assert obj == {"x": 9} and arrays == {}
        payload.close()  # no-op: nothing was exported
        assert active_export_names() == []


class TestShardedSearchFaults:
    """Sharded exhaustive search under injected shm faults and worker crashes.

    The contract under test: at any worker count and any armed fault plan the
    sharded search either returns the bit-identical serial summary or raises
    the documented typed error — and shared segments never outlive the run.
    """

    def _game(self):
        return UniformBBCGame(4, 2)

    def _serial(self, game):
        return exhaustive_equilibrium_search(
            game, stop_at_first=False, checkpoint_every=8
        )

    def _sharded(self, game, processes=2):
        return exhaustive_equilibrium_search(
            game, stop_at_first=False, checkpoint_every=8, processes=processes
        )

    def test_shm_attach_fault_is_retried_in_pool(self):
        game = self._game()
        serial = self._serial(game)
        plan = FaultPlan(
            rules=(FaultRule(site="parallel.shm-attach", kind="error", times=1),)
        )
        with active_faults(plan):
            assert self._sharded(game) == serial
        assert active_export_names() == []
        assert _devshm_strays() == []

    def test_shm_create_fault_runs_inline_identically(self):
        game = self._game()
        serial = self._serial(game)
        plan = FaultPlan(
            rules=(FaultRule(site="parallel.shm-create", kind="error", times=1),)
        )
        with active_faults(plan):
            with pytest.warns(RuntimeWarning, match="inline"):
                assert self._sharded(game) == serial
        assert active_export_names() == []
        assert _devshm_strays() == []

    def test_cell_crash_resubmits_on_fresh_pool(self):
        game = self._game()
        serial = self._serial(game)
        plan = FaultPlan(
            rules=(FaultRule(site="parallel.task", kind="crash", keys=[(0, 0)]),)
        )
        with active_faults(plan):
            assert self._sharded(game) == serial
        assert last_run_stats()["pool_restarts"] >= 1
        assert active_export_names() == []
        assert _devshm_strays() == []

    def test_profile_crash_exhausts_restarts_then_serial_fallback(self):
        # Every fresh worker re-arms the plan with zero hits, so the crash at
        # Gray rank 10 re-fires on every pool generation; after the restart
        # budget the parent runs the lost shards in-process, where
        # where="worker" crash rules are inert — identical summary, no leak.
        game = self._game()
        serial = self._serial(game)
        plan = FaultPlan(
            rules=(FaultRule(site="search.profile", kind="crash", keys=[10]),)
        )
        with active_faults(plan):
            with pytest.warns(RuntimeWarning, match="restarts are exhausted"):
                assert self._sharded(game) == serial
        stats = last_run_stats()
        assert stats["pool_restarts"] >= 1
        assert stats["serial_fallback_cells"] >= 1
        assert active_export_names() == []
        assert _devshm_strays() == []
