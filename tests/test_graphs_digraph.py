"""Unit tests for the core DiGraph container."""

import pytest

from repro.graphs import DiGraph, EdgeNotFound, NodeNotFound, from_adjacency


def test_add_nodes_and_edges():
    graph = DiGraph()
    graph.add_edge("a", "b", length=2)
    graph.add_edge("b", "c")
    assert graph.has_node("a") and graph.has_node("c")
    assert graph.has_edge("a", "b")
    assert not graph.has_edge("b", "a")
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 2
    assert graph.edge_data("a", "b")["length"] == 2


def test_add_edge_updates_attributes():
    graph = DiGraph()
    graph.add_edge(1, 2, length=1)
    graph.add_edge(1, 2, length=7)
    assert graph.edge_data(1, 2)["length"] == 7
    assert graph.number_of_edges() == 1


def test_successors_and_predecessors():
    graph = from_adjacency({0: [1, 2], 1: [2], 2: []})
    assert sorted(graph.successors(0)) == [1, 2]
    assert sorted(graph.predecessors(2)) == [0, 1]
    assert graph.out_degree(0) == 2
    assert graph.in_degree(2) == 2


def test_remove_node_removes_incident_edges():
    graph = from_adjacency({0: [1], 1: [2], 2: [0]})
    graph.remove_node(1)
    assert not graph.has_node(1)
    assert not graph.has_edge(0, 1)
    assert graph.number_of_edges() == 1


def test_remove_edge_errors_when_missing():
    graph = DiGraph()
    graph.add_edge(0, 1)
    graph.remove_edge(0, 1)
    with pytest.raises(EdgeNotFound):
        graph.remove_edge(0, 1)


def test_missing_node_raises():
    graph = DiGraph()
    with pytest.raises(NodeNotFound):
        list(graph.successors("nope"))
    with pytest.raises(NodeNotFound):
        graph.remove_node("nope")


def test_copy_is_independent():
    graph = from_adjacency({0: [1], 1: []})
    clone = graph.copy()
    clone.add_edge(1, 0)
    assert not graph.has_edge(1, 0)
    assert clone.has_edge(1, 0)


def test_reverse_flips_edges():
    graph = from_adjacency({0: [1], 1: [2], 2: []})
    reverse = graph.reverse()
    assert reverse.has_edge(1, 0) and reverse.has_edge(2, 1)
    assert not reverse.has_edge(0, 1)


def test_subgraph_keeps_only_selected_nodes():
    graph = from_adjacency({0: [1, 2], 1: [2], 2: [0]})
    sub = graph.subgraph([0, 1])
    assert sub.number_of_nodes() == 2
    assert sub.has_edge(0, 1)
    assert not sub.has_node(2)


def test_equality_considers_edges_and_attributes():
    left = DiGraph()
    right = DiGraph()
    left.add_edge(0, 1, length=1)
    right.add_edge(0, 1, length=1)
    assert left == right
    right.add_edge(0, 1, length=3)
    assert left != right


def test_adjacency_snapshot():
    graph = from_adjacency({0: [1], 1: [0, 2], 2: []})
    snapshot = graph.adjacency()
    assert set(snapshot[1]) == {0, 2}
    assert snapshot[2] == ()
