"""FractionalEngine: parity with the FlowNetwork/LP reference, cache
invalidation, the PR's dynamics correctness fixes, and process-count
invariance of the equilibrium report.

The engine is numpy/scipy-backed end to end (sparse LPs, vectorised flow
bookkeeping), so the whole module skips on the minimal-deps CI leg.
"""

import pytest

pytest.importorskip("scipy", reason="FractionalEngine requires numpy and scipy")

from repro.core import (  # noqa: E402
    BBCGame,
    FractionalBBCGame,
    FractionalProfile,
    InvalidStrategy,
    UniformBBCGame,
    epsilon_equilibrium_report,
    fractional_best_response,
    integral_to_fractional,
    iterated_best_response,
)
from repro.core.errors import InvalidProfile
from repro.engine import FractionalEngine, get_fractional_engine

PARITY = 1e-9


def make_general_game():
    """A non-uniform game: varied weights, lengths, link prices, budgets."""
    return FractionalBBCGame(
        BBCGame(
            nodes=range(5),
            weights={
                (0, 1): 2.0,
                (1, 2): 1.0,
                (2, 3): 3.0,
                (3, 0): 1.0,
                (0, 3): 1.0,
                (4, 0): 1.5,
                (2, 4): 0.5,
            },
            link_lengths={(0, 1): 2.0, (1, 2): 0.5, (3, 4): 3.0},
            link_costs={(0, 1): 2.0, (2, 3): 0.5},
            default_weight=0.0,
            default_budget=1.5,
        )
    )


def interesting_profiles(game):
    """Profiles worth pinning: empty, even split, and an integral-style lift."""
    nodes = list(game.nodes)
    ring = FractionalProfile(
        {node: {nodes[(i + 1) % len(nodes)]: 1.0} for i, node in enumerate(nodes)}
    )
    return [game.empty_profile(), game.even_split_profile(), ring]


@pytest.mark.parametrize("make_game", [lambda: FractionalBBCGame(UniformBBCGame(5, 2)), make_general_game])
def test_cost_parity_engine_vs_reference(make_game):
    game = make_game()
    for profile in interesting_profiles(game):
        engine_costs = game.all_costs(profile)
        reference_costs = game.all_costs(profile, engine=False)
        assert set(engine_costs) == set(reference_costs)
        for node in game.nodes:
            assert engine_costs[node] == pytest.approx(reference_costs[node], abs=PARITY)
            assert game.node_cost(profile, node) == pytest.approx(
                game.node_cost(profile, node, engine=False), abs=PARITY
            )
        assert game.social_cost(profile) == pytest.approx(
            game.social_cost(profile, engine=False), abs=PARITY
        )
        for source in game.nodes:
            for destination in game.nodes:
                if source == destination:
                    continue
                assert game.destination_cost(profile, source, destination) == pytest.approx(
                    game.destination_cost(profile, source, destination, engine=False),
                    abs=PARITY,
                )


@pytest.mark.parametrize("make_game", [lambda: FractionalBBCGame(UniformBBCGame(5, 2)), make_general_game])
def test_best_response_parity_engine_vs_reference(make_game):
    game = make_game()
    for profile in interesting_profiles(game):
        for node in game.nodes:
            engine_response = fractional_best_response(game, profile, node)
            reference_response = fractional_best_response(game, profile, node, engine=False)
            assert engine_response.current_cost == pytest.approx(
                reference_response.current_cost, abs=PARITY
            )
            assert engine_response.best_cost == pytest.approx(
                reference_response.best_cost, abs=PARITY
            )
            assert engine_response.regret == pytest.approx(
                reference_response.regret, abs=PARITY
            )
            assert engine_response.improved == reference_response.improved


def test_best_strategy_is_feasible_and_achieves_best_cost():
    game = make_general_game()
    profile = game.empty_profile()
    for node in game.nodes:
        response = fractional_best_response(game, profile, node)
        assert game.is_feasible_strategy(node, response.best_strategy)
        achieved = game.node_cost(
            profile.with_strategy(node, response.best_strategy), node, engine=False
        )
        # The LP models the exact min-cost flows, so its optimum is realised
        # (up to solver tolerance) by re-evaluating the returned strategy.
        assert achieved == pytest.approx(response.best_cost, abs=1e-6)


def test_dynamics_parity_engine_vs_reference():
    game_engine = make_general_game()
    game_reference = make_general_game()
    result_engine = iterated_best_response(game_engine, max_rounds=20, tolerance=1e-4)
    result_reference = iterated_best_response(
        game_reference, max_rounds=20, tolerance=1e-4, engine=False
    )
    assert result_engine.rounds == result_reference.rounds
    assert result_engine.converged == result_reference.converged
    assert result_engine.max_final_regret == pytest.approx(
        result_reference.max_final_regret, abs=PARITY
    )
    assert len(result_engine.cost_history) == len(result_reference.cost_history)
    for engine_cost, reference_cost in zip(
        result_engine.cost_history, result_reference.cost_history
    ):
        assert engine_cost == pytest.approx(reference_cost, abs=PARITY)


def test_sync_classification_and_cache_invalidation_across_with_strategy():
    game = FractionalBBCGame(UniformBBCGame(4, 1))
    engine = get_fractional_engine(game)
    profile = game.even_split_profile()

    assert engine.sync(profile) is None  # first sync: nothing to diff against
    version = engine.version
    assert engine.sync(profile) == ()  # no-op: version (and caches) survive
    assert engine.version == version

    moved = profile.with_strategy(0, {1: 1.0})
    assert engine.sync(moved) == (0,)
    assert engine.version == version + 1

    rewritten = moved.with_strategy(1, {2: 0.5}).with_strategy(2, {3: 0.5})
    assert set(engine.sync(rewritten)) == {1, 2}

    # Post-invalidation costs match a cold engine exactly.
    cold = FractionalEngine(game)
    assert engine.all_costs(rewritten) == cold.all_costs(rewritten)


def test_single_mover_keeps_its_cached_best_response():
    game = FractionalBBCGame(UniformBBCGame(4, 1))
    engine = get_fractional_engine(game)
    profile = game.even_split_profile()

    first = fractional_best_response(game, profile, 0, engine=engine)
    solved = engine.stats["lp_solved"]

    # Node 0 moves: its own environment is untouched, so probing it again on
    # the new profile reuses the cached LP solve (and proves zero regret
    # without re-solving when it just moved to its best response).
    moved = profile.with_strategy(0, {1: 0.6, 2: 0.4})
    second = fractional_best_response(game, moved, 0, engine=engine)
    assert engine.stats["lp_solved"] == solved
    assert engine.stats["lp_skipped"] >= 1
    assert second.best_cost == pytest.approx(first.best_cost, abs=PARITY)

    # Any *other* node's environment did change, so its LP re-solves.
    fractional_best_response(game, moved, 1, engine=engine)
    assert engine.stats["lp_solved"] == solved + 1


def test_equilibrium_report_after_dynamics_skips_all_lps():
    game = FractionalBBCGame(UniformBBCGame(4, 1))
    engine = get_fractional_engine(game)
    result = iterated_best_response(game, max_rounds=12, tolerance=1e-4, engine=engine)
    solved = engine.stats["lp_solved"]
    report = epsilon_equilibrium_report(game, result.profile, 1e-4, engine=engine)
    # The final no-move round already solved (or reused) every node's LP at
    # this exact environment; certifying the same profile is LP-free.
    assert engine.stats["lp_solved"] == solved
    assert report.max_regret == pytest.approx(result.max_final_regret, abs=PARITY)


def test_engine_rejects_foreign_game_and_unsynced_queries():
    game = FractionalBBCGame(UniformBBCGame(4, 1))
    other = FractionalBBCGame(UniformBBCGame(4, 1))
    engine = FractionalEngine(game)
    with pytest.raises(ValueError):
        fractional_best_response(other, other.empty_profile(), 0, engine=engine)
    with pytest.raises(InvalidProfile):
        engine.sync(FractionalProfile({0: {}, 1: {}}))  # missing nodes


# --------------------------------------------------------------------- #
# Regression tests for the dynamics correctness fixes
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", [None, False])
def test_no_move_round_does_not_fake_convergence(engine):
    """A no-move round must not claim convergence below the move threshold.

    Moves are gated by the fixed ``1e-6`` improvement threshold inside
    ``fractional_best_response``; node 0's strategy here is ~5.7e-7 worse
    than optimal, so dynamics make no move — yet with ``tolerance=1e-8`` the
    profile is *not* an epsilon-equilibrium and ``converged`` must say so.
    """
    game = FractionalBBCGame(UniformBBCGame(3, 1))
    delta = 1e-8
    initial = FractionalProfile({0: {1: 1.0 - delta}, 1: {2: 1.0}, 2: {0: 1.0}})
    probe = fractional_best_response(game, initial, 0, engine=engine)
    assert not probe.improved  # below the move threshold ...
    assert probe.regret > 1e-8  # ... but above the caller's tolerance
    result = iterated_best_response(
        game, initial, max_rounds=5, tolerance=1e-8, engine=engine
    )
    assert result.rounds == 1  # the early no-move exit path
    assert result.max_final_regret > 1e-8
    assert not result.converged


def test_converged_still_true_when_report_certifies_it():
    game = FractionalBBCGame(UniformBBCGame(4, 1))
    result = iterated_best_response(game, max_rounds=12, tolerance=1e-4)
    assert result.converged == (result.max_final_regret <= 1e-4)


def test_integral_to_fractional_rejects_unknown_endpoints():
    with pytest.raises(InvalidStrategy):
        integral_to_fractional([("ghost", 1)], nodes=[0, 1, 2])
    with pytest.raises(InvalidStrategy):
        integral_to_fractional([(0, "ghost")], nodes=[0, 1, 2])
    lifted = integral_to_fractional([(0, 1), (1, 2)], nodes=[0, 1, 2])
    assert lifted.capacity(0, 1) == 1.0
    assert lifted.capacity(1, 2) == 1.0


def test_even_split_buys_full_unit_on_zero_price_links():
    game = FractionalBBCGame(
        BBCGame(
            nodes=range(3),
            weights={(0, 1): 1.0, (0, 2): 1.0, (1, 0): 1.0, (2, 0): 1.0},
            link_costs={(0, 1): 0.0},
            default_weight=0.0,
            default_budget=1.0,
        )
    )
    profile = game.even_split_profile()
    # The free link deliberately carries the full unit of useful capacity,
    # not the meaningless "budget share / 0" split ...
    assert profile.capacity(0, 1) == 1.0
    # ... while priced links still split the budget evenly, and the whole
    # profile stays feasible.
    assert profile.capacity(0, 2) == pytest.approx(0.5)
    game.validate_profile(profile)


def test_destination_cost_penalty_edge_absorbs_the_whole_unit():
    """The penalty edge (capacity 1.0) must absorb an entirely unroutable unit."""
    game = FractionalBBCGame(UniformBBCGame(4, 1))
    empty = game.empty_profile()
    for engine in (None, False):
        assert game.destination_cost(empty, 0, 1, engine=engine) == pytest.approx(
            game.base.disconnection_penalty
        )
    # And a partially routable unit blends path cost and penalty.
    half = FractionalProfile({0: {1: 0.5}, 1: {}, 2: {}, 3: {}})
    for engine in (None, False):
        assert game.destination_cost(half, 0, 1, engine=engine) == pytest.approx(
            0.5 * 1.0 + 0.5 * game.base.disconnection_penalty
        )


# --------------------------------------------------------------------- #
# Process fan-out
# --------------------------------------------------------------------- #
def test_epsilon_equilibrium_report_is_process_count_invariant():
    game = make_general_game()
    profile = game.even_split_profile()
    serial = epsilon_equilibrium_report(game, profile, 1e-4, processes=1)
    forked = epsilon_equilibrium_report(game, profile, 1e-4, processes=2)
    assert serial.regrets == forked.regrets
    assert serial.max_regret == forked.max_regret
    reference = epsilon_equilibrium_report(
        game, profile, 1e-4, engine=False, processes=2
    )
    for node in game.nodes:
        assert reference.regrets[node] == pytest.approx(
            serial.regrets[node], abs=PARITY
        )
