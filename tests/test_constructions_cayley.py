"""Cayley / regular graphs: Theorem 5, Corollary 1, Lemma 8."""

import pytest

from repro.constructions import (
    abelian_cayley_graph,
    chord_like_offsets,
    hypercube_cayley,
    is_cayley_stable,
    lemma8_threshold,
    offset_graph,
    theorem5_deviation,
)
from repro.core import is_pure_nash
from repro.graphs import is_out_regular, is_strongly_connected


def test_offset_graph_structure():
    cayley = offset_graph(10, [1, 3])
    graph = cayley.profile.graph()
    assert cayley.num_nodes == 10
    assert cayley.degree == 2
    assert is_out_regular(graph, 2)
    assert graph.has_edge(cayley.index_of[(0,)], cayley.index_of[(1,)])
    assert graph.has_edge(cayley.index_of[(0,)], cayley.index_of[(3,)])
    assert is_strongly_connected(graph)


def test_chord_like_offsets_are_distinct_and_nonzero():
    offsets = chord_like_offsets(64, 3)
    assert len(set(offsets)) == 3
    assert all(1 <= o < 64 for o in offsets)


def test_generator_validation():
    with pytest.raises(Exception):
        abelian_cayley_graph((5,), [(0,)])
    with pytest.raises(Exception):
        abelian_cayley_graph((5,), [(1,), (1,)])


def test_directed_cycle_is_stable_k1():
    # For k = 1 the simple directed cycle is an Abelian Cayley graph and the
    # paper notes it *is* stable.
    cayley = offset_graph(8, [1])
    assert is_cayley_stable(cayley)
    assert is_pure_nash(cayley.game, cayley.profile)


def test_theorem5_offset_graph_unstable():
    cayley = offset_graph(24, chord_like_offsets(24, 2))
    assert not is_cayley_stable(cayley)
    deviations = theorem5_deviation(cayley)
    assert any(d.improvement > 0 for d in deviations)


def test_corollary1_hypercube_unstable():
    cayley = hypercube_cayley(5)
    assert not is_cayley_stable(cayley)


def test_small_hypercube_stability_status():
    # d = 2 (the 4-cycle with both directions, degree 2 on 4 nodes) satisfies
    # Lemma 8's k > (n-2)/2 condition and is stable.
    small = hypercube_cayley(2)
    assert small.degree > (small.num_nodes - 2) / 2
    assert is_cayley_stable(small)


def test_lemma8_complete_like_cayley_is_stable():
    # Z_6 with offsets {1,...,5} is the complete digraph: trivially stable.
    cayley = offset_graph(6, [1, 2, 3, 4, 5])
    assert cayley.degree >= lemma8_threshold(cayley.num_nodes)
    assert is_cayley_stable(cayley)


def test_vertex_transitivity_single_node_check_agrees_with_full_check():
    cayley = offset_graph(10, [1, 2])
    assert is_cayley_stable(cayley) == is_pure_nash(cayley.game, cayley.profile)
