"""Analysis studies, table rendering, and experiment workloads."""


from repro.analysis import (
    connectivity_convergence_study,
    diameter_study,
    fairness_study,
    format_table,
    format_value,
    hypercube_study,
    max_poa_study,
    max_pos_study,
    merge_rows,
    poa_spectrum_study,
    regularity_study,
    ring_path_lower_bound_study,
)
from repro.core import Objective
from repro.experiments import (
    empty_initial_profile,
    empty_start_convergence_study,
    interest_cluster_game,
    latency_overlay_game,
    max_cost_first_convergence_study,
    random_initial_profile,
    random_preference_game,
    scheduler_comparison_study,
    uniform_game,
)


def test_format_table_and_values():
    rows = [{"a": 1, "b": 2.5, "c": True}, {"a": 10, "b": 0.123456, "c": False}]
    text = format_table(rows, title="demo")
    assert "demo" in text and "a" in text and "yes" in text
    assert format_value(2.0) == "2"
    assert format_value(2.25, precision=2) == "2.25"
    assert format_table([]) == "(empty table)"
    merged = merge_rows(rows, {"extra": 1})
    assert all(row["extra"] == 1 for row in merged)


def test_fairness_study_respects_lemma1_bounds():
    rows = fairness_study([(2, 2, 0), (2, 2, 1)])
    assert all(row["stable"] for row in rows)
    assert all(row["within_additive_bound"] for row in rows)
    assert all(row["cost_ratio"] <= row["ratio_bound"] + 1.0 for row in rows)


def test_poa_spectrum_increases_with_tails():
    rows = poa_spectrum_study(2, 2, [0, 2])
    assert rows[0]["cost_over_optimum"] < rows[1]["cost_over_optimum"]


def test_diameter_study_within_lemma7_scale():
    rows = diameter_study([(2, 2, 0), (2, 2, 2)])
    assert all(row["diameter"] is not None for row in rows)
    assert all(row["diameter"] <= 4 * row["sqrt_n_log_k_n"] for row in rows)


def test_regularity_and_hypercube_studies():
    rows = regularity_study([16, 24], k=2)
    assert all(not row["stable"] for row in rows)
    assert all(row["thm5_deviation_improves"] for row in rows)
    cube_rows = hypercube_study([2, 5])
    by_dim = {row["dimension"]: row for row in cube_rows}
    assert by_dim[2]["stable"] is True
    assert by_dim[5]["stable"] is False


def test_connectivity_studies():
    rows = connectivity_convergence_study([8, 10], k=2, seeds=(0,))
    assert all(row["within_bound"] for row in rows)
    lb_rows = ring_path_lower_bound_study([(8, 4)])
    assert lb_rows[0]["probes_to_connectivity"] <= lb_rows[0]["n_squared"]


def test_max_objective_studies():
    poa_rows = max_poa_study([(3, 3)])
    assert poa_rows[0]["poa_estimate"] > 1.0
    pos_rows = max_pos_study([(2, 2)])
    assert pos_rows[0]["pos_estimate"] >= 1.0
    assert pos_rows[0]["pos_estimate"] < 4.0


def test_workload_generators_produce_valid_games():
    sparse = random_preference_game(8, budget=2, seed=1)
    assert sparse.num_nodes == 8 and not sparse.is_uniform
    clustered = interest_cluster_game(2, 3)
    assert clustered.num_nodes == 6
    overlay = latency_overlay_game(6, seed=2)
    assert not overlay.has_uniform_lengths
    profile = random_initial_profile(sparse, seed=3)
    sparse.validate_profile(profile)
    assert empty_initial_profile(sparse).number_of_edges() == 0
    assert uniform_game(6, 2, Objective.MAX).objective is Objective.MAX


def test_dynamics_studies_produce_rows():
    rows = max_cost_first_convergence_study(7, 2, num_starts=2, max_rounds=25, seed=0)
    assert len(rows) == 2
    assert all("converged" in row and "cycled" in row for row in rows)
    empty_rows = empty_start_convergence_study([7], k=2, max_rounds=40)
    assert len(empty_rows) == 1
    comparison = scheduler_comparison_study(7, 2, num_starts=2, max_rounds=25)
    assert {row["scheduler"] for row in comparison} == {
        "round_robin",
        "random",
        "max_cost_first",
    }
