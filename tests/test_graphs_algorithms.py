"""Shortest paths, SCC, and all-pairs helpers, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    DiGraph,
    all_pairs_hop_distances,
    bfs_distances,
    bfs_distances_adjacency,
    bfs_order,
    condensation,
    diameter,
    dijkstra_distances,
    dijkstra_path,
    eccentricity,
    floyd_warshall,
    is_strongly_connected,
    random_digraph,
    reach,
    shortest_path,
    sink_components,
    strongly_connected_components,
    directed_cycle,
    directed_path,
    from_adjacency,
)


def test_bfs_distances_simple_path():
    graph = directed_path(5)
    assert bfs_distances(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
    assert bfs_distances(graph, 4) == {4: 0}


def test_bfs_order_visits_reachable_nodes_once():
    graph = from_adjacency({0: [1, 2], 1: [2], 2: [0], 3: []})
    order = bfs_order(graph, 0)
    assert order[0] == 0
    assert set(order) == {0, 1, 2}
    assert len(order) == 3


def test_bfs_adjacency_variant_matches_graph_variant():
    graph = random_digraph(12, 0.3, seed=1)
    adjacency = graph.adjacency()
    for source in graph.nodes():
        assert bfs_distances(graph, source) == bfs_distances_adjacency(adjacency, source)


def test_shortest_path_returns_none_when_unreachable():
    graph = from_adjacency({0: [1], 1: [], 2: []})
    assert shortest_path(graph, 0, 2) is None
    assert shortest_path(graph, 0, 1) == [0, 1]


def test_reach_counts_self():
    graph = from_adjacency({0: [1], 1: [], 2: []})
    assert reach(graph, 0) == 2
    assert reach(graph, 2) == 1


def test_dijkstra_respects_lengths():
    graph = from_adjacency({0: [1, 2], 1: [3], 2: [3], 3: []})
    graph.add_edge(0, 1, length=1)
    graph.add_edge(1, 3, length=1)
    graph.add_edge(0, 2, length=5)
    graph.add_edge(2, 3, length=1)
    dist = dijkstra_distances(graph, 0)
    assert dist[3] == 2
    result = dijkstra_path(graph, 0, 3)
    assert result is not None
    length, path = result
    assert length == 2 and path == [0, 1, 3]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 12), p=st.floats(0.05, 0.6))
def test_bfs_matches_networkx(seed, n, p):
    graph = random_digraph(n, p, seed=seed)
    oracle = graph.to_networkx()
    for source in graph.nodes():
        expected = nx.single_source_shortest_path_length(oracle, source)
        assert bfs_distances(graph, source) == dict(expected)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 10), p=st.floats(0.1, 0.6))
def test_scc_matches_networkx(seed, n, p):
    graph = random_digraph(n, p, seed=seed)
    ours = {frozenset(component) for component in strongly_connected_components(graph)}
    oracle = {frozenset(component) for component in nx.strongly_connected_components(graph.to_networkx())}
    assert ours == oracle


def test_is_strongly_connected_cycle_vs_path():
    assert is_strongly_connected(directed_cycle(6))
    assert not is_strongly_connected(directed_path(6))


def test_condensation_is_a_dag_with_expected_size():
    graph = from_adjacency({0: [1], 1: [0], 2: [3], 3: [2], 1: [0, 2]})
    dag, membership = condensation(graph)
    assert dag.number_of_nodes() == 2
    assert membership[0] == membership[1]
    assert membership[2] == membership[3]
    assert membership[0] != membership[2]


def test_sink_components_of_two_cycles_joined():
    graph = from_adjacency({0: [1], 1: [0, 2], 2: [3], 3: [2]})
    sinks = sink_components(graph)
    assert sinks == [{2, 3}]


def test_floyd_warshall_matches_per_source_bfs():
    graph = random_digraph(9, 0.3, seed=7)
    dense = floyd_warshall(graph)
    sparse = all_pairs_hop_distances(graph)
    for source in graph.nodes():
        assert dense[source] == pytest.approx(sparse[source])


def test_diameter_and_eccentricity():
    cycle = directed_cycle(7)
    assert eccentricity(cycle, 0) == 6
    assert diameter(cycle) == 6
    assert diameter(directed_path(4)) is None


def test_weighted_diameter_honours_custom_length_attribute():
    graph = DiGraph()
    graph.add_nodes_from(range(3))
    graph.add_edge(0, 1, miles=5)
    graph.add_edge(1, 2, miles=7)
    graph.add_edge(2, 0)  # no attribute: falls back to default_length
    # Custom attribute plumbed through (the old code always read "length",
    # silently weighting every edge at 1).
    assert eccentricity(graph, 0, weighted=True, length_attr="miles") == 12
    assert diameter(graph, weighted=True, length_attr="miles") == 12
    assert (
        diameter(graph, weighted=True, length_attr="miles", default_length=10) == 17
    )
    # The hop-count and default-attribute paths are unchanged.
    assert diameter(graph) == 2
    assert diameter(graph, weighted=True) == 2
