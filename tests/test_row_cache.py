"""Byte-budget regression tests for the engine's chunked row cache.

PR 5's row-*count* cap overflowed silently: crossing it dropped rows with no
signal, and the cap's byte footprint scaled with n² behind the caller's
back.  These tests drive a long random walk of profile edits and restricted
probes at n = 1024 — big enough that real numpy rows, giant-batch chunks,
repairs, and evictions all occur — and pin the new contract: cache bytes
never exceed ``memory_budget_bytes``, evictions are counted (not silent),
evicted rows re-enter via recompute, and a budget-starved engine returns
bit-identical results to an unbudgeted one.
"""

import random

import pytest

from repro.core import UniformBBCGame
from repro.core.best_response import best_response
from repro.engine import CostEngine
from repro.engine.cost_engine import default_memory_budget
from repro.engine.row_store import ChunkLedger
from repro.experiments.workloads import random_initial_profile

try:
    import numpy  # noqa: F401 - presence gates the realistic large-n walk
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the minimal CI leg
    HAVE_NUMPY = False


def test_chunk_ledger_accounting_and_lru_order():
    ledger = ChunkLedger()
    ledger.add(1, 100)
    ledger.add(2, 50)
    ledger.add(1, 25)  # accrues to node 1's existing chunk, touching it
    assert ledger.bytes == 175
    assert ledger.node_bytes(1) == 125 and 1 in ledger and len(ledger) == 2
    # Node 2's singleton chunk is now least recently used.
    assert ledger.lru_nodes() == [2]
    assert ledger.lru_nodes(exempt={2}) == [1]
    assert ledger.lru_nodes(exempt={1, 2}) is None
    ledger.touch(2)
    assert ledger.lru_nodes() == [1]
    # Grouping moves both into one fresh MRU chunk, keeping their bytes.
    ledger.group([1, 2])
    assert sorted(ledger.lru_nodes()) == [1, 2]
    assert ledger.bytes == 175
    ledger.deduct(2, 20)
    assert ledger.bytes == 155 and ledger.node_bytes(2) == 30
    ledger.deduct(2, 30)  # full deduction removes the node
    assert 2 not in ledger and ledger.bytes == 125
    assert ledger.remove(1) == 125
    assert ledger.bytes == 0 and ledger.lru_nodes() is None


def test_default_budget_is_bounded_at_both_ends():
    assert default_memory_budget(4) == 16 * 2**20
    assert default_memory_budget(16384) == 256 * 2**20
    # In between it tracks the old row cap's byte footprint.
    assert default_memory_budget(1024) == 8 * 1024 * 1024 * 8


@pytest.mark.slow
@pytest.mark.skipif(not HAVE_NUMPY, reason="the large-n walk needs the numpy backend")
def test_long_walk_at_n_1024_stays_within_budget_and_counts_evictions():
    n = 1024
    budget = 1 << 20  # 1 MiB: a handful of probes' working sets
    game = UniformBBCGame(n, 2)
    profile = random_initial_profile(game, seed=7)
    engine = CostEngine(game, memory_budget_bytes=budget)
    unbudgeted = CostEngine(game)
    assert engine.backend == "numpy"
    rng = random.Random(3)
    nodes = list(game.nodes)
    # Probe a small pool round-robin so later probes revisit nodes whose
    # chunks were evicted in between — the repair-vs-recompute-after-eviction
    # path — while movers range over the whole game.
    probe_pool = rng.sample(nodes, 12)
    for step in range(40):
        node = probe_pool[step % len(probe_pool)]
        candidates = rng.sample([v for v in nodes if v != node], 6)
        got = best_response(game, profile, node, candidates=candidates, engine=engine)
        want = best_response(
            game, profile, node, candidates=candidates, engine=unbudgeted
        )
        assert got.best_cost == want.best_cost
        assert got.best_strategy == want.best_strategy
        # The byte contract, pinned at every step of the walk: eviction runs
        # inside every charging site, so the cache never ends a probe over
        # budget (the exempt in-flight working set is far below 1 MiB here).
        assert engine.cache_bytes() <= budget
        # Single-node profile step: the next probes exercise repair and
        # repair-after-eviction paths under budget pressure.
        mover = rng.choice(nodes)
        profile = profile.with_strategy(
            mover, frozenset(rng.sample([v for v in nodes if v != mover], 2))
        )
    stats = engine.snapshot_stats()
    assert stats["chunks_evicted"] > 0
    assert stats["rows_evicted"] > 0
    assert stats["evicted_recomputes"] > 0
    assert stats["cache_bytes"] == engine.cache_bytes() <= budget
    assert stats["memory_budget_bytes"] == budget
