"""CNF representation and DPLL solver tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import (
    CNFFormula,
    DPLLSolver,
    is_satisfiable,
    pigeonhole_formula,
    random_3sat,
    random_satisfiable_3sat,
    solve,
    tiny_satisfiable_formula,
    tiny_unsatisfiable_formula,
)


def test_formula_construction_and_validation():
    formula = CNFFormula.from_clauses([(1, -2), (2, 3)])
    assert formula.num_variables == 3
    assert formula.num_clauses == 2
    with pytest.raises(ValueError):
        CNFFormula(num_variables=1, clauses=((0,),))
    with pytest.raises(ValueError):
        CNFFormula(num_variables=1, clauses=((5,),))


def test_evaluate_assignment():
    formula = CNFFormula.from_clauses([(1, 2), (-1, 2)])
    assert formula.evaluate({1: True, 2: True})
    assert not formula.evaluate({1: True, 2: False})


def test_dimacs_roundtrip():
    formula = tiny_satisfiable_formula()
    text = formula.to_dimacs()
    parsed = CNFFormula.from_dimacs(text)
    assert parsed.clauses == formula.clauses
    assert parsed.num_variables == formula.num_variables


def test_solver_on_fixed_formulas():
    sat_model = solve(tiny_satisfiable_formula())
    assert sat_model is not None
    assert tiny_satisfiable_formula().evaluate(sat_model)
    assert solve(tiny_unsatisfiable_formula()) is None


def test_solver_finds_planted_assignment():
    formula = random_satisfiable_3sat(6, 18, seed=11)
    model = solve(formula)
    assert model is not None
    assert formula.evaluate(model)


def test_pigeonhole_is_unsatisfiable():
    assert not is_satisfiable(pigeonhole_formula(2))
    assert not is_satisfiable(pigeonhole_formula(3))


def test_model_enumeration_counts_small_formula():
    formula = CNFFormula.from_clauses([(1, 2)])
    solver = DPLLSolver(formula)
    models = list(solver.enumerate_models())
    assert len(models) == 3
    assert all(formula.evaluate(model) for model in models)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dpll_agrees_with_brute_force(seed):
    formula = random_3sat(4, 10, seed=seed)
    brute = any(
        formula.evaluate({1: a, 2: b, 3: c, 4: d})
        for a in (False, True)
        for b in (False, True)
        for c in (False, True)
        for d in (False, True)
    )
    assert is_satisfiable(formula) == brute


def test_solver_stats_populated():
    solver = DPLLSolver(random_3sat(5, 15, seed=3))
    solver.solve()
    assert solver.stats.propagations >= 0
    assert solver.stats.decisions >= 0
