"""Fractional BBC games: flow costs, LP best responses, Theorem 3 dynamics.

Cost evaluation runs on the dependency-free FlowNetwork path, but best
responses solve LPs: the tests that touch them skip on the minimal-deps CI
leg (no numpy/scipy) via :data:`needs_scipy`.
"""

import pytest

try:
    import scipy  # noqa: F401
except ImportError:
    scipy = None

needs_scipy = pytest.mark.skipif(
    scipy is None, reason="fractional best responses solve LPs and require scipy"
)

from repro.core import (  # noqa: E402
    FractionalBBCGame,
    FractionalProfile,
    InvalidStrategy,
    Objective,
    StrategyProfile,
    UniformBBCGame,
    BBCGame,
    epsilon_equilibrium_report,
    fractional_best_response,
    integral_to_fractional,
    is_pure_nash,
    iterated_best_response,
)


@pytest.fixture
def small_fractional_game():
    return FractionalBBCGame(UniformBBCGame(4, 1))


def test_fractional_profile_validation(small_fractional_game):
    game = small_fractional_game
    profile = FractionalProfile({0: {1: 0.5, 2: 0.5}, 1: {2: 1.0}, 2: {3: 1.0}, 3: {0: 1.0}})
    game.validate_profile(profile)
    overspent = FractionalProfile({0: {1: 0.8, 2: 0.8}, 1: {}, 2: {}, 3: {}})
    with pytest.raises(InvalidStrategy):
        game.validate_profile(overspent)
    with pytest.raises(InvalidStrategy):
        FractionalProfile({0: {0: 1.0}})


def test_max_objective_rejected():
    with pytest.raises(Exception):
        FractionalBBCGame(UniformBBCGame(4, 1, objective=Objective.MAX))


def test_integral_lift_reproduces_integral_costs(cycle_profile):
    base = UniformBBCGame(5, 1)
    fractional = FractionalBBCGame(base)
    lifted = integral_to_fractional(cycle_profile.edges(), base.nodes)
    for node in base.nodes:
        assert fractional.node_cost(lifted, node) == pytest.approx(
            base.node_cost(cycle_profile, node)
        )
    assert fractional.social_cost(lifted) == pytest.approx(base.social_cost(cycle_profile))


def test_destination_cost_uses_penalty_for_unreachable(small_fractional_game):
    game = small_fractional_game
    empty = game.empty_profile()
    cost = game.destination_cost(empty, 0, 1)
    assert cost == pytest.approx(game.base.disconnection_penalty)


def test_fractional_split_costs_blend_path_and_penalty():
    base = UniformBBCGame(3, 1)
    game = FractionalBBCGame(base)
    # Node 0 buys half a link to 1; node 1 fully links to 2.
    profile = FractionalProfile({0: {1: 0.5}, 1: {2: 1.0}, 2: {}})
    cost01 = game.destination_cost(profile, 0, 1)
    assert cost01 == pytest.approx(0.5 * 1 + 0.5 * base.disconnection_penalty)


@needs_scipy
def test_lp_best_response_improves_empty_strategy(small_fractional_game):
    game = small_fractional_game
    profile = game.even_split_profile()
    response = fractional_best_response(game, profile, 0)
    assert response.best_cost <= response.current_cost + 1e-6
    spend = game.spend_of(0, response.best_strategy)
    assert spend <= game.base.budget(0) + 1e-6


@needs_scipy
def test_lp_best_response_matches_integral_on_cycle(cycle_profile):
    base = UniformBBCGame(5, 1)
    game = FractionalBBCGame(base)
    lifted = integral_to_fractional(cycle_profile.edges(), base.nodes)
    response = fractional_best_response(game, lifted, 0)
    # The directed cycle is a pure Nash equilibrium of the integral game and
    # remains one in the fractional relaxation: no deviation helps node 0.
    assert response.regret <= 1e-6


@needs_scipy
def test_iterated_best_response_reaches_epsilon_equilibrium():
    base = UniformBBCGame(4, 1)
    game = FractionalBBCGame(base)
    result = iterated_best_response(game, max_rounds=12, tolerance=1e-4)
    assert result.rounds <= 12
    report = epsilon_equilibrium_report(game, result.profile, epsilon=1e-3)
    assert report.max_regret <= 1e-3 or not result.converged
    assert len(result.cost_history) >= 2


@needs_scipy
def test_theorem3_nonuniform_instance_has_epsilon_equilibrium():
    # A small non-uniform game (the kind Theorem 1 uses to break integral
    # equilibria) still admits a fractional (epsilon-)equilibrium, as
    # Theorem 3 guarantees.
    game = FractionalBBCGame(
        BBCGame(
            nodes=range(4),
            weights={(0, 1): 2.0, (1, 2): 1.0, (2, 3): 3.0, (3, 0): 1.0, (0, 3): 1.0},
            default_weight=0.0,
            default_budget=1.0,
        )
    )
    result = iterated_best_response(game, max_rounds=20, tolerance=1e-4)
    assert result.max_final_regret <= 1e-3
